#include "matching/maroon.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

Maroon::Maroon(const TransitionModel* transition,
               const FreshnessModel* freshness,
               const SimilarityCalculator* similarity,
               std::vector<Attribute> schema_attributes, MaroonOptions options)
    : transition_(transition),
      freshness_(freshness),
      similarity_(similarity),
      schema_attributes_(std::move(schema_attributes)),
      options_(std::move(options)) {}

LinkResult Maroon::Link(
    const EntityProfile& clean_profile,
    const std::vector<const TemporalRecord*>& candidates) const {
  MAROON_TRACE_SPAN("link.entity");
  LinkResult result;

  // Degenerate candidates — null pointers or records with no attribute
  // values — carry no linkage evidence and would only distort cluster
  // signatures; skip them up front and report how many were dropped.
  std::vector<const TemporalRecord*> usable;
  usable.reserve(candidates.size());
  for (const TemporalRecord* record : candidates) {
    if (record == nullptr || record->values().empty()) {
      ++result.skipped_candidates;
      continue;
    }
    usable.push_back(record);
  }
  MAROON_COUNTER("maroon.link.skipped_candidates")
      ->Add(static_cast<int64_t>(result.skipped_candidates));
  MAROON_COUNTER("maroon.link.candidates")
      ->Add(static_cast<int64_t>(usable.size()));
  if (usable.empty()) {
    result.match.augmented_profile = clean_profile;
    result.match.augmented_profile.Normalize();
    return result;
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<GeneratedCluster> clusters;
  {
    MAROON_TRACE_SPAN("link.phase1");
    ClusterGenerator generator(similarity_, freshness_, schema_attributes_,
                               options_.cluster);
    generator.SetReliabilityModel(reliability_);
    generator.SetFusionStrategy(fusion_);
    clusters = generator.Generate(usable);
  }
  result.num_clusters = clusters.size();
  result.timings.phase1_seconds = SecondsSince(start);
  MAROON_LATENCY("maroon.link.phase1_seconds")
      ->Record(result.timings.phase1_seconds);

  start = std::chrono::steady_clock::now();
  {
    MAROON_TRACE_SPAN("link.phase2");
    ProfileMatcher matcher(transition_, schema_attributes_, options_.matcher);
    result.match = matcher.MatchAndAugment(clean_profile, clusters);
  }
  result.timings.phase2_seconds = SecondsSince(start);
  MAROON_LATENCY("maroon.link.phase2_seconds")
      ->Record(result.timings.phase2_seconds);
  // Per-entity link latency as the tail-latency histograms see it: both
  // phases, from already-taken clock reads (no extra reads on this path).
  MAROON_LATENCY("maroon.link.entity_seconds")
      ->Record(result.timings.phase1_seconds + result.timings.phase2_seconds);
  return result;
}

}  // namespace maroon
