#include "matching/profile_matcher.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

namespace {

/// Incremental Eq. 14 state for one (cluster, attribute): the running sum of
/// interval probabilities over profile triples and the triple count.
struct TransitState {
  double sum = 0.0;
  size_t count = 0;

  double Value() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// True iff the cluster's value set conflicts with the profile on a
/// single-valued attribute at some instant of the cluster's interval:
/// both sides non-empty and sharing no value.
bool ConflictsWithProfile(const EntityProfile& profile,
                          const GeneratedCluster& gc,
                          const std::vector<Attribute>& single_valued) {
  for (const Attribute& attribute : single_valued) {
    const ValueSet& cluster_values = gc.signature.ValuesOf(attribute);
    if (cluster_values.empty()) continue;
    const TemporalSequence& seq = profile.sequence(attribute);
    if (seq.empty()) continue;
    for (TimePoint t = gc.signature.interval.begin;
         t <= gc.signature.interval.end; ++t) {
      const ValueSet profile_values = seq.ValuesAt(t);
      if (profile_values.empty()) continue;
      if (ValueSetIntersection(profile_values, cluster_values).empty()) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

ProfileMatcher::ProfileMatcher(const TransitionModel* transition,
                               std::vector<Attribute> schema_attributes,
                               ProfileMatcherOptions options)
    : transition_(transition),
      schema_attributes_(std::move(schema_attributes)),
      options_(std::move(options)) {}

double ProfileMatcher::MatchScore(const EntityProfile& profile,
                                  const GeneratedCluster& cluster) const {
  if (schema_attributes_.empty()) return 0.0;
  double total = 0.0;
  for (const Attribute& attribute : schema_attributes_) {
    const double conf = cluster.signature.ConfidenceOf(attribute);
    if (conf <= 0.0) continue;
    const ValueSet& to = cluster.signature.ValuesOf(attribute);
    if (to.empty()) continue;
    total += conf * transition_->SequenceToStateProbability(
                        attribute, profile.sequence(attribute), to,
                        cluster.signature.interval);
  }
  const double score = total / static_cast<double>(schema_attributes_.size());
  // A degenerate transition model can emit NaN/∞; a non-finite score carries
  // no ranking information, so report "no match" rather than poison callers.
  return std::isfinite(score) ? score : 0.0;
}

MatchResult ProfileMatcher::MatchAndAugment(
    const EntityProfile& profile,
    const std::vector<GeneratedCluster>& clusters) const {
  MAROON_TRACE_SPAN("phase2.match_and_augment");
  static obs::Histogram* score_histogram = MAROON_HISTOGRAM(
      "maroon.phase2.best_score", obs::UnitIntervalBuckets());
  MatchResult result;
  result.augmented_profile = profile;
  EntityProfile& working = result.augmented_profile;

  const size_t n = clusters.size();
  std::vector<bool> active(n, true);

  // Incremental Eq. 14 state per (cluster, schema attribute).
  std::vector<std::map<Attribute, TransitState>> transit(n);
  for (size_t i = 0; i < n; ++i) {
    for (const Attribute& attribute : schema_attributes_) {
      const ValueSet& to = clusters[i].signature.ValuesOf(attribute);
      if (to.empty()) continue;
      TransitState state;
      const TemporalSequence& seq = working.sequence(attribute);
      for (const Triple& tr : seq.triples()) {
        state.sum += transition_->IntervalProbability(
            attribute, tr.values, to, tr.interval,
            clusters[i].signature.interval);
        ++state.count;
      }
      transit[i][attribute] = state;
    }
  }

  const auto score_of = [&](size_t i) {
    if (schema_attributes_.empty()) return 0.0;
    double total = 0.0;
    for (const auto& [attribute, state] : transit[i]) {
      const double conf = clusters[i].signature.ConfidenceOf(attribute);
      if (conf <= 0.0) continue;
      total += conf * state.Value();
    }
    return total / static_cast<double>(schema_attributes_.size());
  };

  size_t remaining = n;
  while (remaining > 0) {
    if (options_.max_iterations != 0 &&
        result.iterations >= options_.max_iterations) {
      break;
    }
    ++result.iterations;

    // Lines 3-5: the best-scoring active cluster that passes the declarative
    // constraints. Infeasible clusters are pruned on the spot.
    double best_score = -1.0;
    size_t best = 0;
    bool found = false;
    while (!found) {
      best_score = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (!active[i]) continue;
        const double s = score_of(i);
        if (!std::isfinite(s)) {
          // A NaN/∞ score means the transition or freshness model is
          // degenerate for this cluster; it can never be ranked
          // meaningfully, so retire it instead of letting NaN poison the
          // comparisons below.
          active[i] = false;
          --remaining;
          ++result.degenerate_scores;
          result.pruned_clusters.push_back(i);
          continue;
        }
        if (s > best_score) {
          best_score = s;
          best = i;
        }
      }
      if (best_score <= options_.theta) break;  // lines 14-15.
      if (options_.constraints == nullptr) {
        found = true;
        break;
      }
      bool feasible = true;
      for (const auto& [attribute, values] :
           clusters[best].signature.values) {
        if (values.empty()) continue;
        if (!options_.constraints
                 ->ViolationsOfInsert(working, attribute, values,
                                      clusters[best].signature.interval)
                 .empty()) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        found = true;
      } else {
        active[best] = false;
        --remaining;
        result.pruned_clusters.push_back(best);
        if (remaining == 0) break;
      }
    }
    // Eq. 15 decision value of this iteration (one observation per
    // iteration, not per candidate).
    if (best_score >= 0.0) score_histogram->Record(best_score);
    if (!found || best_score <= options_.theta) break;

    // Lines 7-8: link the cluster.
    const GeneratedCluster& chosen = clusters[best];
    for (RecordId id : chosen.cluster.records()) {
      result.matched_records.push_back(id);
    }
    result.linked_clusters.push_back(best);
    active[best] = false;
    --remaining;

    // Lines 9-10: insert the cluster's state into the profile and extend the
    // incremental Eq. 14 sums of the surviving clusters with the new triples.
    std::vector<std::pair<Attribute, Triple>> new_triples;
    for (const auto& [attribute, values] : chosen.signature.values) {
      if (values.empty()) continue;
      Triple triple(chosen.signature.interval, values);
      if (working.sequence(attribute).Insert(triple).ok()) {
        new_triples.emplace_back(attribute, std::move(triple));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (const auto& [attribute, triple] : new_triples) {
        auto it = transit[i].find(attribute);
        if (it == transit[i].end()) continue;
        const ValueSet& to = clusters[i].signature.ValuesOf(attribute);
        it->second.sum += transition_->IntervalProbability(
            attribute, triple.values, to, triple.interval,
            clusters[i].signature.interval);
        ++it->second.count;
      }
    }

    // Lines 11-13: prune clusters conflicting with the updated profile on a
    // single-valued attribute.
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      if (ConflictsWithProfile(working, clusters[i],
                               options_.single_valued_attributes)) {
        active[i] = false;
        --remaining;
        result.pruned_clusters.push_back(i);
      }
    }
  }

  MAROON_COUNTER("maroon.phase2.iterations")
      ->Add(static_cast<int64_t>(result.iterations));
  MAROON_COUNTER("maroon.phase2.clusters_linked")
      ->Add(static_cast<int64_t>(result.linked_clusters.size()));
  MAROON_COUNTER("maroon.phase2.clusters_pruned")
      ->Add(static_cast<int64_t>(result.pruned_clusters.size()));
  MAROON_COUNTER("maroon.phase2.degenerate_scores")
      ->Add(static_cast<int64_t>(result.degenerate_scores));

  // Post-processing: sort triples and resolve overlapping intervals.
  working.Normalize();
  std::sort(result.matched_records.begin(), result.matched_records.end());
  result.matched_records.erase(
      std::unique(result.matched_records.begin(),
                  result.matched_records.end()),
      result.matched_records.end());
  return result;
}

}  // namespace maroon
