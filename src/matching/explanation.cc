#include "matching/explanation.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace maroon {

std::string MatchExplanation::ToString() const {
  std::ostringstream os;
  os << "match score " << FormatDouble(score, 4) << "\n";
  for (const AttributeContribution& c : contributions) {
    os << "  " << c.attribute << " = " << ValueSetToString(c.values)
       << ": conf " << FormatDouble(c.confidence, 3) << " x transitPr "
       << FormatDouble(c.transit_probability, 3) << " -> +"
       << FormatDouble(c.contribution, 4) << "\n";
  }
  return os.str();
}

MatchExplanation ExplainMatch(const TransitionModel& transition,
                              const std::vector<Attribute>& schema_attributes,
                              const EntityProfile& profile,
                              const GeneratedCluster& cluster) {
  MatchExplanation explanation;
  if (schema_attributes.empty()) return explanation;
  const double inv = 1.0 / static_cast<double>(schema_attributes.size());

  for (const Attribute& attribute : schema_attributes) {
    AttributeContribution c;
    c.attribute = attribute;
    c.confidence = cluster.signature.ConfidenceOf(attribute);
    c.values = cluster.signature.ValuesOf(attribute);
    if (!c.values.empty()) {
      c.transit_probability = transition.SequenceToStateProbability(
          attribute, profile.sequence(attribute), c.values,
          cluster.signature.interval);
    }
    c.contribution = c.confidence * c.transit_probability * inv;
    explanation.score += c.contribution;
    explanation.contributions.push_back(std::move(c));
  }
  std::stable_sort(explanation.contributions.begin(),
                   explanation.contributions.end(),
                   [](const AttributeContribution& a,
                      const AttributeContribution& b) {
                     return a.contribution > b.contribution;
                   });
  return explanation;
}

}  // namespace maroon
