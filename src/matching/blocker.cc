#include "matching/blocker.h"

#include <algorithm>

#include "common/string_util.h"
#include "similarity/string_metrics.h"

namespace maroon {

std::string NameBlocker::NormalizeName(const std::string& name) {
  std::vector<std::string> tokens = TokenizeWords(name);
  std::sort(tokens.begin(), tokens.end());
  return Join(tokens, " ");
}

void NameBlocker::Index(const Dataset& dataset) {
  index_.clear();
  for (const TemporalRecord& r : dataset.records()) {
    index_[NormalizeName(r.name())].push_back(r.id());
  }
}

std::vector<RecordId> NameBlocker::Candidates(const std::string& name) const {
  const std::string key = NormalizeName(name);
  std::vector<RecordId> out;
  if (!options_.fuzzy) {
    auto it = index_.find(key);
    if (it != index_.end()) out = it->second;
    std::sort(out.begin(), out.end());
    return out;
  }
  for (const auto& [candidate_key, ids] : index_) {
    if (candidate_key == key ||
        JaroWinklerSimilarity(key, candidate_key) >=
            options_.name_similarity_threshold) {
      out.insert(out.end(), ids.begin(), ids.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace maroon
