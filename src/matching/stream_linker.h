#ifndef MAROON_MATCHING_STREAM_LINKER_H_
#define MAROON_MATCHING_STREAM_LINKER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/wal.h"
#include "core/profile_store.h"
#include "core/profile_wal.h"
#include "core/temporal_record.h"
#include "obs/health.h"

namespace maroon {

/// Configuration for StreamLinker.
struct StreamLinkerOptions {
  /// Path of the profile WAL file (required). Opening repairs any torn
  /// tail and replays the log into the store.
  std::string wal_path;
  /// Directory for periodic snapshots; empty disables snapshotting.
  std::string snapshot_dir;
  /// Snapshot after every N applied records (0 = only on Close when
  /// snapshot_dir is set).
  uint64_t snapshot_every = 0;
  /// Admission queue bound: Submit() returns ResourceExhausted beyond this
  /// many queued records (0 = unbounded).
  size_t max_queue = 1024;
  /// Memory bound, in store entities. Once the store holds this many
  /// profiles, records that would *spawn a new entity* are shed to the
  /// quarantine (counter "maroon.stream.shed"); records that merge into an
  /// existing profile still apply. 0 = unbounded.
  size_t max_store_entities = 0;
  /// Transient-IO retry budget for a single record's WAL append.
  int max_retries = 5;
  /// First retry backoff in microseconds; doubles every attempt. 0 disables
  /// sleeping (useful in tests).
  int retry_initial_backoff_us = 100;
  /// fsync cadence forwarded to the WAL writer.
  WalWriterOptions wal;
};

/// Counters describing a StreamLinker's lifetime (all monotonic).
struct StreamLinkerStats {
  uint64_t submitted = 0;
  uint64_t applied = 0;
  /// Applied during recovery (snapshot load + WAL tail replay) in Open.
  uint64_t recovered = 0;
  /// Skipped on resume because the WAL already held the record id.
  uint64_t resumed_skips = 0;
  /// Degenerate records (no attribute values) refused at Submit.
  uint64_t rejected = 0;
  /// Shed to the quarantine by the memory bound.
  uint64_t shed = 0;
  /// WAL append retries after transient IO errors.
  uint64_t retries = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
};

/// The durable streaming linker: admitted records are WAL-appended *before*
/// they mutate the ProfileStore, the store is periodically snapshotted, and
/// every mutation is deterministic — so crash recovery (newest valid
/// snapshot + WAL tail replay, done in Open) rebuilds bit-for-bit the store
/// an uninterrupted run would have produced, and resuming the same stream
/// afterwards converges on the identical final state (verified by
/// HashProfileStore equality in the crash harness).
///
/// Overload behaviour: a bounded admission queue pushes back (Submit returns
/// ResourceExhausted; callers Drain() and retry), transient IO errors are
/// retried with exponential backoff, and a memory bound sheds new-entity
/// records to a quarantine instead of growing the store.
///
/// Single-threaded by design: determinism is the recovery contract, so one
/// caller owns the stream (parallelism belongs in the batch path). The
/// mutating entry points enforce this with a ThreadChecker: a second thread
/// calling in trips a DCHECK in debug builds rather than silently racing
/// the queue and the WAL.
class StreamLinker {
 public:
  /// Opens the WAL (creating it if absent) and recovers: loads the newest
  /// valid snapshot, replays the WAL tail on top, and records every durable
  /// record id so a resumed stream skips already-applied records.
  static Result<StreamLinker> Open(const StreamLinkerOptions& options);

  /// Enqueues one record. ResourceExhausted when the admission queue is
  /// full — the caller should Drain() and resubmit; InvalidArgument for
  /// degenerate records (counted, not queued).
  Status Submit(TemporalRecord record);

  /// Processes the queue: WAL-append (with retry), apply, snapshot at the
  /// configured cadence. On a non-transient failure the failing record
  /// stays at the queue front and the error is returned; Drain() may be
  /// called again once the condition clears.
  Status Drain();

  /// Drain + force an fsync of the WAL.
  Status Flush();

  /// Flush, write a final snapshot (when snapshotting is configured and
  /// anything changed), and close the WAL. The linker is unusable after.
  Status Close();

  const ProfileStore& store() const { return store_; }
  const StreamLinkerStats& stats() const { return stats_; }
  const std::vector<TemporalRecord>& quarantine() const { return quarantine_; }
  uint64_t last_seq() const { return wal_.last_seq(); }
  size_t queue_depth() const { return queue_.size(); }

  /// The last non-transient Drain/Flush/Close failure, latched until a
  /// later Drain succeeds. OK while the stream is healthy. The ops plane's
  /// /healthz reads this through ReportHealth.
  const Status& last_error() const { return last_error_; }

  /// Publishes this linker's state into `health` as four components:
  ///   "wal"           UNHEALTHY while an error is latched
  ///   "backpressure"  DEGRADED when the admission queue is >= 3/4 full
  ///   "memory"        DEGRADED while the store sits at its entity bound
  ///                   (new-entity records are being shed)
  ///   "snapshot"      DEGRADED on snapshot failures or when the snapshot
  ///                   cadence has slipped by more than 2x
  /// Owner-thread only, like every other accessor that reads the queue.
  void ReportHealth(obs::HealthRegistry* health) const;

 private:
  StreamLinker(StreamLinkerOptions options, ProfileWal wal)
      : options_(std::move(options)), wal_(std::move(wal)) {}

  /// Drain's body; Drain() wraps it to maintain last_error_.
  Status DrainImpl();

  /// WAL append with exponential backoff on transient (IOError) failures.
  Status AppendWithRetry(const TemporalRecord& record);
  /// True when the memory bound forces `record` into the quarantine.
  bool ShouldShed(const TemporalRecord& record) const;
  Status MaybeSnapshot(bool force);

  StreamLinkerOptions options_;
  ProfileWal wal_;
  ProfileStore store_;
  std::deque<TemporalRecord> queue_;
  std::vector<TemporalRecord> quarantine_;
  /// Record ids already durable in the WAL (applied this run or replayed).
  std::unordered_set<RecordId> durable_ids_;
  StreamLinkerStats stats_;
  Status last_error_ = Status::OK();
  uint64_t applied_since_snapshot_ = 0;
  /// Enforces the single-owner contract on Submit/Drain/Flush/Close.
  ThreadChecker thread_checker_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_STREAM_LINKER_H_
