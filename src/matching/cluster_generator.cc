#include "matching/cluster_generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

ClusterGenerator::ClusterGenerator(const SimilarityCalculator* similarity,
                                   const FreshnessModel* freshness,
                                   std::vector<Attribute> schema_attributes,
                                   ClusterGeneratorOptions options)
    : similarity_(similarity),
      freshness_(freshness),
      schema_attributes_(std::move(schema_attributes)),
      options_(options) {}

bool ClusterGenerator::SourceIsFresh(SourceId source) const {
  if (!options_.use_source_freshness) return true;
  return freshness_->IsFresh(source, schema_attributes_, options_.mu);
}

double ClusterGenerator::DelayProbability(int64_t eta, SourceId source,
                                          const Attribute& attribute) const {
  if (!options_.use_source_freshness) return 1.0;
  return freshness_->Delay(eta, source, attribute);
}

double ClusterGenerator::SourceReliability(SourceId source,
                                           const Attribute& attribute) const {
  if (!options_.use_source_reliability || reliability_ == nullptr) return 1.0;
  return reliability_->Reliability(source, attribute);
}

std::vector<GeneratedCluster> ClusterGenerator::Generate(
    const std::vector<const TemporalRecord*>& records) const {
  MAROON_TRACE_SPAN("phase1.generate");
  // Line 1: split by source freshness.
  std::vector<const TemporalRecord*> fresh;
  std::vector<const TemporalRecord*> stale;
  for (const TemporalRecord* r : records) {
    (SourceIsFresh(r->source()) ? fresh : stale).push_back(r);
  }
  MAROON_COUNTER("maroon.phase1.fresh_records")
      ->Add(static_cast<int64_t>(fresh.size()));
  MAROON_COUNTER("maroon.phase1.stale_records")
      ->Add(static_cast<int64_t>(stale.size()));

  // Line 2: traditional single-pass clustering of the fresh records.
  std::vector<Cluster> initial;
  {
    MAROON_TRACE_SPAN("phase1.partition");
    PartitionClusterer partitioner(
        similarity_, PartitionOptions{options_.partition_threshold});
    initial = partitioner.ClusterRecords(fresh);
  }

  // Lines 3-7: signatures with the fresh span and majority-vote values.
  std::vector<GeneratedCluster> clusters;
  clusters.reserve(initial.size());
  for (Cluster& c : initial) {
    GeneratedCluster gc;
    gc.signature = c.BuildSignature(/*initial_confidence=*/0.0);
    gc.cluster = std::move(c);
    clusters.push_back(std::move(gc));
  }

  // Lines 8-19: place stale records. Processed in (timestamp, id) order for
  // determinism; each record may land in several clusters, one per attribute
  // whose delayed value plausibly describes that cluster's period (Eq. 10).
  static obs::Counter* placements_accepted =
      MAROON_COUNTER("maroon.phase1.stale_placements_accepted");
  static obs::Counter* placements_rejected =
      MAROON_COUNTER("maroon.phase1.stale_placements_rejected");
  std::vector<const TemporalRecord*> ordered_stale = stale;
  std::stable_sort(ordered_stale.begin(), ordered_stale.end(),
                   [](const TemporalRecord* a, const TemporalRecord* b) {
                     if (a->timestamp() != b->timestamp()) {
                       return a->timestamp() < b->timestamp();
                     }
                     return a->id() < b->id();
                   });

  {
    MAROON_TRACE_SPAN("phase1.stale_placement");
    for (const TemporalRecord* r : ordered_stale) {
      std::set<Attribute> covered;
      for (GeneratedCluster& gc : clusters) {
        const Interval span = gc.signature.interval;
        if (r->timestamp() < span.begin) continue;  // line 11: r.t >= c.tmin
        for (const auto& [attribute, values] : r->values()) {
          const int64_t eta = std::max<int64_t>(
              0, static_cast<int64_t>(r->timestamp()) - span.end);
          if (DelayProbability(eta, r->source(), attribute) <=
              options_.mu_prime) {
            placements_rejected->Add();
            continue;  // Eq. 10 fails.
          }
          const ValueSet& cluster_values = gc.signature.ValuesOf(attribute);
          if (cluster_values.empty()) continue;
          if (similarity_->ValueSetSimilarity(cluster_values, values) <
              options_.value_match_threshold) {
            continue;  // line 14: c.A !~ r.A
          }
          gc.cluster.AddForAttribute(*r, attribute);  // line 15
          placements_accepted->Add();
          covered.insert(attribute);  // line 16
        }
      }
      // Lines 17-19: attributes not captured anywhere seed a new cluster.
      std::vector<Attribute> uncovered;
      for (const auto& [attribute, values] : r->values()) {
        if (covered.count(attribute) == 0) uncovered.push_back(attribute);
      }
      if (!uncovered.empty()) {
        GeneratedCluster gc;
        for (const Attribute& attribute : uncovered) {
          gc.cluster.AddForAttribute(*r, attribute);
        }
        gc.signature = gc.cluster.BuildSignature(0.0);
        gc.signature.interval = Interval(r->timestamp(), r->timestamp());
        clusters.push_back(std::move(gc));
      }
    }
  }

  // Refresh fused values (stale joins may have added occurrences) while
  // keeping each signature's creation-time interval, then compute Eq. 11.
  std::map<RecordId, const TemporalRecord*> by_id;
  for (const TemporalRecord* r : records) by_id[r->id()] = r;
  for (GeneratedCluster& gc : clusters) {
    const Interval span = gc.signature.interval;
    gc.signature = gc.cluster.BuildSignature(0.0);
    gc.signature.interval = span;
    if (fusion_ != nullptr) {
      std::vector<const TemporalRecord*> members;
      for (RecordId id : gc.cluster.records()) {
        auto it = by_id.find(id);
        if (it != by_id.end()) members.push_back(it->second);
      }
      for (auto& [attribute, values] : gc.signature.values) {
        auto counts_it = gc.cluster.value_counts().find(attribute);
        if (counts_it == gc.cluster.value_counts().end()) continue;
        values = fusion_->Fuse(attribute, counts_it->second, members);
      }
    }
  }
  ComputeConfidences(records, clusters);
  MAROON_COUNTER("maroon.phase1.clusters_formed")
      ->Add(static_cast<int64_t>(clusters.size()));
  return clusters;
}

void ClusterGenerator::ComputeConfidences(
    const std::vector<const TemporalRecord*>& records,
    std::vector<GeneratedCluster>& clusters) const {
  std::map<RecordId, const TemporalRecord*> by_id;
  for (const TemporalRecord* r : records) by_id[r->id()] = r;

  for (GeneratedCluster& gc : clusters) {
    // Group member records by source.
    std::map<SourceId, std::vector<const TemporalRecord*>> by_source;
    for (RecordId id : gc.cluster.records()) {
      auto it = by_id.find(id);
      if (it != by_id.end()) by_source[it->second->source()].push_back(it->second);
    }
    const TimePoint tmax = gc.signature.interval.end;
    for (const auto& [attribute, values] : gc.signature.values) {
      // Eq. 11: per source, the mean delay probability of its member
      // records; confidences sum over sources, each weighted by the
      // source's publication reliability (1.0 when the extension is off).
      double conf = 0.0;
      for (const auto& [source, members] : by_source) {
        double sum = 0.0;
        for (const TemporalRecord* r : members) {
          const int64_t eta = std::max<int64_t>(
              0, static_cast<int64_t>(r->timestamp()) - tmax);
          sum += DelayProbability(eta, source, attribute);
        }
        conf += SourceReliability(source, attribute) * sum /
                static_cast<double>(members.size());
      }
      gc.signature.confidence[attribute] = conf;
      // Eq. 11 confidence distribution; one observation per (cluster,
      // attribute), so histogram locking stays off the hot path.
      static obs::Histogram* confidence_histogram = MAROON_HISTOGRAM(
          "maroon.phase1.confidence", obs::UnitIntervalBuckets());
      confidence_histogram->Record(conf);
    }
  }
}

}  // namespace maroon
