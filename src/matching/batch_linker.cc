#include "matching/batch_linker.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

double BatchLinker::RecordProfileFit(const EntityProfile& profile,
                                     const TemporalRecord& record,
                                     const SimilarityCalculator& similarity) {
  double total = 0.0;
  size_t considered = 0;
  for (const auto& [attribute, values] : record.values()) {
    ++considered;
    const TemporalSequence& seq = profile.sequence(attribute);
    if (seq.empty()) continue;
    ValueSet reference = seq.ValuesAt(record.timestamp());
    if (reference.empty()) {
      for (const Triple& tr : seq.triples()) {
        reference = ValueSetUnion(reference, tr.values);
      }
    }
    const double sim = similarity.ValueSetSimilarity(reference, values);
    // A degenerate similarity (NaN/∞) contributes no evidence either way.
    if (std::isfinite(sim)) total += sim;
  }
  const double fit =
      considered == 0 ? 0.0 : total / static_cast<double>(considered);
  return std::isfinite(fit) ? fit : 0.0;
}

BatchLinkResult BatchLinker::LinkAll(
    const Dataset& dataset, const std::vector<EntityId>& targets) const {
  BatchLinkResult result;

  // Per-entity linkage, paper protocol. Entities are independent: each
  // strand reads the shared immutable dataset/models and writes only its
  // claimed slots of `linked`, so any interleaving produces the same slots.
  // The merge below runs serially in input order, making the whole result
  // identical at every thread width.
  struct PerTarget {
    bool linked = false;
    LinkResult link;
  };
  std::vector<PerTarget> linked(targets.size());
  const int width = ThreadPool::ResolveThreadCount(options_.threads);
  MAROON_GAUGE("maroon.batch.link_threads")->Set(width);
  const auto link_one = [&](size_t i) {
    auto target = dataset.target(targets[i]);
    if (!target.ok()) return;
    std::vector<const TemporalRecord*> candidates;
    for (RecordId rid : dataset.CandidatesFor(targets[i])) {
      candidates.push_back(&dataset.record(rid));
    }
    // Tail-latency instrumentation: one per-entity sample plus the amortized
    // per-record cost. Clock reads are skipped entirely while metrics are
    // off so the disabled overhead stays a branch.
    if (obs::MetricsRegistry::Enabled()) {
      const auto start = std::chrono::steady_clock::now();
      linked[i].link = maroon_->Link((*target)->clean_profile, candidates);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      MAROON_LATENCY("maroon.batch.entity_link_seconds")->Record(seconds);
      if (!candidates.empty()) {
        MAROON_LATENCY("maroon.batch.record_link_seconds")
            ->Record(seconds / static_cast<double>(candidates.size()));
      }
    } else {
      linked[i].link = maroon_->Link((*target)->clean_profile, candidates);
    }
    linked[i].linked = true;
  };
  if (width <= 1) {
    for (size_t i = 0; i < targets.size(); ++i) link_one(i);
  } else {
    ThreadPool::Shared(width)->ParallelFor(
        targets.size(), width, [&](int /*strand*/, size_t i) {
          obs::PoolTaskScope task("pool.link_entity");
          link_one(i);
        });
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!linked[i].linked) {
      ++result.skipped_entities;
      continue;
    }
    result.skipped_candidates += linked[i].link.skipped_candidates;
    result.per_entity[targets[i]] = std::move(linked[i].link);
  }

  // Collect claims.
  std::map<RecordId, std::vector<EntityId>> claims;
  for (const auto& [id, link] : result.per_entity) {
    for (RecordId rid : link.match.matched_records) {
      claims[rid].push_back(id);
    }
  }

  // Resolve.
  SimilarityCalculator similarity;
  for (const auto& [rid, claimants] : claims) {
    if (claimants.size() == 1 || !options_.exclusive_assignment) {
      result.assignment[rid] = claimants.front();
      if (claimants.size() > 1) ++result.contested_records;
      continue;
    }
    ++result.contested_records;
    const TemporalRecord& record = dataset.record(rid);
    EntityId winner = claimants.front();
    double best_fit = -1.0;
    for (const EntityId& id : claimants) {
      const double fit = RecordProfileFit(
          result.per_entity[id].match.augmented_profile, record, similarity);
      if (fit > best_fit) {
        best_fit = fit;
        winner = id;
      }
    }
    result.assignment[rid] = winner;
    // Losers drop the record from their matched set.
    for (const EntityId& id : claimants) {
      if (id == winner) continue;
      auto& matched = result.per_entity[id].match.matched_records;
      matched.erase(std::remove(matched.begin(), matched.end(), rid),
                    matched.end());
    }
  }
  return result;
}

}  // namespace maroon
