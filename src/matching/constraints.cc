#include "matching/constraints.h"

#include <algorithm>
#include <set>

namespace maroon {

namespace {

/// Union of values the profile holds on `attribute` at instant `t`, plus the
/// hypothetical `values` when `interval` covers `t`.
ValueSet HypotheticalValuesAt(const EntityProfile& profile,
                              const Attribute& attribute,
                              const ValueSet& values, const Interval& interval,
                              TimePoint t) {
  ValueSet at = profile.sequence(attribute).ValuesAt(t);
  if (interval.Contains(t)) at = ValueSetUnion(at, values);
  return at;
}

/// First instant at which `v` occurs in `seq`, if any.
std::optional<TimePoint> FirstOccurrence(const TemporalSequence& seq,
                                         const Value& v) {
  const std::vector<Interval> intervals = seq.IntervalsOf(v);
  if (intervals.empty()) return std::nullopt;
  TimePoint first = intervals.front().begin;
  for (const Interval& iv : intervals) first = std::min(first, iv.begin);
  return first;
}

/// Last instant at which `v` occurs in `seq`, if any.
std::optional<TimePoint> LastOccurrence(const TemporalSequence& seq,
                                        const Value& v) {
  const std::vector<Interval> intervals = seq.IntervalsOf(v);
  if (intervals.empty()) return std::nullopt;
  TimePoint last = intervals.front().end;
  for (const Interval& iv : intervals) last = std::max(last, iv.end);
  return last;
}

}  // namespace

// ---------------------------------------------------------------------------
// MaxSimultaneousValuesConstraint

std::string MaxSimultaneousValuesConstraint::name() const {
  return "max_simultaneous(" + attribute_ + ", " +
         std::to_string(max_values_) + ")";
}

bool MaxSimultaneousValuesConstraint::WouldViolate(
    const EntityProfile& profile, const Attribute& attribute,
    const ValueSet& values, const Interval& interval) const {
  if (attribute != attribute_ || values.empty()) return false;
  for (TimePoint t = interval.begin; t <= interval.end; ++t) {
    if (HypotheticalValuesAt(profile, attribute_, values, interval, t).size() >
        max_values_) {
      return true;
    }
  }
  return false;
}

bool MaxSimultaneousValuesConstraint::Violates(
    const EntityProfile& profile) const {
  const TemporalSequence& seq = profile.sequence(attribute_);
  if (seq.empty()) return false;
  for (TimePoint t = *seq.EarliestTime(); t <= *seq.LatestTime(); ++t) {
    if (seq.ValuesAt(t).size() > max_values_) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ImmutableAttributeConstraint

std::string ImmutableAttributeConstraint::name() const {
  return "immutable(" + attribute_ + ")";
}

bool ImmutableAttributeConstraint::WouldViolate(
    const EntityProfile& profile, const Attribute& attribute,
    const ValueSet& values, const Interval& /*interval*/) const {
  if (attribute != attribute_ || values.empty()) return false;
  std::set<Value> universe(values.begin(), values.end());
  for (const Triple& tr : profile.sequence(attribute_).triples()) {
    universe.insert(tr.values.begin(), tr.values.end());
  }
  return universe.size() > 1;
}

bool ImmutableAttributeConstraint::Violates(
    const EntityProfile& profile) const {
  std::set<Value> universe;
  for (const Triple& tr : profile.sequence(attribute_).triples()) {
    universe.insert(tr.values.begin(), tr.values.end());
  }
  return universe.size() > 1;
}

// ---------------------------------------------------------------------------
// ValueOrderConstraint

std::string ValueOrderConstraint::name() const {
  return "order(" + attribute_ + ": " + earlier_ + " before " + later_ + ")";
}

bool ValueOrderConstraint::WouldViolate(const EntityProfile& profile,
                                        const Attribute& attribute,
                                        const ValueSet& values,
                                        const Interval& interval) const {
  if (attribute != attribute_) return false;
  const TemporalSequence& seq = profile.sequence(attribute_);
  // Violation 1: inserting `earlier_` after `later_` already started.
  if (ValueSetContains(values, earlier_)) {
    const auto later_first = FirstOccurrence(seq, later_);
    if (later_first && interval.end > *later_first) return true;
  }
  // Violation 2: inserting `later_` before an existing later `earlier_`.
  if (ValueSetContains(values, later_)) {
    const auto earlier_last = LastOccurrence(seq, earlier_);
    if (earlier_last && *earlier_last > interval.begin) return true;
  }
  return false;
}

bool ValueOrderConstraint::Violates(const EntityProfile& profile) const {
  const TemporalSequence& seq = profile.sequence(attribute_);
  const auto later_first = FirstOccurrence(seq, later_);
  const auto earlier_last = LastOccurrence(seq, earlier_);
  return later_first && earlier_last && *earlier_last > *later_first;
}

// ---------------------------------------------------------------------------
// ConstraintSet

void ConstraintSet::Add(std::unique_ptr<TemporalConstraint> constraint) {
  constraints_.push_back(std::move(constraint));
}

std::vector<std::string> ConstraintSet::ViolationsOfInsert(
    const EntityProfile& profile, const Attribute& attribute,
    const ValueSet& values, const Interval& interval) const {
  std::vector<std::string> violated;
  for (const auto& c : constraints_) {
    if (c->WouldViolate(profile, attribute, values, interval)) {
      violated.push_back(c->name());
    }
  }
  return violated;
}

std::vector<std::string> ConstraintSet::ViolationsOf(
    const EntityProfile& profile) const {
  std::vector<std::string> violated;
  for (const auto& c : constraints_) {
    if (c->Violates(profile)) violated.push_back(c->name());
  }
  return violated;
}

}  // namespace maroon
