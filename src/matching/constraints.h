#ifndef MAROON_MATCHING_CONSTRAINTS_H_
#define MAROON_MATCHING_CONSTRAINTS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_sequence.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// A declarative temporal constraint on entity profiles, in the spirit of
/// Burdick et al. (the paper's ref. [4]): domain rules that a valid history
/// must satisfy. The matcher consults constraints before linking a cluster —
/// a candidate state whose insertion would violate a rule is rejected even
/// if its transition score is high (complementing the learnt model with
/// knowledge that cannot be learnt from data).
class TemporalConstraint {
 public:
  virtual ~TemporalConstraint() = default;

  /// Short human-readable name for diagnostics.
  virtual std::string name() const = 0;

  /// True iff inserting (`values` over `interval`) into `profile`'s
  /// sequence for `attribute` would violate this constraint.
  virtual bool WouldViolate(const EntityProfile& profile,
                            const Attribute& attribute,
                            const ValueSet& values,
                            const Interval& interval) const = 0;

  /// True iff `profile` as a whole violates this constraint (used to audit
  /// augmented profiles).
  virtual bool Violates(const EntityProfile& profile) const = 0;
};

/// At most `max_values` simultaneous values on `attribute` (max_values = 1
/// is the classic single-valued rule: one Title, one Location at a time).
class MaxSimultaneousValuesConstraint final : public TemporalConstraint {
 public:
  MaxSimultaneousValuesConstraint(Attribute attribute, size_t max_values)
      : attribute_(std::move(attribute)), max_values_(max_values) {}

  std::string name() const override;
  bool WouldViolate(const EntityProfile& profile, const Attribute& attribute,
                    const ValueSet& values,
                    const Interval& interval) const override;
  bool Violates(const EntityProfile& profile) const override;

 private:
  Attribute attribute_;
  size_t max_values_;
};

/// `attribute` never changes once set (e.g., birthplace). Any second
/// distinct value violates the rule.
class ImmutableAttributeConstraint final : public TemporalConstraint {
 public:
  explicit ImmutableAttributeConstraint(Attribute attribute)
      : attribute_(std::move(attribute)) {}

  std::string name() const override;
  bool WouldViolate(const EntityProfile& profile, const Attribute& attribute,
                    const ValueSet& values,
                    const Interval& interval) const override;
  bool Violates(const EntityProfile& profile) const override;

 private:
  Attribute attribute_;
};

/// On `attribute`, `earlier_value` may never occur strictly after
/// `later_value` has first occurred (e.g., "Intern" never after "CEO").
class ValueOrderConstraint final : public TemporalConstraint {
 public:
  ValueOrderConstraint(Attribute attribute, Value earlier_value,
                       Value later_value)
      : attribute_(std::move(attribute)),
        earlier_(std::move(earlier_value)),
        later_(std::move(later_value)) {}

  std::string name() const override;
  bool WouldViolate(const EntityProfile& profile, const Attribute& attribute,
                    const ValueSet& values,
                    const Interval& interval) const override;
  bool Violates(const EntityProfile& profile) const override;

 private:
  Attribute attribute_;
  Value earlier_;
  Value later_;
};

/// An owning collection of constraints checked together.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void Add(std::unique_ptr<TemporalConstraint> constraint);

  /// Names of constraints that the hypothetical insertion would violate.
  std::vector<std::string> ViolationsOfInsert(const EntityProfile& profile,
                                              const Attribute& attribute,
                                              const ValueSet& values,
                                              const Interval& interval) const;

  /// Names of constraints violated by the profile as-is.
  std::vector<std::string> ViolationsOf(const EntityProfile& profile) const;

  bool empty() const { return constraints_.empty(); }
  size_t size() const { return constraints_.size(); }

 private:
  std::vector<std::unique_ptr<TemporalConstraint>> constraints_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_CONSTRAINTS_H_
