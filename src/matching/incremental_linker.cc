#include "matching/incremental_linker.h"

#include <string>

namespace maroon {

IncrementalLinker::IncrementalLinker(const Maroon* maroon,
                                     EntityProfile clean_profile)
    : maroon_(maroon),
      clean_(clean_profile),
      current_(std::move(clean_profile)) {}

Status IncrementalLinker::Observe(TemporalRecord record) {
  if (record.values().empty()) {
    ++rejected_;
    return Status::InvalidArgument("record " + std::to_string(record.id()) +
                                   " carries no attribute values");
  }
  records_.push_back(std::move(record));
  ++pending_;
  return Status::OK();
}

LinkResult IncrementalLinker::Flush() {
  std::vector<const TemporalRecord*> candidates;
  candidates.reserve(records_.size());
  for (const TemporalRecord& r : records_) candidates.push_back(&r);
  // Always link from the original clean profile: the trusted history stays
  // authoritative, and conclusions drawn from fewer records are revisited
  // now that more evidence is available.
  LinkResult result = maroon_->Link(clean_, candidates);
  current_ = result.match.augmented_profile;
  linked_ = result.match.matched_records;
  pending_ = 0;
  return result;
}

}  // namespace maroon
