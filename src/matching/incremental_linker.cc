#include "matching/incremental_linker.h"

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace maroon {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

IncrementalLinker::IncrementalLinker(const Maroon* maroon,
                                     EntityProfile clean_profile,
                                     IncrementalLinkerOptions options)
    : maroon_(maroon),
      clean_(clean_profile),
      current_(std::move(clean_profile)),
      options_(options) {}

Status IncrementalLinker::Observe(TemporalRecord record) {
  // Ingest latency is worth a histogram sample even though the path is
  // cheap: a p999 spike here means vector growth or allocator stalls in the
  // streaming path. Clock reads are skipped while metrics are off.
  const bool timed = obs::MetricsRegistry::Enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  if (record.values().empty()) {
    ++rejected_;
    return Status::InvalidArgument("record " + std::to_string(record.id()) +
                                   " carries no attribute values");
  }
  if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
    return Status::ResourceExhausted(
        "admission buffer full (" + std::to_string(pending_) +
        " pending); Flush() and retry");
  }
  if (options_.max_records > 0 && records_.size() >= options_.max_records) {
    // Graceful degradation: beyond the memory bound the pool stops growing
    // and overflow records are parked in the quarantine instead of being
    // dropped on the floor.
    quarantine_.push_back(std::move(record));
    MAROON_COUNTER("maroon.stream.shed")->Add();
    return Status::OK();
  }
  records_.push_back(std::move(record));
  ++pending_;
  if (timed) {
    MAROON_LATENCY("maroon.incremental.observe_seconds")
        ->Record(SecondsSince(start));
  }
  return Status::OK();
}

LinkResult IncrementalLinker::Flush() {
  const bool timed = obs::MetricsRegistry::Enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point();
  std::vector<const TemporalRecord*> candidates;
  candidates.reserve(records_.size());
  for (const TemporalRecord& r : records_) candidates.push_back(&r);
  // Always link from the original clean profile: the trusted history stays
  // authoritative, and conclusions drawn from fewer records are revisited
  // now that more evidence is available.
  LinkResult result = maroon_->Link(clean_, candidates);
  current_ = result.match.augmented_profile;
  linked_ = result.match.matched_records;
  pending_ = 0;
  if (timed) {
    const double seconds = SecondsSince(start);
    MAROON_LATENCY("maroon.incremental.flush_seconds")->Record(seconds);
    if (!candidates.empty()) {
      MAROON_LATENCY("maroon.incremental.record_link_seconds")
          ->Record(seconds / static_cast<double>(candidates.size()));
    }
  }
  return result;
}

}  // namespace maroon
