#ifndef MAROON_MATCHING_PROFILE_MATCHER_H_
#define MAROON_MATCHING_PROFILE_MATCHER_H_

#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"
#include "matching/cluster_generator.h"
#include "matching/constraints.h"
#include "transition/transition_model.h"

namespace maroon {

/// Options for Phase II (Algorithm 3).
struct ProfileMatcherOptions {
  /// θ: only clusters whose match score (Eq. 15) exceeds this are linked.
  double theta = 0.05;
  /// Attributes for which an entity cannot hold two different values at the
  /// same instant (e.g., Title, Location); used for conflict pruning.
  std::vector<Attribute> single_valued_attributes;
  /// Safety bound on iterations (0 = unbounded; the loop is already bounded
  /// by the number of clusters).
  size_t max_iterations = 0;
  /// Optional declarative temporal constraints (must outlive the matcher).
  /// A cluster whose insertion would violate any rule is rejected and
  /// removed from consideration, regardless of its match score.
  const ConstraintSet* constraints = nullptr;
};

/// The outcome of Phase II for one target entity.
struct MatchResult {
  /// R': the ids of all records in the linked clusters.
  std::vector<RecordId> matched_records;
  /// The augmented, normalized profile.
  EntityProfile augmented_profile;
  /// Indices (into the Phase-I cluster vector) of linked clusters, in match
  /// order.
  std::vector<size_t> linked_clusters;
  /// Indices of clusters pruned for conflicting with a linked cluster.
  std::vector<size_t> pruned_clusters;
  /// Clusters discarded because a degenerate transition or freshness model
  /// produced a non-finite (NaN/∞) match score. Such clusters are excluded
  /// rather than allowed to dominate or poison the iteration.
  size_t degenerate_scores = 0;
  size_t iterations = 0;
};

/// Phase II of MAROON (paper Algorithm 3): iteratively links the cluster
/// with the highest match score
///
///   match(Φ_n, c) = (1/|A|) Σ_A conf(c, A) · transitPr(Φ_n[A], c, A)
///
/// to the profile, augments the profile with the cluster's state, prunes
/// clusters that conflict on single-valued attributes, and repeats until no
/// cluster exceeds θ. Eq. 14 sums are maintained incrementally as the
/// profile grows.
class ProfileMatcher {
 public:
  /// `transition` must outlive the matcher.
  ProfileMatcher(const TransitionModel* transition,
                 std::vector<Attribute> schema_attributes,
                 ProfileMatcherOptions options = {});

  /// Runs Algorithm 3 starting from `profile` over `clusters`.
  [[nodiscard]] MatchResult MatchAndAugment(
      const EntityProfile& profile,
      const std::vector<GeneratedCluster>& clusters) const;

  /// match(Φ_n, c) per Eq. 15 (non-incremental; used by tests and one-off
  /// scoring).
  [[nodiscard]] double MatchScore(const EntityProfile& profile,
                                  const GeneratedCluster& cluster) const;

  const ProfileMatcherOptions& options() const { return options_; }

 private:
  const TransitionModel* transition_;
  std::vector<Attribute> schema_attributes_;
  ProfileMatcherOptions options_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_PROFILE_MATCHER_H_
