#ifndef MAROON_MATCHING_MAROON_H_
#define MAROON_MATCHING_MAROON_H_

#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "freshness/freshness_model.h"
#include "matching/cluster_generator.h"
#include "matching/profile_matcher.h"
#include "similarity/record_similarity.h"
#include "transition/transition_model.h"

namespace maroon {

/// End-to-end configuration of the MAROON framework. Defaults follow the
/// paper's §5.1 (µ = 0.9, µ' = 0.2).
struct MaroonOptions {
  ClusterGeneratorOptions cluster;   // Phase I.
  ProfileMatcherOptions matcher;     // Phase II.
};

/// Wall-clock cost of one linkage run, split by phase (the quantities of the
/// paper's Figure 7).
struct PhaseTimings {
  double phase1_seconds = 0.0;  // cluster generation
  double phase2_seconds = 0.0;  // match & augment

  double total_seconds() const { return phase1_seconds + phase2_seconds; }

  PhaseTimings& operator+=(const PhaseTimings& other) {
    phase1_seconds += other.phase1_seconds;
    phase2_seconds += other.phase2_seconds;
    return *this;
  }
};

/// The result of linking one target entity's candidate records.
struct LinkResult {
  MatchResult match;
  /// Number of clusters produced by Phase I.
  size_t num_clusters = 0;
  /// Candidates skipped as degenerate before Phase I: null pointers and
  /// records carrying no attribute values at all. Non-zero counters signal
  /// upstream data problems without failing the link.
  size_t skipped_candidates = 0;
  PhaseTimings timings;
};

/// The MAROON framework facade: given the learnt transition and freshness
/// models, links temporal records to a target entity profile and augments it
/// (paper §4.3). One instance is reusable across target entities.
class Maroon {
 public:
  /// `transition`, `freshness`, and `similarity` must outlive this object.
  Maroon(const TransitionModel* transition, const FreshnessModel* freshness,
         const SimilarityCalculator* similarity,
         std::vector<Attribute> schema_attributes, MaroonOptions options = {});

  /// Attaches an optional source-reliability model (must outlive this
  /// object); nullptr detaches. Consulted by Phase I when
  /// options().cluster.use_source_reliability is true.
  void SetReliabilityModel(const ReliabilityModel* reliability) {
    reliability_ = reliability;
  }

  /// Attaches an optional cluster-signature fusion strategy (must outlive
  /// this object); nullptr restores majority vote.
  void SetFusionStrategy(const FusionStrategy* fusion) { fusion_ = fusion; }

  /// Runs Phase I + Phase II for one target entity: `clean_profile` is the
  /// entity's known history, `candidates` the records to consider (pointers
  /// must stay valid for the call).
  [[nodiscard]] LinkResult Link(
      const EntityProfile& clean_profile,
      const std::vector<const TemporalRecord*>& candidates) const;

  const MaroonOptions& options() const { return options_; }
  const std::vector<Attribute>& schema_attributes() const {
    return schema_attributes_;
  }

 private:
  const TransitionModel* transition_;
  const FreshnessModel* freshness_;
  const ReliabilityModel* reliability_ = nullptr;
  const FusionStrategy* fusion_ = nullptr;
  const SimilarityCalculator* similarity_;
  std::vector<Attribute> schema_attributes_;
  MaroonOptions options_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_MAROON_H_
