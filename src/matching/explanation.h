#ifndef MAROON_MATCHING_EXPLANATION_H_
#define MAROON_MATCHING_EXPLANATION_H_

#include <string>
#include <vector>

#include "core/entity_profile.h"
#include "matching/cluster_generator.h"
#include "transition/transition_model.h"

namespace maroon {

/// How one attribute contributes to a cluster's Eq. 15 match score.
struct AttributeContribution {
  Attribute attribute;
  /// conf(c, A) — Eq. 11's source support.
  double confidence = 0.0;
  /// transitPr(Φ_n[A], c, A) — Eq. 14's transition probability.
  double transit_probability = 0.0;
  /// confidence * transit_probability / |A| — the summand of Eq. 15.
  double contribution = 0.0;
  /// The cluster's value set for the attribute.
  ValueSet values;
};

/// A decomposition of match(Φ_n, c) into per-attribute terms — "why did (or
/// didn't) this cluster link?". Production linkage systems need this level
/// of auditability; the decomposition is exact (the contributions sum to
/// the score).
struct MatchExplanation {
  double score = 0.0;
  /// Non-zero-valued attributes first, by descending contribution.
  std::vector<AttributeContribution> contributions;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Explains the Eq. 15 score of `cluster` against `profile`. The returned
/// score equals ProfileMatcher::MatchScore for the same inputs.
MatchExplanation ExplainMatch(const TransitionModel& transition,
                              const std::vector<Attribute>& schema_attributes,
                              const EntityProfile& profile,
                              const GeneratedCluster& cluster);

}  // namespace maroon

#endif  // MAROON_MATCHING_EXPLANATION_H_
