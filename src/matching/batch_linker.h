#ifndef MAROON_MATCHING_BATCH_LINKER_H_
#define MAROON_MATCHING_BATCH_LINKER_H_

#include <map>
#include <vector>

#include "core/dataset.h"
#include "matching/maroon.h"

namespace maroon {

/// Options for batch linking.
struct BatchLinkOptions {
  /// When true, a record claimed by several target entities is assigned only
  /// to the entity whose augmented profile explains it best; the others drop
  /// it from their matched set.
  bool exclusive_assignment = true;

  /// Worker threads for the per-entity linkage loop. <= 0 uses the process
  /// default (--threads / MAROON_THREADS, else 1). The result is identical
  /// at every width: entities link independently against the immutable
  /// dataset and models, per-entity results merge in input order, and claim
  /// collection plus conflict resolution stay serial.
  int threads = 0;
};

/// The outcome of linking many targets over a shared record pool.
struct BatchLinkResult {
  /// Per-entity linkage (after conflict resolution when exclusive).
  std::map<EntityId, LinkResult> per_entity;
  /// Final record -> entity assignment (only records linked by someone).
  std::map<RecordId, EntityId> assignment;
  /// Records that more than one entity claimed before resolution.
  size_t contested_records = 0;
  /// Requested targets that are not registered in the dataset (skipped).
  size_t skipped_entities = 0;
  /// Degenerate candidates skipped across all entities (see LinkResult).
  size_t skipped_candidates = 0;
};

/// Links a set of target entities against a shared dataset — the deployment
/// shape of the paper's problem, where the 239 DBLP authors sharing 21 names
/// all compete for the same records. Per-entity linkage (the paper's
/// protocol) can claim one record for two entities; this driver resolves
/// such contests by how well each claimant's augmented profile explains the
/// record at its timestamp.
class BatchLinker {
 public:
  /// `maroon` must outlive the linker.
  explicit BatchLinker(const Maroon* maroon, BatchLinkOptions options = {})
      : maroon_(maroon), options_(options) {}

  /// Runs linkage for every entity in `targets` (candidates come from
  /// Dataset::CandidatesFor), then resolves contested records.
  [[nodiscard]] BatchLinkResult LinkAll(
      const Dataset& dataset, const std::vector<EntityId>& targets) const;

  /// How well `profile` explains `record`: mean over the record's attributes
  /// of the similarity between the record's values and the profile's values
  /// at the record's timestamp (falling back to the attribute's whole value
  /// universe when the timestamp is uncovered). Exposed for tests.
  [[nodiscard]] static double RecordProfileFit(
      const EntityProfile& profile, const TemporalRecord& record,
      const SimilarityCalculator& similarity);

 private:
  const Maroon* maroon_;
  BatchLinkOptions options_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_BATCH_LINKER_H_
