#ifndef MAROON_MATCHING_BLOCKER_H_
#define MAROON_MATCHING_BLOCKER_H_

#include <map>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/temporal_record.h"

namespace maroon {

/// Options for candidate blocking.
struct BlockerOptions {
  /// When true, candidate lookup also admits records whose normalized name
  /// is Jaro-Winkler-similar to the query name (catching typos and ordering
  /// variations); when false, only exact normalized matches.
  bool fuzzy = false;
  /// Jaro-Winkler threshold on normalized names for fuzzy matching.
  double name_similarity_threshold = 0.92;
};

/// Name-based candidate blocking for temporal linkage.
///
/// The paper blocks candidates by exact name ("the records that have the
/// same name with the entity"); real crawled mentions carry typos and token
/// reorderings, so this blocker adds a normalized index (lower-cased,
/// token-sorted) with optional fuzzy lookup over the distinct name keys.
class NameBlocker {
 public:
  explicit NameBlocker(BlockerOptions options = {}) : options_(options) {}

  /// Builds the index over every record of `dataset`. May be called again
  /// to re-index.
  void Index(const Dataset& dataset);

  /// Record ids whose (normalized, optionally fuzzy-matched) name matches
  /// `name`, ascending.
  std::vector<RecordId> Candidates(const std::string& name) const;

  /// Lower-cases and token-sorts a name ("brown david" == "David Brown").
  static std::string NormalizeName(const std::string& name);

  /// Number of distinct normalized name keys in the index.
  size_t NumKeys() const { return index_.size(); }

  const BlockerOptions& options() const { return options_; }

 private:
  std::map<std::string, std::vector<RecordId>> index_;
  BlockerOptions options_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_BLOCKER_H_
