#ifndef MAROON_MATCHING_CLUSTER_GENERATOR_H_
#define MAROON_MATCHING_CLUSTER_GENERATOR_H_

#include <vector>

#include "clustering/cluster.h"
#include "clustering/fusion.h"
#include "clustering/partition_clusterer.h"
#include "core/temporal_record.h"
#include "core/value.h"
#include "freshness/freshness_model.h"
#include "freshness/reliability_model.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// A cluster together with its signature. The signature interval is fixed
/// when the cluster is created (span of its fresh members, or the stale
/// record's timestamp for stale-seeded clusters) — later stale joins do NOT
/// extend it; that is the point of the source-aware placement (paper §4.3.1,
/// e.g. record r7 joining cluster c1 of Table 5 without stretching
/// [2001, 2002]).
struct GeneratedCluster {
  Cluster cluster;
  ClusterSignature signature;
};

/// Options for Phase I (Algorithm 2).
struct ClusterGeneratorOptions {
  /// µ: a source is fresh iff Delay(0, s, A) > µ for every attribute.
  double mu = 0.9;
  /// µ': a stale record's attribute may describe a cluster's period iff
  /// Delay(max(r.t - c.tmax, 0), r.s, A) > µ' (Eq. 10).
  double mu_prime = 0.2;
  /// Threshold for "c.A ≈ r.A" when placing stale values into a cluster.
  double value_match_threshold = 0.8;
  /// PARTITION threshold for the initial fresh-record clustering.
  double partition_threshold = 0.8;
  /// Ablation switch: when false, every source is treated as fresh and every
  /// delay probability as 1 — Phase I degenerates to plain PARTITION
  /// clustering with source-count confidences.
  bool use_source_freshness = true;
  /// When true and a reliability model is attached, each source's Eq. 11
  /// confidence contribution is weighted by its publication reliability
  /// (the §6 future-work extension after Li et al. KDD 2014).
  bool use_source_reliability = true;
};

/// Phase I of MAROON's matching algorithm (paper Algorithm 2): reorganizes
/// the input records into clusters, each representing the state of some
/// entity over some period, placing possibly-stale records according to the
/// update-delay distributions of their sources, and computing per-attribute
/// confidence scores (Eq. 11).
class ClusterGenerator {
 public:
  /// `similarity` and `freshness` must outlive the generator.
  ClusterGenerator(const SimilarityCalculator* similarity,
                   const FreshnessModel* freshness,
                   std::vector<Attribute> schema_attributes,
                   ClusterGeneratorOptions options = {});

  /// Attaches an optional source-reliability model (must outlive the
  /// generator); nullptr detaches. Only consulted when
  /// options().use_source_reliability is true.
  void SetReliabilityModel(const ReliabilityModel* reliability) {
    reliability_ = reliability;
  }

  /// Attaches an optional fusion strategy for cluster signatures (must
  /// outlive the generator); nullptr restores the paper's majority vote.
  void SetFusionStrategy(const FusionStrategy* fusion) { fusion_ = fusion; }

  /// Runs Algorithm 2 on `records` (pointers must stay valid for the call).
  std::vector<GeneratedCluster> Generate(
      const std::vector<const TemporalRecord*>& records) const;

  const ClusterGeneratorOptions& options() const { return options_; }

 private:
  double SourceReliability(SourceId source, const Attribute& attribute) const;

  bool SourceIsFresh(SourceId source) const;
  double DelayProbability(int64_t eta, SourceId source,
                          const Attribute& attribute) const;
  void ComputeConfidences(
      const std::vector<const TemporalRecord*>& records,
      std::vector<GeneratedCluster>& clusters) const;

  const SimilarityCalculator* similarity_;
  const FreshnessModel* freshness_;
  const ReliabilityModel* reliability_ = nullptr;
  const FusionStrategy* fusion_ = nullptr;
  std::vector<Attribute> schema_attributes_;
  ClusterGeneratorOptions options_;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_CLUSTER_GENERATOR_H_
