#ifndef MAROON_MATCHING_INCREMENTAL_LINKER_H_
#define MAROON_MATCHING_INCREMENTAL_LINKER_H_

#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "matching/maroon.h"

namespace maroon {

/// Overload limits for IncrementalLinker. Defaults are unbounded, matching
/// the historical behaviour.
struct IncrementalLinkerOptions {
  /// Backpressure: Observe() returns ResourceExhausted once this many
  /// records are buffered without a Flush(). 0 = unbounded.
  size_t max_pending = 0;
  /// Memory bound on the whole accumulated pool: once reached, further
  /// records are shed to the quarantine (counted under "maroon.stream.shed")
  /// instead of growing the pool — linkage quality degrades gracefully,
  /// memory does not. 0 = unbounded.
  size_t max_records = 0;
};

/// Streaming profile maintenance — the paper's motivating usage: "an
/// increasingly complete and up-to-date entity profile can be derived as
/// more and more temporal records are aggregated from different sources"
/// (§1).
///
/// Records about one target entity arrive over time; each Flush() links the
/// *entire* accumulated pool against the entity's original clean profile (so
/// early linkage mistakes are revisited as more evidence accumulates — the
/// iterative matching of Algorithm 3 benefits from every record seen so
/// far), and reports what the new evidence changed.
class IncrementalLinker {
 public:
  /// `maroon` must outlive the linker; `clean_profile` is the entity's
  /// trusted starting history.
  IncrementalLinker(const Maroon* maroon, EntityProfile clean_profile,
                    IncrementalLinkerOptions options = {});

  /// Buffers one observed record (copied; records may arrive out of
  /// timestamp order). Degenerate records — no attribute values at all —
  /// are rejected with InvalidArgument and counted instead of buffered, so
  /// a dirty stream degrades the pool instead of corrupting it.
  ///
  /// Overload behaviour (see IncrementalLinkerOptions): a full admission
  /// buffer returns ResourceExhausted (the caller should Flush() and
  /// retry); a full record pool sheds the record to the quarantine and
  /// returns OK.
  Status Observe(TemporalRecord record);

  /// Number of records observed so far.
  size_t NumObserved() const { return records_.size(); }
  /// Records buffered since the last Flush().
  size_t NumPending() const { return pending_; }
  /// Degenerate records rejected by Observe() so far.
  size_t NumRejected() const { return rejected_; }
  /// Records shed to the quarantine because the pool hit max_records.
  size_t NumShed() const { return quarantine_.size(); }
  /// The shed records, in arrival order — kept so operators can inspect or
  /// re-drive them after the overload clears.
  const std::vector<TemporalRecord>& quarantine() const { return quarantine_; }

  /// Re-links the accumulated pool and updates the current profile.
  /// Returns the linkage result over all records observed so far.
  [[nodiscard]] LinkResult Flush();

  /// The latest augmented profile (the clean profile before the first
  /// Flush()).
  const EntityProfile& current_profile() const { return current_; }

  /// Record ids linked as of the last Flush().
  const std::vector<RecordId>& linked_records() const { return linked_; }

 private:
  const Maroon* maroon_;
  EntityProfile clean_;
  EntityProfile current_;
  IncrementalLinkerOptions options_;
  std::vector<TemporalRecord> records_;
  std::vector<TemporalRecord> quarantine_;
  std::vector<RecordId> linked_;
  size_t pending_ = 0;
  size_t rejected_ = 0;
};

}  // namespace maroon

#endif  // MAROON_MATCHING_INCREMENTAL_LINKER_H_
