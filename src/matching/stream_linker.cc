#include "matching/stream_linker.h"

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "core/profile_snapshot.h"
#include "obs/metrics.h"

namespace maroon {

namespace {

const failpoint::Registrar kFpStreamApply{
    "stream.apply.before",
    "crash window after a record is WAL-durable, before it mutates the "
    "store"};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<StreamLinker> StreamLinker::Open(const StreamLinkerOptions& options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument("StreamLinkerOptions.wal_path is required");
  }
  // Opening the writer first repairs any torn tail, so the replay below
  // only ever sees whole, checksummed frames.
  MAROON_ASSIGN_OR_RETURN(ProfileWal wal,
                          ProfileWal::Open(options.wal_path, options.wal));
  StreamLinker linker(options, std::move(wal));

  uint64_t snapshot_seq = 0;
  if (!options.snapshot_dir.empty()) {
    auto snapshot = LoadNewestValidSnapshot(options.snapshot_dir);
    if (snapshot.ok()) {
      linker.store_ = std::move(snapshot->store);
      snapshot_seq = snapshot->last_seq;
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      return snapshot.status();
    }
    // NotFound: no usable snapshot — recover from the WAL alone.
  }

  // Replay from the beginning to learn every durable record id (the resume
  // filter), applying only the frames the snapshot has not folded in yet.
  MAROON_ASSIGN_OR_RETURN(ProfileWalReplay replay,
                          ReplayProfileWal(options.wal_path));
  for (ReplayedRecord& entry : replay.records) {
    linker.durable_ids_.insert(entry.record.id());
    if (entry.seq <= snapshot_seq) continue;
    MAROON_ASSIGN_OR_RETURN(EntityId applied,
                            ApplyRecordToStore(entry.record, &linker.store_));
    (void)applied;
    ++linker.stats_.recovered;
  }
  return linker;
}

Status StreamLinker::Submit(TemporalRecord record) {
  thread_checker_.Check();
  if (record.values().empty()) {
    ++stats_.rejected;
    MAROON_COUNTER("maroon.stream.rejected")->Add();
    return Status::InvalidArgument("record " + std::to_string(record.id()) +
                                   " carries no attribute values");
  }
  if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_.size()) +
        " records); Drain() and resubmit");
  }
  ++stats_.submitted;
  queue_.push_back(std::move(record));
  return Status::OK();
}

bool StreamLinker::ShouldShed(const TemporalRecord& record) const {
  if (options_.max_store_entities == 0) return false;
  if (store_.size() < options_.max_store_entities) return false;
  // At the bound, records merging into an existing profile still apply;
  // only records that would mint a new entity are shed. The decision reads
  // nothing but (record, store), so a recovered run re-derives it exactly.
  return store_.FindByName(record.name()).empty();
}

Status StreamLinker::AppendWithRetry(const TemporalRecord& record) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      MAROON_COUNTER("maroon.stream.retries")->Add();
      if (options_.retry_initial_backoff_us > 0) {
        const int64_t backoff_us =
            static_cast<int64_t>(options_.retry_initial_backoff_us)
            << (attempt - 1);
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
    }
    last = wal_.Append(record);
    if (last.ok()) return last;
    // Only IO errors are transient (the writer rolled back to a frame
    // boundary, so the retry appends cleanly); anything else is a bug in
    // the caller or the log and retrying would just repeat it.
    if (last.code() != StatusCode::kIOError) return last;
  }
  return Status::IOError("WAL append failed after " +
                         std::to_string(options_.max_retries) +
                         " retries: " + last.message());
}

Status StreamLinker::MaybeSnapshot(bool force) {
  if (options_.snapshot_dir.empty()) return Status::OK();
  if (applied_since_snapshot_ == 0) return Status::OK();
  if (!force && (options_.snapshot_every == 0 ||
                 applied_since_snapshot_ < options_.snapshot_every)) {
    return Status::OK();
  }
  const Status written =
      WriteSnapshot(store_, wal_.last_seq(), options_.snapshot_dir);
  if (!written.ok()) {
    // Snapshot loss is graceful: recovery just replays a longer WAL tail.
    // Keep streaming and retry at the next boundary.
    ++stats_.snapshot_failures;
    MAROON_COUNTER("maroon.stream.snapshot_failures")->Add();
    return Status::OK();
  }
  ++stats_.snapshots_written;
  MAROON_COUNTER("maroon.stream.snapshots")->Add();
  applied_since_snapshot_ = 0;
  return Status::OK();
}

Status StreamLinker::Drain() {
  const Status status = DrainImpl();
  // Latch non-transient failures for the health surface; a later Drain
  // that empties the queue clears the latch (the condition passed).
  last_error_ = status;
  return status;
}

Status StreamLinker::DrainImpl() {
  thread_checker_.Check();
  const bool timed = obs::MetricsRegistry::Enabled();
  while (!queue_.empty()) {
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
    const TemporalRecord& record = queue_.front();
    if (durable_ids_.count(record.id()) > 0) {
      // Resume after a crash: the record is already durable (and applied by
      // recovery), so the at-least-once redelivery becomes exactly-once.
      ++stats_.resumed_skips;
      MAROON_COUNTER("maroon.stream.resumed_skips")->Add();
      queue_.pop_front();
      continue;
    }
    if (ShouldShed(record)) {
      ++stats_.shed;
      MAROON_COUNTER("maroon.stream.shed")->Add();
      quarantine_.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    // WAL first, store second: a crash between the two replays the record;
    // a crash before the append loses only what was never acknowledged.
    MAROON_RETURN_IF_ERROR(AppendWithRetry(record));
    MAROON_CRASH_POINT("stream.apply.before");
    durable_ids_.insert(record.id());
    auto applied = ApplyRecordToStore(record, &store_);
    if (!applied.ok()) return applied.status();
    queue_.pop_front();
    ++stats_.applied;
    ++applied_since_snapshot_;
    MAROON_COUNTER("maroon.stream.applied")->Add();
    if (timed) {
      MAROON_LATENCY("maroon.stream.record_seconds")
          ->Record(SecondsSince(start));
    }
    MAROON_RETURN_IF_ERROR(MaybeSnapshot(/*force=*/false));
  }
  return Status::OK();
}

Status StreamLinker::Flush() {
  thread_checker_.Check();
  MAROON_RETURN_IF_ERROR(Drain());
  const Status synced = wal_.Sync();
  if (!synced.ok()) last_error_ = synced;
  return synced;
}

void StreamLinker::ReportHealth(obs::HealthRegistry* health) const {
  if (!last_error_.ok()) {
    health->Set("wal", obs::HealthState::kUnhealthy,
                "latched: " + last_error_.message());
  } else {
    health->Set("wal", obs::HealthState::kOk);
  }

  const size_t depth = queue_.size();
  if (options_.max_queue > 0 && depth * 4 >= options_.max_queue * 3) {
    health->Set("backpressure", obs::HealthState::kDegraded,
                "admission queue " + std::to_string(depth) + "/" +
                    std::to_string(options_.max_queue));
  } else {
    health->Set("backpressure", obs::HealthState::kOk);
  }

  if (options_.max_store_entities > 0 &&
      store_.size() >= options_.max_store_entities) {
    health->Set("memory", obs::HealthState::kDegraded,
                "store at its " +
                    std::to_string(options_.max_store_entities) +
                    "-entity bound; shedding new entities");
  } else {
    health->Set("memory", obs::HealthState::kOk);
  }

  if (!options_.snapshot_dir.empty()) {
    if (stats_.snapshot_failures > 0) {
      health->Set("snapshot", obs::HealthState::kDegraded,
                  std::to_string(stats_.snapshot_failures) +
                      " snapshot write failures");
    } else if (options_.snapshot_every > 0 &&
               applied_since_snapshot_ > 2 * options_.snapshot_every) {
      health->Set("snapshot", obs::HealthState::kDegraded,
                  "snapshot cadence slipped: " +
                      std::to_string(applied_since_snapshot_) +
                      " records since the last one");
    } else {
      health->Set("snapshot", obs::HealthState::kOk);
    }
  }
}

Status StreamLinker::Close() {
  thread_checker_.Check();
  MAROON_RETURN_IF_ERROR(Flush());
  MAROON_RETURN_IF_ERROR(MaybeSnapshot(/*force=*/true));
  return wal_.Close();
}

}  // namespace maroon
