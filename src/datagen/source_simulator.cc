#include "datagen/source_simulator.h"

#include <algorithm>

#include "datagen/career_model.h"

namespace maroon {

namespace {

/// Introduces one typo: transpose two adjacent letters or drop a letter.
std::string IntroduceTypo(const std::string& name, Random& rng) {
  if (name.size() < 3) return name;
  const size_t pos =
      static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(name.size()) - 2));
  std::string out = name;
  if (rng.Bernoulli(0.5)) {
    std::swap(out[pos], out[pos + 1]);
  } else {
    out.erase(pos, 1);
  }
  return out;
}

}  // namespace

size_t SourceSimulator::EmitRecords(const EntityProfile& ground_truth,
                                    Dataset& dataset, Random& rng) const {
  const auto earliest = ground_truth.EarliestTime();
  const auto latest = ground_truth.LatestTime();
  if (!earliest || !latest) return 0;

  size_t emitted = 0;
  const TimePoint from = std::max(*earliest, config_.active_from);
  for (TimePoint t = from; t <= *latest; ++t) {
    if (!rng.Bernoulli(config_.publication_rate)) continue;

    std::string mention = ground_truth.name();
    if (config_.name_typo_rate > 0.0 &&
        rng.Bernoulli(config_.name_typo_rate)) {
      mention = IntroduceTypo(mention, rng);
    }
    TemporalRecord record(/*id=*/0, std::move(mention), t, source_id_);
    bool has_value = false;
    for (const auto& [attribute, seq] : ground_truth.sequences()) {
      auto coverage_it = config_.coverage.find(attribute);
      const double coverage =
          coverage_it != config_.coverage.end() ? coverage_it->second : 1.0;
      if (!rng.Bernoulli(coverage)) continue;

      auto fresh_it = config_.fresh_probability.find(attribute);
      double fresh_p =
          fresh_it != config_.fresh_probability.end() ? fresh_it->second : 1.0;
      if (!config_.fresh_probability_after.empty() &&
          t >= config_.freshness_change_year) {
        auto late_it = config_.fresh_probability_after.find(attribute);
        if (late_it != config_.fresh_probability_after.end()) {
          fresh_p = late_it->second;
        }
      }
      int64_t delay = 0;
      if (!rng.Bernoulli(fresh_p)) {
        auto decay_it = config_.stale_decay.find(attribute);
        const double decay =
            decay_it != config_.stale_decay.end() ? decay_it->second : 0.5;
        delay = 1 + rng.Geometric(decay);
      }
      // The published value is the entity's true value `delay` years ago,
      // clamped to the start of the observed history.
      const TimePoint observed_at = std::max<TimePoint>(
          *earliest, static_cast<TimePoint>(t - delay));
      ValueSet values = seq.ValuesAt(observed_at);
      if (values.empty()) continue;
      // Publication noise: occasionally replace the value with a wrong one
      // from the error pool (never one the entity actually held).
      auto error_it = config_.error_rate.find(attribute);
      if (error_it != config_.error_rate.end() &&
          rng.Bernoulli(error_it->second)) {
        auto pool_it = config_.error_pool.find(attribute);
        if (pool_it != config_.error_pool.end() && !pool_it->second.empty()) {
          const std::vector<Value>& pool = pool_it->second;
          for (int attempt = 0; attempt < 8; ++attempt) {
            const Value& wrong = pool[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(pool.size()) - 1))];
            if (seq.IntervalsOf(wrong).empty()) {
              values = MakeValueSet({wrong});
              break;
            }
          }
        }
      }
      record.SetValue(attribute, std::move(values));
      has_value = true;
    }
    if (!has_value) continue;
    const RecordId id = dataset.AddRecord(std::move(record));
    (void)dataset.SetLabel(id, ground_truth.id());
    ++emitted;
  }
  return emitted;
}

std::vector<SourceConfig> DefaultRecruitmentSources() {
  std::vector<SourceConfig> sources(3);

  SourceConfig& careerhub = sources[0];
  careerhub.name = "CareerHub";
  careerhub.publication_rate = 0.50;
  careerhub.coverage = {{kAttrOrganization, 0.95},
                        {kAttrTitle, 0.95},
                        {kAttrLocation, 0.75}};
  careerhub.fresh_probability = {{kAttrOrganization, 1.0},
                                 {kAttrTitle, 1.0},
                                 {kAttrLocation, 1.0}};
  careerhub.stale_decay = {{kAttrOrganization, 0.6},
                           {kAttrTitle, 0.6},
                           {kAttrLocation, 0.6}};

  SourceConfig& orbitplus = sources[1];
  orbitplus.name = "OrbitPlus";
  orbitplus.publication_rate = 0.22;
  orbitplus.coverage = {{kAttrOrganization, 0.80},
                        {kAttrTitle, 0.85},
                        {kAttrLocation, 0.60}};
  // Configured staleness is stronger than the target *measured* freshness
  // (paper Table 6: ~0.86): a value published with delay d often still holds
  // at publication time, so the Eq. 9 delay comes out 0 for roughly half of
  // the stale publications.
  orbitplus.fresh_probability = {{kAttrOrganization, 0.62},
                                 {kAttrTitle, 0.55},
                                 {kAttrLocation, 0.80}};
  orbitplus.stale_decay = {{kAttrOrganization, 0.25},
                           {kAttrTitle, 0.22},
                           {kAttrLocation, 0.35}};

  SourceConfig& chirper = sources[2];
  chirper.name = "Chirper";
  chirper.publication_rate = 0.18;
  chirper.active_from = 2006;
  chirper.coverage = {{kAttrOrganization, 0.55},
                      {kAttrTitle, 0.65},
                      {kAttrLocation, 0.80}};
  chirper.fresh_probability = {{kAttrOrganization, 0.68},
                               {kAttrTitle, 0.62},
                               {kAttrLocation, 0.90}};
  chirper.stale_decay = {{kAttrOrganization, 0.28},
                         {kAttrTitle, 0.25},
                         {kAttrLocation, 0.45}};
  return sources;
}

}  // namespace maroon
