#ifndef MAROON_DATAGEN_NAME_POOL_H_
#define MAROON_DATAGEN_NAME_POOL_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace maroon {

/// Deterministic generators for the synthetic corpora: person names (with
/// controlled sharing to create the ambiguity that makes temporal linkage
/// necessary), organization names, and city names.
class NamePool {
 public:
  /// `num_names` distinct person names. Names are composed from fixed
  /// first/last name lists; `rng` only controls the sampling order.
  static std::vector<std::string> PersonNames(size_t num_names, Random& rng);

  /// `num_orgs` distinct organization names; the first `num_universities`
  /// are universities ("University of X"), the rest companies.
  static std::vector<std::string> OrganizationNames(size_t num_orgs,
                                                    size_t num_universities,
                                                    Random& rng);

  /// `num_cities` distinct city names.
  static std::vector<std::string> CityNames(size_t num_cities, Random& rng);

  /// Assigns each of `num_entities` entities a name from `names` such that
  /// names are shared by multiple entities (round-robin), mirroring the
  /// paper's DBLP-Ambi setup (239 authors sharing 21 names).
  static std::vector<size_t> AssignSharedNames(size_t num_entities,
                                               size_t num_names, Random& rng);
};

}  // namespace maroon

#endif  // MAROON_DATAGEN_NAME_POOL_H_
