#include "datagen/career_model.h"

#include <algorithm>

#include "common/logging.h"
#include "datagen/name_pool.h"

namespace maroon {

namespace {

// Title ladder indices (must match kTitleNames ordering).
enum TitleIndex : size_t {
  kEngineer = 0,
  kSrEngineer,
  kAnalyst,
  kManager,
  kDirector,
  kVp,
  kCeo,
  kPresident,
  kConsultant,
  kItContractor,
  kNumTitles,
};

constexpr const char* kTitleNames[kNumTitles] = {
    "Engineer", "Sr. Engineer", "Analyst",    "Manager",       "Director",
    "VP",       "CEO",          "President",  "Consultant",    "IT Contractor"};

}  // namespace

std::vector<Value> CareerModel::Titles() {
  return std::vector<Value>(kTitleNames, kTitleNames + kNumTitles);
}

CareerModel::CareerModel(CareerModelOptions options, Random& rng)
    : options_(options) {
  MAROON_DCHECK(options_.num_universities <= options_.num_organizations);
  organizations_ = NamePool::OrganizationNames(
      options_.num_organizations, options_.num_universities, rng);
  locations_ = NamePool::CityNames(options_.num_locations, rng);

  // Seniority-dependent dynamics: junior titles turn over quickly with
  // upward moves; senior titles are held long and mostly self-transition.
  dynamics_.resize(kNumTitles);
  const auto set = [&](size_t idx, double hold,
                       std::vector<std::pair<size_t, double>> next) {
    dynamics_[idx] = {kTitleNames[idx], hold, std::move(next)};
  };
  set(kEngineer, 3.0,
      {{kSrEngineer, 0.45}, {kManager, 0.20}, {kAnalyst, 0.10},
       {kEngineer, 0.10}, {kConsultant, 0.08}, {kItContractor, 0.07}});
  set(kSrEngineer, 3.5,
      {{kManager, 0.55}, {kDirector, 0.10}, {kSrEngineer, 0.20},
       {kConsultant, 0.10}, {kEngineer, 0.05}});
  set(kAnalyst, 2.5,
      {{kManager, 0.45}, {kSrEngineer, 0.20}, {kAnalyst, 0.20},
       {kConsultant, 0.15}});
  set(kManager, 4.5,
      {{kDirector, 0.50}, {kVp, 0.10}, {kManager, 0.28},
       {kConsultant, 0.07}, {kItContractor, 0.05}});
  set(kDirector, 5.5,
      {{kVp, 0.30}, {kCeo, 0.12}, {kPresident, 0.08}, {kDirector, 0.45},
       {kConsultant, 0.05}});
  set(kVp, 5.5, {{kCeo, 0.25}, {kPresident, 0.25}, {kVp, 0.50}});
  set(kCeo, 6.5, {{kPresident, 0.30}, {kCeo, 0.70}});
  set(kPresident, 7.0, {{kPresident, 0.80}, {kCeo, 0.20}});
  set(kConsultant, 3.0,
      {{kManager, 0.30}, {kConsultant, 0.35}, {kDirector, 0.15},
       {kItContractor, 0.20}});
  set(kItContractor, 2.0,
      {{kEngineer, 0.30}, {kConsultant, 0.30}, {kItContractor, 0.40}});
}

size_t CareerModel::SampleNextTitle(size_t current, Random& rng) const {
  const TitleDynamics& d = dynamics_[current];
  std::vector<double> weights;
  weights.reserve(d.next.size());
  for (const auto& [idx, w] : d.next) weights.push_back(w);
  return d.next[rng.Categorical(weights)].first;
}

int64_t CareerModel::SampleHoldingYears(size_t title_index,
                                        Random& rng) const {
  const double mean = dynamics_[title_index].mean_holding_years;
  // 1 + Geometric so every state is held at least one year; mean matches.
  const double p = 1.0 / std::max(1.0, mean);
  return 1 + rng.Geometric(p);
}

EntityProfile CareerModel::GenerateProfile(const EntityId& id,
                                           const std::string& name,
                                           Random& rng) const {
  EntityProfile profile(id, name);

  const TimePoint start = static_cast<TimePoint>(rng.UniformInt(
      options_.career_start_min, options_.career_start_max));
  const TimePoint horizon = options_.horizon;

  // Initial state: juniors dominate entry titles.
  size_t title = static_cast<size_t>(
      rng.Categorical({0.55, 0.05, 0.20, 0.05, 0.0, 0.0, 0.0, 0.0, 0.05,
                       0.10}));
  size_t org = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(organizations_.size()) - 1));
  size_t location = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(locations_.size()) - 1));

  struct Spell {
    TimePoint begin;
    TimePoint end;
    size_t title;
    size_t org;
    size_t location;
  };
  std::vector<Spell> spells;

  const bool stable = rng.Bernoulli(options_.stable_entity_fraction);
  TimePoint t = start;
  while (t <= horizon) {
    const int64_t hold = stable ? (static_cast<int64_t>(horizon) - t + 1)
                                : SampleHoldingYears(title, rng);
    const TimePoint end =
        static_cast<TimePoint>(std::min<int64_t>(horizon, t + hold - 1));
    spells.push_back({t, end, title, org, location});
    if (end >= horizon) break;
    t = end + 1;

    const size_t next_title = SampleNextTitle(title, rng);
    const bool title_changed = next_title != title;
    title = next_title;
    // Organization changes are correlated with title changes; a same-title
    // move still changes organization (that is what the self-loop in the
    // ladder models — a lateral move).
    const bool change_org =
        title_changed ? rng.Bernoulli(options_.org_change_with_title) : true;
    if (change_org) {
      size_t next_org = org;
      while (next_org == org && organizations_.size() > 1) {
        next_org = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(organizations_.size()) - 1));
      }
      org = next_org;
      if (rng.Bernoulli(options_.location_change_with_org) &&
          locations_.size() > 1) {
        size_t next_loc = location;
        while (next_loc == location) {
          next_loc = static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(locations_.size()) - 1));
        }
        location = next_loc;
      }
    }
  }

  // Emit per-attribute sequences, merging consecutive equal states.
  const auto emit = [&](const Attribute& attribute,
                        auto value_of) {
    TemporalSequence& seq = profile.sequence(attribute);
    size_t i = 0;
    while (i < spells.size()) {
      size_t j = i;
      while (j + 1 < spells.size() &&
             value_of(spells[j + 1]) == value_of(spells[i])) {
        ++j;
      }
      (void)seq.Append(Triple(Interval(spells[i].begin, spells[j].end),
                              MakeValueSet({value_of(spells[i])})));
      i = j + 1;
    }
  };
  emit(kAttrTitle, [&](const Spell& s) { return Value(kTitleNames[s.title]); });
  emit(kAttrOrganization,
       [&](const Spell& s) { return organizations_[s.org]; });
  emit(kAttrLocation, [&](const Spell& s) { return locations_[s.location]; });
  return profile;
}

}  // namespace maroon
