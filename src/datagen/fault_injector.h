#ifndef MAROON_DATAGEN_FAULT_INJECTOR_H_
#define MAROON_DATAGEN_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace maroon {

/// Structural fault classes the injector can apply to a serialized dataset.
/// These model how harvested temporal data actually breaks — not value noise
/// (the generators cover that via social_source_error_rate) but malformed
/// structure: rows that violate the schema, the id space, the source
/// registry, or the time axis.
enum class FaultClass {
  kDropCell,          // records.csv: erase one attribute cell (column count)
  kInvertInterval,    // profiles.csv: swap begin/end of a triple row
  kDuplicateRecordId, // records.csv: append a copy of the row, same id
  kUnknownSource,     // records.csv: rewrite source to an unregistered name
  kShuffleTimestamp,  // records.csv: move timestamp far outside the window
  kMangleSeparator,   // records.csv: pipe-join a multi-valued cell
};

std::string_view FaultClassToString(FaultClass fault);

/// Per-class injection rates. Every class is independently toggleable so a
/// test can attribute a pipeline failure to a single fault class. All rates
/// are probabilities per eligible row; 0 disables the class.
struct FaultInjectorOptions {
  uint64_t seed = 99;
  double drop_cell_rate = 0.0;
  double invert_interval_rate = 0.0;
  double duplicate_record_rate = 0.0;
  double unknown_source_rate = 0.0;
  double shuffle_timestamp_rate = 0.0;
  double mangle_separator_rate = 0.0;
  /// The source name written by kUnknownSource; must not collide with a
  /// registered source.
  std::string ghost_source = "__unregistered__";
};

/// One applied corruption, for exact-count bookkeeping in tests.
struct FaultInjection {
  FaultClass fault = FaultClass::kDropCell;
  std::string file;  // "records.csv" or "profiles.csv"
  size_t row = 0;    // data row index, 1-based as in loader locations
  std::string detail;
};

/// Everything the injector did in one pass.
struct FaultReport {
  std::vector<FaultInjection> injections;

  size_t CountOf(FaultClass fault) const;
  size_t total() const { return injections.size(); }
  std::string ToString() const;
};

/// Deterministic, seed-driven corruption of a dataset's CSV serialization.
///
/// Operates on the serialized form because that is where structural damage
/// lives: a `Dataset` object cannot even represent a duplicate record id or
/// an unregistered source. At most one fault is applied per row (classes are
/// tried in enum order), so quarantine counts attribute 1:1 to injections.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options);

  /// Corrupts parsed records.csv rows in place (rows[0] is the header).
  /// Duplicated rows are appended at the end. Appends to `report`.
  void CorruptRecordRows(std::vector<std::vector<std::string>>* rows,
                         FaultReport* report);

  /// Corrupts parsed profiles.csv rows in place (rows[0] is the header).
  void CorruptProfileRows(std::vector<std::vector<std::string>>* rows,
                          FaultReport* report);

  /// Reads records.csv and profiles.csv under `directory`, corrupts them,
  /// and rewrites the files. sources.csv is left untouched.
  Result<FaultReport> CorruptDirectory(const std::string& directory);

  const FaultInjectorOptions& options() const { return options_; }

 private:
  FaultInjectorOptions options_;
  Random rng_;
};

}  // namespace maroon

#endif  // MAROON_DATAGEN_FAULT_INJECTOR_H_
