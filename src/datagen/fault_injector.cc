#include "datagen/fault_injector.h"

#include <algorithm>
#include <sstream>

#include "common/csv.h"
#include "core/dataset_io.h"

namespace maroon {

namespace {

/// Column layout of records.csv: id,name,timestamp,source,label,<attrs...>.
constexpr size_t kIdCol = 0;
constexpr size_t kTimestampCol = 2;
constexpr size_t kSourceCol = 3;
constexpr size_t kFirstAttrCol = 5;

/// Column layout of profiles.csv rows.
constexpr size_t kBeginCol = 4;
constexpr size_t kEndCol = 5;
constexpr size_t kProfileCols = 7;

bool ParseCell(const std::string& cell, TimePoint* out) {
  return ParseTimePoint(cell, out).ok();
}

void Record(FaultReport* report, FaultClass fault, const char* file,
            size_t row, std::string detail) {
  report->injections.push_back(
      FaultInjection{fault, file, row, std::move(detail)});
}

}  // namespace

std::string_view FaultClassToString(FaultClass fault) {
  switch (fault) {
    case FaultClass::kDropCell:
      return "DropCell";
    case FaultClass::kInvertInterval:
      return "InvertInterval";
    case FaultClass::kDuplicateRecordId:
      return "DuplicateRecordId";
    case FaultClass::kUnknownSource:
      return "UnknownSource";
    case FaultClass::kShuffleTimestamp:
      return "ShuffleTimestamp";
    case FaultClass::kMangleSeparator:
      return "MangleSeparator";
  }
  return "Unknown";
}

size_t FaultReport::CountOf(FaultClass fault) const {
  return static_cast<size_t>(std::count_if(
      injections.begin(), injections.end(),
      [fault](const FaultInjection& i) { return i.fault == fault; }));
}

std::string FaultReport::ToString() const {
  std::ostringstream os;
  os << "FaultReport: " << injections.size() << " injection(s)\n";
  for (FaultClass fault :
       {FaultClass::kDropCell, FaultClass::kInvertInterval,
        FaultClass::kDuplicateRecordId, FaultClass::kUnknownSource,
        FaultClass::kShuffleTimestamp, FaultClass::kMangleSeparator}) {
    const size_t count = CountOf(fault);
    if (count > 0) os << "  " << FaultClassToString(fault) << ": " << count << "\n";
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

void FaultInjector::CorruptRecordRows(
    std::vector<std::vector<std::string>>* rows, FaultReport* report) {
  if (rows->empty()) return;
  const size_t original_rows = rows->size();

  // Observed timestamp window, for the out-of-window shuffle.
  TimePoint window_lo = 0, window_hi = 0;
  bool window_seen = false;
  for (size_t i = 1; i < original_rows; ++i) {
    const auto& row = (*rows)[i];
    TimePoint t = 0;
    if (row.size() > kTimestampCol && ParseCell(row[kTimestampCol], &t)) {
      if (!window_seen) {
        window_lo = window_hi = t;
        window_seen = true;
      } else {
        window_lo = std::min(window_lo, t);
        window_hi = std::max(window_hi, t);
      }
    }
  }

  std::vector<std::vector<std::string>> duplicates;
  for (size_t i = 1; i < original_rows; ++i) {
    std::vector<std::string>& row = (*rows)[i];
    if (row.size() <= kFirstAttrCol) continue;  // structurally too short

    // At most one fault per row, classes tried in a fixed order, so a
    // quarantined row attributes to exactly one injection.
    if (options_.drop_cell_rate > 0.0 &&
        rng_.Bernoulli(options_.drop_cell_rate)) {
      const size_t cell = static_cast<size_t>(rng_.UniformInt(
          static_cast<int64_t>(kFirstAttrCol),
          static_cast<int64_t>(row.size()) - 1));
      row.erase(row.begin() + static_cast<ptrdiff_t>(cell));
      Record(report, FaultClass::kDropCell, "records.csv", i,
             "erased cell " + std::to_string(cell));
      continue;
    }
    if (options_.duplicate_record_rate > 0.0 &&
        rng_.Bernoulli(options_.duplicate_record_rate)) {
      duplicates.push_back(row);
      Record(report, FaultClass::kDuplicateRecordId, "records.csv", i,
             "duplicated row with id '" + row[kIdCol] + "'");
      continue;
    }
    if (options_.unknown_source_rate > 0.0 &&
        rng_.Bernoulli(options_.unknown_source_rate)) {
      Record(report, FaultClass::kUnknownSource, "records.csv", i,
             "source '" + row[kSourceCol] + "' -> '" + options_.ghost_source +
                 "'");
      row[kSourceCol] = options_.ghost_source;
      continue;
    }
    if (options_.shuffle_timestamp_rate > 0.0 && window_seen &&
        rng_.Bernoulli(options_.shuffle_timestamp_rate)) {
      // Far outside the observed window on a random side — well beyond any
      // plausibility padding a validator might apply.
      const int64_t offset = 1000 + rng_.UniformInt(0, 999);
      const TimePoint shuffled =
          rng_.Bernoulli(0.5)
              ? static_cast<TimePoint>(window_hi + offset)
              : static_cast<TimePoint>(window_lo - offset);
      Record(report, FaultClass::kShuffleTimestamp, "records.csv", i,
             "timestamp " + row[kTimestampCol] + " -> " +
                 std::to_string(shuffled));
      row[kTimestampCol] = std::to_string(shuffled);
      continue;
    }
    if (options_.mangle_separator_rate > 0.0 &&
        rng_.Bernoulli(options_.mangle_separator_rate)) {
      // Eligible only when some attribute cell actually joins multiple
      // values; replace its "; " joins with a foreign '|' separator.
      std::vector<size_t> eligible;
      for (size_t c = kFirstAttrCol; c < row.size(); ++c) {
        if (row[c].find("; ") != std::string::npos) eligible.push_back(c);
      }
      if (eligible.empty()) continue;
      const size_t cell = eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
      std::string mangled = row[cell];
      size_t pos = 0;
      while ((pos = mangled.find("; ", pos)) != std::string::npos) {
        mangled.replace(pos, 2, "|");
        ++pos;
      }
      Record(report, FaultClass::kMangleSeparator, "records.csv", i,
             "cell " + std::to_string(cell) + ": '" + row[cell] + "' -> '" +
                 mangled + "'");
      row[cell] = std::move(mangled);
      continue;
    }
  }
  for (auto& dup : duplicates) rows->push_back(std::move(dup));
}

void FaultInjector::CorruptProfileRows(
    std::vector<std::vector<std::string>>* rows, FaultReport* report) {
  if (rows->empty() || options_.invert_interval_rate <= 0.0) return;
  for (size_t i = 1; i < rows->size(); ++i) {
    std::vector<std::string>& row = (*rows)[i];
    if (row.size() != kProfileCols) continue;
    TimePoint begin = 0, end = 0;
    if (!ParseCell(row[kBeginCol], &begin) || !ParseCell(row[kEndCol], &end)) {
      continue;
    }
    if (begin >= end) continue;  // swapping would be a no-op or already bad
    if (!rng_.Bernoulli(options_.invert_interval_rate)) continue;
    std::swap(row[kBeginCol], row[kEndCol]);
    Record(report, FaultClass::kInvertInterval, "profiles.csv", i,
           "interval [" + row[kEndCol] + ", " + row[kBeginCol] +
               "] inverted");
  }
}

Result<FaultReport> FaultInjector::CorruptDirectory(
    const std::string& directory) {
  FaultReport report;
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/records.csv"));
    CorruptRecordRows(&rows, &report);
    CsvWriter writer;
    for (const auto& row : rows) writer.AppendRow(row);
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/records.csv"));
  }
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/profiles.csv"));
    CorruptProfileRows(&rows, &report);
    CsvWriter writer;
    for (const auto& row : rows) writer.AppendRow(row);
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/profiles.csv"));
  }
  return report;
}

}  // namespace maroon
