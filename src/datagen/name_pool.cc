#include "datagen/name_pool.h"

#include <array>
#include <set>

namespace maroon {

namespace {

constexpr std::array<const char*, 40> kFirstNames = {
    "David",   "Michael", "Sarah",  "Emily", "James",  "Robert", "Linda",
    "Maria",   "John",    "Wei",    "Ling",  "Rajesh", "Priya",  "Ahmed",
    "Fatima",  "Carlos",  "Ana",    "Yuki",  "Hiro",   "Elena",  "Ivan",
    "Sofia",   "Lucas",   "Emma",   "Noah",  "Olivia", "Liam",   "Ava",
    "William", "Mia",     "Ethan",  "Chloe", "Daniel", "Grace",  "Henry",
    "Zoe",     "Samuel",  "Nora",   "Oscar", "Ruby"};

constexpr std::array<const char*, 40> kLastNames = {
    "Brown",    "Smith",   "Johnson", "Lee",      "Chen",    "Wang",
    "Garcia",   "Kumar",   "Patel",   "Kim",      "Nguyen",  "Singh",
    "Martinez", "Lopez",   "Wilson",  "Anderson", "Taylor",  "Thomas",
    "Moore",    "Jackson", "White",   "Harris",   "Clark",   "Lewis",
    "Young",    "Walker",  "Hall",    "Allen",    "King",    "Wright",
    "Scott",    "Green",   "Baker",   "Adams",    "Nelson",  "Hill",
    "Campbell", "Mitchell", "Roberts", "Carter"};

constexpr std::array<const char*, 24> kOrgRoots = {
    "Quest", "Aelita", "Vertex", "Nimbus",  "Orion",  "Zenith",
    "Atlas", "Pioneer", "Summit", "Cascade", "Vector", "Lumen",
    "Apex",  "Nova",    "Delta",  "Horizon", "Keystone", "Beacon",
    "Crest", "Fusion",  "Granite", "Harbor", "Ironwood", "Juniper"};

constexpr std::array<const char*, 12> kOrgSuffixes = {
    "Software", "Systems", "Labs",     "Technologies", "Analytics",
    "Networks", "Dynamics", "Solutions", "Computing",   "Data",
    "Robotics", "Digital"};

constexpr std::array<const char*, 30> kCityBases = {
    "Chicago",  "Austin",   "Seattle", "Boston",   "Denver",  "Portland",
    "Atlanta",  "Dallas",   "Phoenix", "Detroit",  "Madison", "Raleigh",
    "Columbus", "Memphis",  "Tucson",  "Omaha",    "Fresno",  "Tampa",
    "Oakland",  "Richmond", "Norfolk", "Savannah", "Eugene",  "Boulder",
    "Ithaca",   "Ann Arbor", "Berkeley", "Princeton", "Durham", "Provo"};

constexpr std::array<const char*, 20> kUniversityPlaces = {
    "Springfield", "Riverside", "Lakewood", "Fairview",  "Georgetown",
    "Arlington",   "Salem",     "Bristol",  "Clinton",   "Dayton",
    "Florence",    "Greenwood", "Hudson",   "Jackson",   "Kingston",
    "Lancaster",   "Milton",    "Newport",  "Oxford",    "Preston"};

}  // namespace

std::vector<std::string> NamePool::PersonNames(size_t num_names, Random& rng) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  size_t middle_counter = 0;
  while (out.size() < num_names) {
    const auto* first =
        kFirstNames[static_cast<size_t>(rng.UniformInt(0, kFirstNames.size() - 1))];
    const auto* last =
        kLastNames[static_cast<size_t>(rng.UniformInt(0, kLastNames.size() - 1))];
    std::string name = std::string(first) + " " + last;
    if (!seen.insert(name).second) {
      // Pool exhausted quickly for large requests; disambiguate with a
      // middle initial.
      name = std::string(first) + " " +
             std::string(1, static_cast<char>('A' + (middle_counter++ % 26))) +
             ". " + last;
      if (!seen.insert(name).second) continue;
    }
    out.push_back(std::move(name));
  }
  return out;
}

std::vector<std::string> NamePool::OrganizationNames(size_t num_orgs,
                                                     size_t num_universities,
                                                     Random& rng) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  while (out.size() < num_universities) {
    const auto* place = kUniversityPlaces[static_cast<size_t>(
        rng.UniformInt(0, kUniversityPlaces.size() - 1))];
    std::string name = "University of " + std::string(place);
    if (seen.insert(name).second) {
      out.push_back(std::move(name));
      continue;
    }
    name = std::string(place);
    name.append(" State University ");
    name.append(std::to_string(out.size()));
    if (seen.insert(name).second) out.push_back(std::move(name));
  }
  while (out.size() < num_orgs) {
    const auto* root = kOrgRoots[static_cast<size_t>(
        rng.UniformInt(0, kOrgRoots.size() - 1))];
    const auto* suffix = kOrgSuffixes[static_cast<size_t>(
        rng.UniformInt(0, kOrgSuffixes.size() - 1))];
    std::string name = std::string(root) + " " + suffix;
    if (!seen.insert(name).second) {
      name += " " + std::to_string(out.size());
      if (!seen.insert(name).second) continue;
    }
    out.push_back(std::move(name));
  }
  return out;
}

std::vector<std::string> NamePool::CityNames(size_t num_cities, Random& rng) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  while (out.size() < num_cities) {
    std::string name = kCityBases[static_cast<size_t>(
        rng.UniformInt(0, kCityBases.size() - 1))];
    if (!seen.insert(name).second) {
      name.append(" ");
      name.append(std::to_string(out.size()));
      if (!seen.insert(name).second) continue;
    }
    out.push_back(std::move(name));
  }
  return out;
}

std::vector<size_t> NamePool::AssignSharedNames(size_t num_entities,
                                                size_t num_names,
                                                Random& rng) {
  std::vector<size_t> assignment(num_entities);
  for (size_t i = 0; i < num_entities; ++i) {
    assignment[i] = i % num_names;
  }
  rng.Shuffle(assignment);
  return assignment;
}

}  // namespace maroon
