#include "datagen/recruitment_generator.h"

#include <algorithm>

#include "datagen/name_pool.h"

namespace maroon {

EntityProfile TruncateProfilePrefix(const EntityProfile& full,
                                    double fraction) {
  EntityProfile out(full.id(), full.name());
  const auto earliest = full.EarliestTime();
  const auto latest = full.LatestTime();
  if (!earliest || !latest) return out;
  const int64_t lifespan =
      static_cast<int64_t>(*latest) - *earliest + 1;
  const int64_t keep = std::max<int64_t>(
      1, static_cast<int64_t>(lifespan * std::clamp(fraction, 0.0, 1.0)));
  const Interval window(*earliest,
                        static_cast<TimePoint>(*earliest + keep - 1));

  for (const auto& [attribute, seq] : full.sequences()) {
    TemporalSequence& truncated = out.sequence(attribute);
    for (const Triple& tr : seq.triples()) {
      if (!tr.interval.Overlaps(window)) continue;
      (void)truncated.Append(
          Triple(tr.interval.Intersect(window), tr.values));
    }
  }
  return out;
}

Dataset GenerateRecruitmentDataset(const RecruitmentOptions& options) {
  Random rng(options.seed);
  Dataset dataset;
  dataset.SetAttributes({kAttrOrganization, kAttrTitle, kAttrLocation});

  std::vector<SourceConfig> source_configs =
      options.sources.empty() ? DefaultRecruitmentSources() : options.sources;

  CareerModel career(options.career, rng);
  if (options.social_source_error_rate > 0.0) {
    // Social sources occasionally publish values the entity never held.
    std::map<Attribute, std::vector<Value>> pools;
    pools[kAttrOrganization] = std::vector<Value>(
        career.organizations().begin(), career.organizations().end());
    pools[kAttrTitle] = CareerModel::Titles();
    pools[kAttrLocation] = std::vector<Value>(career.locations().begin(),
                                              career.locations().end());
    for (size_t i = 1; i < source_configs.size(); ++i) {
      source_configs[i].error_pool = pools;
      for (const auto& [attribute, pool] : pools) {
        source_configs[i].error_rate[attribute] =
            options.social_source_error_rate;
      }
    }
  }

  if (options.social_source_name_typo_rate > 0.0) {
    for (size_t i = 1; i < source_configs.size(); ++i) {
      source_configs[i].name_typo_rate =
          options.social_source_name_typo_rate;
    }
  }

  std::vector<SourceSimulator> simulators;
  simulators.reserve(source_configs.size());
  for (SourceConfig& config : source_configs) {
    const SourceId id = dataset.AddSource(config.name);
    simulators.emplace_back(std::move(config), id);
  }
  const std::vector<std::string> names =
      NamePool::PersonNames(options.num_names, rng);
  const std::vector<size_t> name_of =
      NamePool::AssignSharedNames(options.num_entities, names.size(), rng);

  for (size_t i = 0; i < options.num_entities; ++i) {
    Random entity_rng = rng.Fork();
    const EntityId id = "entity_" + std::to_string(i);
    EntityProfile ground_truth =
        career.GenerateProfile(id, names[name_of[i]], entity_rng);

    TargetEntity target;
    target.clean_profile =
        TruncateProfilePrefix(ground_truth, options.clean_prefix_fraction);
    target.ground_truth = ground_truth;
    (void)dataset.AddTarget(id, std::move(target));

    for (const SourceSimulator& simulator : simulators) {
      simulator.EmitRecords(ground_truth, dataset, entity_rng);
    }
  }
  return dataset;
}

}  // namespace maroon
