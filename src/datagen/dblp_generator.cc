#include "datagen/dblp_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/name_pool.h"
#include "datagen/recruitment_generator.h"

namespace maroon {

namespace {

struct AffiliationWorld {
  std::vector<std::string> organizations;  // universities first
  size_t num_universities = 0;

  bool IsUniversity(size_t i) const { return i < num_universities; }
};

/// One affiliation spell of an author's career.
struct Spell {
  TimePoint begin;
  TimePoint end;
  size_t org;
};

/// Generates affiliation spells following the Figure 3 narrative: long
/// university stays early, rising university-to-university mobility,
/// university-to-industry moves rarer (and rarer still late in a career),
/// industry-to-university moves rare early and more common late.
std::vector<Spell> GenerateSpells(const DblpOptions& options,
                                  const AffiliationWorld& world, bool mover,
                                  Random& rng) {
  std::vector<Spell> spells;
  const TimePoint start = static_cast<TimePoint>(
      rng.UniformInt(options.career_start_min, options.career_start_max));
  // Careers start in academia ~70% of the time (graduate students/faculty).
  const bool start_academic = rng.Bernoulli(0.7);
  size_t org = start_academic
                   ? static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(world.num_universities) - 1))
                   : world.num_universities +
                         static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(
                                    world.organizations.size() -
                                    world.num_universities) -
                                    1));
  TimePoint t = start;
  while (t <= options.horizon) {
    const bool at_university = world.IsUniversity(org);
    const int64_t mean_hold = at_university ? 6 : 5;
    const int64_t hold =
        mover ? 1 + rng.Geometric(1.0 / static_cast<double>(mean_hold))
              : (options.horizon - t + 1);
    const TimePoint end = static_cast<TimePoint>(
        std::min<int64_t>(options.horizon, t + hold - 1));
    spells.push_back({t, end, org});
    if (end >= options.horizon) break;
    t = end + 1;

    // Career age shifts the move distribution (Fig. 3's time trends).
    const int64_t career_age = t - start;
    double to_univ, to_industry;
    if (at_university) {
      to_univ = 0.55 + 0.02 * std::min<int64_t>(career_age, 10);
      to_industry = career_age > 10 ? 0.15 : 0.30;
    } else {
      to_univ = career_age > 12 ? 0.35 : 0.10;
      to_industry = 1.0;  // remaining mass
    }
    const bool next_university = rng.Bernoulli(
        to_univ / (to_univ + to_industry));
    size_t next = org;
    while (next == org) {
      if (next_university) {
        next = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(world.num_universities) - 1));
      } else {
        next = world.num_universities +
               static_cast<size_t>(rng.UniformInt(
                   0, static_cast<int64_t>(world.organizations.size() -
                                           world.num_universities) -
                          1));
      }
    }
    org = next;
  }
  return spells;
}

}  // namespace

DblpCorpus GenerateDblpCorpus(const DblpOptions& options) {
  Random rng(options.seed);
  DblpCorpus corpus;
  Dataset& dataset = corpus.dataset;
  dataset.SetAttributes({kAttrAffiliation, kAttrCoauthors});
  const SourceId dblp_source = dataset.AddSource("DBLP");

  AffiliationWorld world;
  world.num_universities = options.num_universities;
  world.organizations = NamePool::OrganizationNames(
      options.num_universities + options.num_companies,
      options.num_universities, rng);

  corpus.affiliation_category_mapper = std::make_shared<TableValueMapper>();
  for (size_t i = 0; i < world.organizations.size(); ++i) {
    corpus.affiliation_category_mapper->AddMapping(
        kAttrAffiliation, world.organizations[i],
        world.IsUniversity(i) ? "university" : "industry");
  }

  const std::vector<std::string> author_names =
      NamePool::PersonNames(options.num_names, rng);
  const std::vector<size_t> name_of =
      NamePool::AssignSharedNames(options.num_entities, author_names.size(),
                                  rng);
  // A global collaborator pool; each author draws a personal sub-pool.
  const std::vector<std::string> collaborator_pool =
      NamePool::PersonNames(options.num_entities / 2 + 20, rng);

  for (size_t i = 0; i < options.num_entities; ++i) {
    Random entity_rng = rng.Fork();
    const EntityId id = "author_" + std::to_string(i);
    const std::string& name = author_names[name_of[i]];
    const bool mover = !entity_rng.Bernoulli(options.never_move_fraction);
    const std::vector<Spell> spells =
        GenerateSpells(options, world, mover, entity_rng);

    // Personal collaborators: a stable core plus per-spell additions.
    std::vector<std::string> core;
    const size_t core_size =
        static_cast<size_t>(entity_rng.UniformInt(2, 4));
    for (size_t k = 0; k < core_size; ++k) {
      core.push_back(collaborator_pool[static_cast<size_t>(
          entity_rng.UniformInt(0,
                                static_cast<int64_t>(
                                    collaborator_pool.size()) -
                                    1))]);
    }

    EntityProfile ground_truth(id, name);
    TemporalSequence& affiliation = ground_truth.sequence(kAttrAffiliation);
    TemporalSequence& coauthors = ground_truth.sequence(kAttrCoauthors);
    ValueSet previous_collab;
    for (const Spell& s : spells) {
      (void)affiliation.Append(
          Triple(Interval(s.begin, s.end),
                 MakeValueSet({world.organizations[s.org]})));
      // Per-spell collaborator set: the core plus 1-2 spell-local people.
      std::vector<Value> collab = core;
      const size_t extras =
          static_cast<size_t>(entity_rng.UniformInt(1, 2));
      for (size_t k = 0; k < extras; ++k) {
        collab.push_back(collaborator_pool[static_cast<size_t>(
            entity_rng.UniformInt(0,
                                  static_cast<int64_t>(
                                      collaborator_pool.size()) -
                                      1))]);
      }
      ValueSet collab_set = MakeValueSet(std::move(collab));
      for (size_t offset = 0;
           collab_set == previous_collab && offset < collaborator_pool.size();
           ++offset) {
        // Def. 1 forbids identical consecutive value sets; perturb with a
        // pool collaborator not already present.
        collab_set = ValueSetUnion(
            collab_set,
            MakeValueSet({collaborator_pool[(s.begin + offset) %
                                            collaborator_pool.size()]}));
      }
      (void)coauthors.Append(Triple(Interval(s.begin, s.end), collab_set));
      previous_collab = collab_set;
    }

    TargetEntity target;
    target.clean_profile =
        TruncateProfilePrefix(ground_truth, options.clean_prefix_fraction);
    target.ground_truth = ground_truth;

    // Paper records: one per publication, always fresh, single source.
    const auto earliest = ground_truth.EarliestTime();
    const auto latest = ground_truth.LatestTime();
    for (TimePoint t = *earliest; t <= *latest; ++t) {
      int64_t papers = entity_rng.Poisson(options.papers_per_year);
      for (int64_t p = 0; p < papers; ++p) {
        TemporalRecord record(/*id=*/0, name, t, dblp_source);
        record.SetValue(kAttrAffiliation,
                        ground_truth.sequence(kAttrAffiliation).ValuesAt(t));
        // Each paper lists a subset of the active collaborators.
        ValueSet active = ground_truth.sequence(kAttrCoauthors).ValuesAt(t);
        if (!active.empty()) {
          std::vector<Value> sample;
          for (const Value& c : active) {
            if (entity_rng.Bernoulli(0.6)) sample.push_back(c);
          }
          if (sample.empty()) sample.push_back(active[0]);
          record.SetValue(kAttrCoauthors, MakeValueSet(std::move(sample)));
        }
        const RecordId rid = dataset.AddRecord(std::move(record));
        (void)dataset.SetLabel(rid, id);
      }
    }

    (void)dataset.AddTarget(id, std::move(target));
  }
  return corpus;
}

}  // namespace maroon
