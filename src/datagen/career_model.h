#ifndef MAROON_DATAGEN_CAREER_MODEL_H_
#define MAROON_DATAGEN_CAREER_MODEL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/entity_profile.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// Attribute names used by the synthetic recruitment world.
inline constexpr const char* kAttrOrganization = "Organization";
inline constexpr const char* kAttrTitle = "Title";
inline constexpr const char* kAttrLocation = "Location";

/// Options for the ground-truth career world-model.
struct CareerModelOptions {
  TimePoint career_start_min = 1980;
  TimePoint career_start_max = 2005;
  TimePoint horizon = 2014;
  size_t num_organizations = 120;
  size_t num_universities = 20;
  size_t num_locations = 25;
  /// Probability a title change is accompanied by an organization change
  /// (the paper reports 80% of entities change both simultaneously).
  double org_change_with_title = 0.8;
  /// Probability an organization change is accompanied by a relocation.
  double location_change_with_org = 0.4;
  /// Fraction of entities that never change any attribute over their whole
  /// career. The paper's DBLP corpus has ~50% of entities that never change
  /// affiliation — the reason it reports a narrower MAROON-vs-MUTA gap there
  /// (§5.3); this knob reproduces that "diversity" axis inside one world.
  double stable_entity_fraction = 0.0;
};

/// The ground-truth generative process behind the synthetic Recruitment
/// dataset: a Markov title ladder with seniority-dependent holding times,
/// correlated organization changes, and sticky locations.
///
/// The ladder is designed so that the learnt transition model reproduces the
/// *shapes* of the paper's Table 7 (senior titles have higher
/// self-transition probability; Manager→Director is a likely move while
/// Manager→Consultant is rare) — the evaluation then checks that MAROON
/// recovers these dynamics from data.
class CareerModel {
 public:
  CareerModel(CareerModelOptions options, Random& rng);

  /// Generates a complete ground-truth profile (Organization, Title,
  /// Location) for one entity. `rng` should be the entity's own stream.
  EntityProfile GenerateProfile(const EntityId& id, const std::string& name,
                                Random& rng) const;

  /// The job-title vocabulary of the ladder.
  static std::vector<Value> Titles();

  const std::vector<std::string>& organizations() const {
    return organizations_;
  }
  const std::vector<std::string>& locations() const { return locations_; }
  /// True iff organization index `i` is a university.
  bool IsUniversity(size_t org_index) const {
    return org_index < options_.num_universities;
  }
  const CareerModelOptions& options() const { return options_; }

 private:
  struct TitleDynamics {
    Value title;
    double mean_holding_years;  // expected years before the next transition
    std::vector<std::pair<size_t, double>> next;  // (title index, weight)
  };

  size_t SampleNextTitle(size_t current, Random& rng) const;
  int64_t SampleHoldingYears(size_t title_index, Random& rng) const;

  CareerModelOptions options_;
  std::vector<std::string> organizations_;
  std::vector<std::string> locations_;
  std::vector<TitleDynamics> dynamics_;
};

}  // namespace maroon

#endif  // MAROON_DATAGEN_CAREER_MODEL_H_
