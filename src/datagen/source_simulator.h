#ifndef MAROON_DATAGEN_SOURCE_SIMULATOR_H_
#define MAROON_DATAGEN_SOURCE_SIMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// The observation behaviour of one simulated data source.
///
/// A source publishes snapshot records about an entity at random instants;
/// for each attribute it covers, the published value is the entity's *true*
/// value at (publication time - sampled delay) — i.e. the source may lag
/// reality, exactly the staleness Eq. 9 measures and the freshness model
/// learns.
struct SourceConfig {
  std::string name;
  /// Probability the source publishes a record about a given entity in a
  /// given year of the entity's lifespan.
  double publication_rate = 0.35;
  /// Per attribute: probability the attribute appears in a record.
  std::map<Attribute, double> coverage;
  /// Per attribute: probability the published value is current (delay 0).
  std::map<Attribute, double> fresh_probability;
  /// Per attribute: given a stale publication, delay = 1 + Geometric(decay).
  std::map<Attribute, double> stale_decay;
  /// Optional time-varying freshness: from `freshness_change_year` onwards,
  /// `fresh_probability_after` overrides `fresh_probability` (a source that
  /// cleaned up — or let slip — its pipeline; exercises the epoch-bucketed
  /// freshness model).
  std::map<Attribute, double> fresh_probability_after;
  TimePoint freshness_change_year = 0;
  /// Per attribute: probability a published value is replaced by a random
  /// wrong value from `error_pool` (publication noise; exercises the
  /// reliability-model extension). Default: no errors.
  std::map<Attribute, double> error_rate;
  /// Candidate wrong values per attribute for error injection.
  std::map<Attribute, std::vector<Value>> error_pool;
  /// Probability a record's entity-name mention carries a typo (a dropped or
  /// transposed character). Exact name blocking misses such records; the
  /// fuzzy NameBlocker recovers them.
  double name_typo_rate = 0.0;
  /// The source only publishes records timestamped at or after this.
  TimePoint active_from = 0;
};

/// Emits temporal records for ground-truth profiles through a SourceConfig.
class SourceSimulator {
 public:
  SourceSimulator(SourceConfig config, SourceId source_id)
      : config_(std::move(config)), source_id_(source_id) {}

  /// Generates this source's records for one entity and appends them to
  /// `dataset` with ground-truth labels. Records mention the profile's name.
  /// Returns the number of records emitted.
  size_t EmitRecords(const EntityProfile& ground_truth, Dataset& dataset,
                     Random& rng) const;

  const SourceConfig& config() const { return config_; }
  SourceId source_id() const { return source_id_; }

 private:
  const SourceConfig config_;
  const SourceId source_id_;
};

/// The paper's Table 6 source mix, adapted to the synthetic world:
/// "CareerHub" (LinkedIn-like; fully fresh, highest volume), "OrbitPlus"
/// (Google+-like; mostly fresh, titles lag), and "Chirper" (Twitter-like;
/// active only from 2006, locations fresh, work attributes lag).
std::vector<SourceConfig> DefaultRecruitmentSources();

}  // namespace maroon

#endif  // MAROON_DATAGEN_SOURCE_SIMULATOR_H_
