#ifndef MAROON_DATAGEN_RECRUITMENT_GENERATOR_H_
#define MAROON_DATAGEN_RECRUITMENT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "datagen/career_model.h"
#include "datagen/source_simulator.h"

namespace maroon {

/// Options for the synthetic Recruitment dataset (the stand-in for the
/// paper's crawled LinkedIn/Google+/Twitter corpus, §5.1).
struct RecruitmentOptions {
  uint64_t seed = 42;
  /// Number of target entities (the paper uses 10,193; benches default
  /// smaller for turnaround and scale up explicitly).
  size_t num_entities = 500;
  /// Distinct person names; entities share names round-robin, so on average
  /// num_entities / num_names entities collide per name.
  size_t num_names = 200;
  /// Fraction of each entity's lifespan given as the clean input profile
  /// (the paper uses the first 30%).
  double clean_prefix_fraction = 0.3;
  CareerModelOptions career;
  /// Source behaviours; defaults to DefaultRecruitmentSources().
  std::vector<SourceConfig> sources;
  /// Probability that a value published by a *social* source (every source
  /// except the first) is erroneous — drawn from the world's value pool
  /// instead of the entity's true history. 0 disables error injection.
  double social_source_error_rate = 0.0;
  /// Probability that a social source's record carries a typo'd entity name
  /// (exercises fuzzy blocking). 0 disables.
  double social_source_name_typo_rate = 0.0;
};

/// Builds the synthetic Recruitment dataset: ground-truth careers from the
/// CareerModel, observed through three sources of varying freshness, with
/// name ambiguity. Every entity becomes a target whose clean profile is the
/// first `clean_prefix_fraction` of its lifespan.
Dataset GenerateRecruitmentDataset(const RecruitmentOptions& options = {});

/// Truncates `full` to the prefix window covering the first `fraction` of
/// its lifespan (at least one instant). Used to derive clean input profiles.
EntityProfile TruncateProfilePrefix(const EntityProfile& full,
                                    double fraction);

}  // namespace maroon

#endif  // MAROON_DATAGEN_RECRUITMENT_GENERATOR_H_
