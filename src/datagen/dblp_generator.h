#ifndef MAROON_DATAGEN_DBLP_GENERATOR_H_
#define MAROON_DATAGEN_DBLP_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "core/dataset.h"
#include "transition/value_mapper.h"

namespace maroon {

/// Attribute names of the synthetic DBLP world.
inline constexpr const char* kAttrAffiliation = "Affiliation";
inline constexpr const char* kAttrCoauthors = "Coauthors";

/// Options for the synthetic DBLP-Ambi stand-in (paper §5.1: 216 authors
/// sharing 21 names, 2,641 clean single-source records).
struct DblpOptions {
  uint64_t seed = 7;
  size_t num_entities = 216;
  size_t num_names = 21;
  size_t num_universities = 30;
  size_t num_companies = 25;
  TimePoint career_start_min = 1995;
  TimePoint career_start_max = 2008;
  TimePoint horizon = 2014;
  /// Expected papers (records) per author per year.
  double papers_per_year = 0.9;
  /// Fraction of each author's lifespan given as the clean input profile.
  double clean_prefix_fraction = 0.3;
  /// Fraction of authors who never change affiliation (the paper reports
  /// ~50% for DBLP — this is why the MAROON/MUTA gap narrows there).
  double never_move_fraction = 0.5;
};

/// The result of DBLP generation: the dataset plus the affiliation
/// generalization used by the Figure 3 analysis.
struct DblpCorpus {
  Dataset dataset;
  /// Maps each affiliation to "university" / "industry" (paper §4.1.2's
  /// taxonomy generalization, used to learn Figure 3's category-level
  /// transitions).
  std::shared_ptr<TableValueMapper> affiliation_category_mapper;
};

/// Builds the synthetic DBLP corpus: ambiguous author names, long
/// affiliation spells alternating between academia and industry, set-valued
/// coauthor lists with recurring collaborators, and a single always-fresh
/// source ("DBLP").
DblpCorpus GenerateDblpCorpus(const DblpOptions& options = {});

}  // namespace maroon

#endif  // MAROON_DATAGEN_DBLP_GENERATOR_H_
