#include "similarity/tfidf.h"

#include <cmath>
#include <set>

#include "common/float_compare.h"

namespace maroon {

void TfIdfModel::Fit(const std::vector<std::vector<std::string>>& corpus) {
  document_frequency_.clear();
  num_documents_ = 0;
  for (const auto& doc : corpus) AddDocument(doc);
}

void TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  ++num_documents_;
  std::set<std::string> unique(tokens.begin(), tokens.end());
  for (const std::string& t : unique) ++document_frequency_[t];
}

double TfIdfModel::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  const double df = it != document_frequency_.end()
                        ? static_cast<double>(it->second)
                        : 0.0;
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

SparseVector TfIdfModel::Vectorize(
    const std::vector<std::string>& tokens) const {
  SparseVector tf;
  for (const std::string& t : tokens) tf[t] += 1.0;
  double norm_sq = 0.0;
  for (auto& [token, weight] : tf) {
    weight *= Idf(token);
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [token, weight] : tf) weight *= inv;
  }
  return tf;
}

double TfIdfModel::CosineSimilarity(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  return SparseCosine(Vectorize(a), Vectorize(b));
}

double SparseCosine(const SparseVector& a, const SparseVector& b) {
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [token, weight] : small) {
    auto it = large.find(token);
    if (it != large.end()) dot += weight * it->second;
  }
  double norm_a = 0.0, norm_b = 0.0;
  for (const auto& [t, w] : a) norm_a += w * w;
  for (const auto& [t, w] : b) norm_b += w * w;
  if (ApproxZero(norm_a) || ApproxZero(norm_b)) return 0.0;
  return dot / std::sqrt(norm_a * norm_b);
}

}  // namespace maroon
