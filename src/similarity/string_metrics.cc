#include "similarity/string_metrics.h"

#include <algorithm>
#include <set>
#include <string>

namespace maroon {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t len_a = a.size();
  const size_t len_b = b.size();
  const size_t window =
      std::max<size_t>(1, std::max(len_a, len_b) / 2) - 1;

  std::vector<bool> matched_a(len_a, false);
  std::vector<bool> matched_b(len_b, false);

  size_t matches = 0;
  for (size_t i = 0; i < len_a; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(len_b, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions between the matched subsequences.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight, size_t max_prefix) {
  prefix_weight = std::clamp(prefix_weight, 0.0, 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), max_prefix});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_weight * (1.0 - jaro);
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // keep the DP row short
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({above + 1, row[j - 1] + 1, substitute});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double NormalizedLevenshteinSimilarity(std::string_view a,
                                       std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::set<std::string> set_a(a.begin(), a.end());
  std::set<std::string> set_b(b.begin(), b.end());
  size_t intersection = 0;
  for (const std::string& t : set_a) intersection += set_b.count(t);
  const size_t unions = set_a.size() + set_b.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& token_a : a) {
    double best = 0.0;
    for (const std::string& token_b : b) {
      best = std::max(best, JaroWinklerSimilarity(token_a, token_b));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  return std::max(MongeElkanSimilarity(a, b), MongeElkanSimilarity(b, a));
}

std::vector<std::string> CharacterNGrams(std::string_view text, size_t n) {
  std::vector<std::string> grams;
  if (text.empty() || n == 0) return grams;
  if (text.size() <= n) {
    grams.emplace_back(text);
    return grams;
  }
  grams.reserve(text.size() - n + 1);
  for (size_t i = 0; i + n <= text.size(); ++i) {
    grams.emplace_back(text.substr(i, n));
  }
  return grams;
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  return JaccardSimilarity(CharacterNGrams(a, 3), CharacterNGrams(b, 3));
}

}  // namespace maroon
