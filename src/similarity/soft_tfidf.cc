#include "similarity/soft_tfidf.h"

#include <algorithm>
#include <cmath>

#include "similarity/string_metrics.h"

namespace maroon {

double SoftTfIdf::Similarity(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;

  const SparseVector va = model_->Vectorize(a);
  const SparseVector vb = model_->Vectorize(b);

  // CLOSE(θ, a, b): for each token of `a`, its best partner in `b` above θ.
  double total = 0.0;
  for (const auto& [token_a, weight_a] : va) {
    double best_sim = 0.0;
    double best_weight_b = 0.0;
    for (const auto& [token_b, weight_b] : vb) {
      const double sim = token_a == token_b
                             ? 1.0
                             : JaroWinklerSimilarity(token_a, token_b);
      if (sim >= token_threshold_ && sim > best_sim) {
        best_sim = sim;
        best_weight_b = weight_b;
      }
    }
    if (best_sim > 0.0) {
      total += weight_a * best_weight_b * best_sim;
    }
  }
  // The vectors are L2-normalized, so the soft dot product is already a
  // cosine-style score; clamp for the inflation soft pairing can add.
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace maroon
