#ifndef MAROON_SIMILARITY_STRING_METRICS_H_
#define MAROON_SIMILARITY_STRING_METRICS_H_

#include <cstddef>
#include <string_view>
#include <vector>

namespace maroon {

/// Jaro similarity in [0, 1]; 1 for identical strings, 0 for no matching
/// characters. Empty-vs-empty is 1, empty-vs-nonempty is 0.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity (Cohen et al. 2003, the metric the paper uses for
/// pairs of values): boosts Jaro by a common-prefix bonus.
///
/// `prefix_weight` is Winkler's p (default 0.1, at most 0.25);
/// `max_prefix` caps the rewarded prefix length (default 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_weight = 0.1,
                             size_t max_prefix = 4);

/// Levenshtein edit distance (unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(|a|, |b|); 1 for two empty strings.
double NormalizedLevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity |A ∩ B| / |A ∪ B| over token multiset-as-set semantics;
/// duplicates within one side are ignored. Two empty token lists yield 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Monge-Elkan similarity: the mean over tokens of `a` of the best
/// Jaro-Winkler match among tokens of `b`. Asymmetric by definition; use
/// SymmetricMongeElkan for an order-free score. Empty-vs-empty is 1,
/// empty-vs-nonempty 0.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// max(MongeElkan(a, b), MongeElkan(b, a)).
double SymmetricMongeElkan(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

/// Character n-grams of `text` (contiguous, overlapping). Strings shorter
/// than `n` yield the whole string as the single gram.
std::vector<std::string> CharacterNGrams(std::string_view text, size_t n);

/// Jaccard similarity over character trigram sets — robust to small typos
/// and token reordering; commonly used for organization-name matching.
double TrigramSimilarity(std::string_view a, std::string_view b);

}  // namespace maroon

#endif  // MAROON_SIMILARITY_STRING_METRICS_H_
