#include "similarity/record_similarity.h"

#include <algorithm>

#include "common/string_util.h"
#include "similarity/string_metrics.h"

namespace maroon {

std::vector<std::string> ValueSetTokens(const ValueSet& values) {
  std::vector<std::string> tokens;
  for (const Value& v : values) {
    std::vector<std::string> words = TokenizeWords(v);
    tokens.insert(tokens.end(), std::make_move_iterator(words.begin()),
                  std::make_move_iterator(words.end()));
  }
  return tokens;
}

double SimilarityCalculator::ValueSetSimilarity(const ValueSet& a,
                                                const ValueSet& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a.size() == 1 && b.size() == 1) {
    return JaroWinklerSimilarity(a[0], b[0],
                                 options_.jaro_winkler_prefix_weight);
  }
  if (tfidf_ != nullptr) {
    return tfidf_->CosineSimilarity(ValueSetTokens(a), ValueSetTokens(b));
  }
  return BestPairAlignment(a, b);
}

double SimilarityCalculator::BestPairAlignment(const ValueSet& a,
                                               const ValueSet& b) const {
  // Symmetric average of each value's best Jaro-Winkler match on the other
  // side; a standard generalization of pairwise string similarity to sets.
  double total = 0.0;
  for (const Value& v : a) {
    double best = 0.0;
    for (const Value& w : b) {
      best = std::max(best, JaroWinklerSimilarity(
                                v, w, options_.jaro_winkler_prefix_weight));
    }
    total += best;
  }
  for (const Value& w : b) {
    double best = 0.0;
    for (const Value& v : a) {
      best = std::max(best, JaroWinklerSimilarity(
                                v, w, options_.jaro_winkler_prefix_weight));
    }
    total += best;
  }
  return total / static_cast<double>(a.size() + b.size());
}

double SimilarityCalculator::RecordSimilarity(const TemporalRecord& a,
                                              const TemporalRecord& b) const {
  double total = 0.0;
  size_t shared = 0;
  for (const auto& [attr, values_a] : a.values()) {
    if (!b.HasAttribute(attr)) continue;
    total += ValueSetSimilarity(values_a, b.GetValue(attr));
    ++shared;
  }
  return shared == 0 ? 0.0 : total / static_cast<double>(shared);
}

double SimilarityCalculator::RecordToStateSimilarity(
    const TemporalRecord& record,
    const std::map<Attribute, ValueSet>& state) const {
  double total = 0.0;
  size_t shared = 0;
  for (const auto& [attr, values] : record.values()) {
    auto it = state.find(attr);
    if (it == state.end()) continue;
    total += ValueSetSimilarity(values, it->second);
    ++shared;
  }
  return shared == 0 ? 0.0 : total / static_cast<double>(shared);
}

}  // namespace maroon
