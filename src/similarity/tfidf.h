#ifndef MAROON_SIMILARITY_TFIDF_H_
#define MAROON_SIMILARITY_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace maroon {

/// A sparse TF-IDF vector: token -> weight.
using SparseVector = std::unordered_map<std::string, double>;

/// TF-IDF vectorizer over tokenized documents (the paper's metric for
/// set-valued attributes such as co-author lists or interests).
///
/// Fit once on a corpus, then vectorize arbitrary token bags:
///   tf(t, d)  = count of t in d
///   idf(t)    = ln((1 + N) / (1 + df(t))) + 1    (smoothed; unseen tokens
///               get the maximum idf as if df = 0)
///   weight    = tf * idf, then L2-normalized per document.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Computes document frequencies from `corpus` (each document a token bag).
  /// May be called once; subsequent calls replace the fitted state.
  void Fit(const std::vector<std::vector<std::string>>& corpus);

  /// Adds a single document's tokens to the document-frequency counts.
  /// Useful for streaming construction; weights reflect all added docs.
  void AddDocument(const std::vector<std::string>& tokens);

  /// L2-normalized TF-IDF vector for a token bag.
  SparseVector Vectorize(const std::vector<std::string>& tokens) const;

  /// Cosine similarity of the TF-IDF vectors of two token bags, in [0, 1].
  /// Two empty bags yield 1; one empty bag yields 0.
  double CosineSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) const;

  /// ln((1 + N) / (1 + df(token))) + 1.
  double Idf(const std::string& token) const;

  size_t NumDocuments() const { return num_documents_; }
  size_t VocabularySize() const { return document_frequency_.size(); }

 private:
  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
};

/// Cosine similarity between two sparse vectors (not assumed normalized).
double SparseCosine(const SparseVector& a, const SparseVector& b);

}  // namespace maroon

#endif  // MAROON_SIMILARITY_TFIDF_H_
