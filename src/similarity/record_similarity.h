#ifndef MAROON_SIMILARITY_RECORD_SIMILARITY_H_
#define MAROON_SIMILARITY_RECORD_SIMILARITY_H_

#include <memory>
#include <vector>

#include "core/temporal_record.h"
#include "core/value.h"
#include "similarity/tfidf.h"

namespace maroon {

/// Configuration for value-set and record similarity.
struct SimilarityOptions {
  /// Winkler prefix weight for pairwise value comparison.
  double jaro_winkler_prefix_weight = 0.1;
  /// Value sets whose token bags reach this cosine are "the same state".
  /// Used by callers (clusterers) as a default decision threshold.
  double value_match_threshold = 0.8;
};

/// Computes similarities between value sets and between records.
///
/// Implements the paper's §5.1 setup: set-valued attributes are compared with
/// TF-IDF cosine over their token bags; the similarity of a pair of scalar
/// values is Jaro-Winkler. When no TF-IDF model is supplied (or an attribute
/// is single-valued on both sides) the calculator falls back to best-pair
/// Jaro-Winkler alignment.
class SimilarityCalculator {
 public:
  explicit SimilarityCalculator(SimilarityOptions options = {})
      : options_(options) {}

  /// Attaches a fitted TF-IDF model used for set-valued comparisons. The
  /// model must outlive this calculator. Pass nullptr to detach.
  void SetTfIdfModel(const TfIdfModel* model) { tfidf_ = model; }

  /// Similarity of two value sets in [0, 1].
  ///
  /// - both empty: 1 (vacuous agreement);
  /// - one empty: 0;
  /// - both singleton: Jaro-Winkler of the two values;
  /// - otherwise: TF-IDF cosine of token bags if a model is attached, else
  ///   symmetric best-pair Jaro-Winkler alignment.
  double ValueSetSimilarity(const ValueSet& a, const ValueSet& b) const;

  /// Mean ValueSetSimilarity over the attributes present in *both* records;
  /// 0 if they share no attribute.
  double RecordSimilarity(const TemporalRecord& a,
                          const TemporalRecord& b) const;

  /// Mean ValueSetSimilarity over the attributes present in *both* the
  /// record and `state` (PARTITION compares on the attributes two items
  /// share); 0 if they share no attribute. Used to compare a record against
  /// a cluster signature's state.
  double RecordToStateSimilarity(
      const TemporalRecord& record,
      const std::map<Attribute, ValueSet>& state) const;

  const SimilarityOptions& options() const { return options_; }

 private:
  double BestPairAlignment(const ValueSet& a, const ValueSet& b) const;

  SimilarityOptions options_;
  const TfIdfModel* tfidf_ = nullptr;
};

/// Flattens a value set into a token bag (lower-cased alphanumeric words of
/// every value concatenated).
std::vector<std::string> ValueSetTokens(const ValueSet& values);

}  // namespace maroon

#endif  // MAROON_SIMILARITY_RECORD_SIMILARITY_H_
