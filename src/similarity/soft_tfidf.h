#ifndef MAROON_SIMILARITY_SOFT_TFIDF_H_
#define MAROON_SIMILARITY_SOFT_TFIDF_H_

#include <string>
#include <vector>

#include "similarity/tfidf.h"

namespace maroon {

/// SoftTFIDF (Cohen, Ravikumar & Fienberg 2003 — the paper's ref. [7]):
/// TF-IDF cosine where tokens need not match exactly — a token of one bag
/// may pair with a Jaro-Winkler-similar token of the other, weighted by
/// that inner similarity. Handles "Qest Software" vs "Quest Software"
/// where plain TF-IDF scores 0 on the misspelt token.
class SoftTfIdf {
 public:
  /// `model` supplies the IDF weights and must outlive this object.
  /// `token_threshold` is Cohen's θ: tokens closer than this may pair.
  explicit SoftTfIdf(const TfIdfModel* model, double token_threshold = 0.9)
      : model_(model), token_threshold_(token_threshold) {}

  /// SoftTFIDF similarity of two token bags, in [0, 1]. Two empty bags are
  /// 1; one empty bag is 0.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  double token_threshold() const { return token_threshold_; }

 private:
  const TfIdfModel* model_;
  double token_threshold_;
};

}  // namespace maroon

#endif  // MAROON_SIMILARITY_SOFT_TFIDF_H_
