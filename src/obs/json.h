#ifndef MAROON_OBS_JSON_H_
#define MAROON_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace maroon {
namespace obs {

/// Minimal JSON support for the observability layer: a streaming writer used
/// by the metrics/trace/run-report emitters, and a small recursive-descent
/// parser used by tests and tooling to validate emitted documents. No
/// external dependency; numbers are doubles (sufficient for metric values).

/// Escapes `s` per RFC 8259 (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Formats a double as a JSON number. Non-finite values (which JSON cannot
/// represent) become null.
std::string JsonNumber(double value);

/// A streaming JSON writer with explicit Begin/End scoping and automatic
/// comma placement. Misuse (ending a scope never begun) trips MAROON_CHECK.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("counters").BeginObject();
///   w.Key("maroon.phase1.clusters_formed").Int(42);
///   w.EndObject();
///   w.EndObject();
///   w.text();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Must be called inside an object, directly before the member's value.
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Number(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& text() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open scope: whether a value has already been written in
  /// it (controls comma insertion).
  std::vector<bool> scope_has_value_;
  bool pending_key_ = false;
};

/// A parsed JSON value. Objects preserve no duplicate keys (last wins).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one JSON document (with optional surrounding whitespace). Trailing
/// garbage is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_JSON_H_
