#include "obs/health.h"

namespace maroon {
namespace obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "OK";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kUnhealthy: return "UNHEALTHY";
  }
  return "UNKNOWN";
}

HealthRegistry& HealthRegistry::Global() {
  // Leaked like the MetricsRegistry: health outlives every component that
  // reports into it, so there is no destruction order to get wrong.
  static HealthRegistry* registry = new HealthRegistry();
  return *registry;
}

void HealthRegistry::Set(const std::string& component, HealthState state,
                         const std::string& detail) {
  MutexLock lock(&mu_);
  Entry& entry = components_[component];
  entry.state = state;
  entry.detail = detail;
  entry.updated = std::chrono::steady_clock::now();
}

void HealthRegistry::SetReady(bool ready) {
  MutexLock lock(&mu_);
  ready_ = ready;
}

bool HealthRegistry::ready() const {
  MutexLock lock(&mu_);
  return ready_;
}

HealthState HealthRegistry::Overall() const {
  MutexLock lock(&mu_);
  HealthState worst = HealthState::kOk;
  for (const auto& [name, entry] : components_) {
    if (entry.state > worst) worst = entry.state;
  }
  return worst;
}

std::map<std::string, ComponentHealth> HealthRegistry::Components() const {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  std::map<std::string, ComponentHealth> out;
  for (const auto& [name, entry] : components_) {
    ComponentHealth health;
    health.state = entry.state;
    health.detail = entry.detail;
    health.age_s =
        std::chrono::duration<double>(now - entry.updated).count();
    out[name] = health;
  }
  return out;
}

void HealthRegistry::Clear() {
  MutexLock lock(&mu_);
  components_.clear();
  ready_ = false;
}

}  // namespace obs
}  // namespace maroon
