#ifndef MAROON_OBS_OPS_SERVER_H_
#define MAROON_OBS_OPS_SERVER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/http_server.h"

namespace maroon {
namespace obs {

/// The live ops plane: routes over an embedded net::HttpServer giving an
/// operator (or a Prometheus scraper) a pull-based window into a running
/// process. Routes (all GET, see docs/observability.md):
///
///   /metrics   Prometheus 0.0.4 exposition of the global MetricsRegistry
///   /varz      the same snapshot as JSON
///   /healthz   HealthRegistry aggregate; 503 when any component UNHEALTHY
///   /readyz    503 until the serving loop marks ready and health is OK
///   /statusz   build version, uptime, config, thread pool, server stats
///   /tracez    recent completed spans from the tracer's lock-free ring
///   /          route index
///
/// Every route renders from a registry singleton, so the server holds no
/// linker state and scrapes never block ingest (beyond the registries' own
/// short or lock-free critical sections).
struct OpsServerOptions {
  net::HttpServerOptions http;
  /// Shown verbatim on /statusz as the serving configuration (flag name,
  /// value).
  std::vector<std::pair<std::string, std::string>> statusz_config;
};

class OpsServer {
 public:
  /// Registers the build-info metrics and starts serving. On success the
  /// routes are live on port().
  static Result<std::unique_ptr<OpsServer>> Start(OpsServerOptions options);

  /// Graceful shutdown (idempotent; also run by the destructor).
  void Stop();

  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  int port() const { return server_->port(); }
  net::HttpServerStats http_stats() const { return server_->stats(); }

  /// The route dispatcher, public so tests can drive routes without
  /// sockets. Thread-safe.
  net::HttpResponse Handle(const net::HttpRequest& request) const;

 private:
  explicit OpsServer(OpsServerOptions options);

  net::HttpResponse Metrics() const;
  net::HttpResponse Varz() const;
  net::HttpResponse Healthz() const;
  net::HttpResponse Readyz() const;
  net::HttpResponse Statusz() const;
  net::HttpResponse Tracez() const;
  net::HttpResponse Index() const;

  const OpsServerOptions options_;
  const std::string started_at_;  // ISO-8601 UTC at Start()
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_OPS_SERVER_H_
