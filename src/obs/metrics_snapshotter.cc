#include "obs/metrics_snapshotter.h"

#include <algorithm>
#include <mutex>  // std::call_once
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"

namespace maroon {
namespace obs {

MetricsSnapshotWriter::MetricsSnapshotWriter(
    const MetricsSnapshotWriterOptions& options)
    : start_(std::chrono::steady_clock::now()),
      out_(options.path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    status_ = Status::IOError("cannot open " + options.path + " for writing");
  }
  const double period_s = std::max(options.period_s, 0.01);
  timer_ = std::make_unique<PeriodicTimer>(
      std::chrono::milliseconds(static_cast<int64_t>(period_s * 1000.0)),
      [this] { WriteRow(); });
}

MetricsSnapshotWriter::~MetricsSnapshotWriter() { Stop(); }

void MetricsSnapshotWriter::Stop() {
  // call_once, not a guarded bool: with the old check-then-act flag, a
  // destructor racing an explicit Stop() from another thread could both
  // pass the "already stopped?" test and write the final row twice.
  std::call_once(stop_once_, [this] {
    timer_->Stop();  // joins; no WriteRow is in flight afterwards
    WriteRow();      // closing state, so short runs still get one row
    out_.flush();
    if (!out_) {
      MutexLock lock(&mu_);
      if (status_.ok()) {
        status_ = Status::IOError("failed writing metrics snapshot file");
      }
    }
  });
}

int64_t MetricsSnapshotWriter::rows_written() const {
  MutexLock lock(&mu_);
  return rows_written_;
}

Status MetricsSnapshotWriter::status() const {
  MutexLock lock(&mu_);
  return status_;
}

void MetricsSnapshotWriter::WriteRow() {
  int64_t seq = 0;
  {
    MutexLock lock(&mu_);
    if (!status_.ok()) return;
    seq = rows_written_;
  }
  // Snapshot, serialize, and append all outside mu_: the registry can be
  // slow and the stream append blocks, and WriteRow invocations never
  // overlap (see the header's out_ contract) — only the status/row-count
  // bookkeeping needs the lock.
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::string metrics = MetricsRegistry::Global().SnapshotJson();

  JsonWriter head;
  head.BeginObject();
  head.Key("schema").String("maroon_metrics_snapshot_v1");
  head.Key("seq").Int(seq);
  head.Key("t_s").Number(t_s);
  // Splice the registry's own JSON in verbatim rather than re-serializing,
  // matching BuildRunReportJson.
  std::string row = head.text();
  row += ", \"metrics\": ";
  row += metrics;
  row += "}\n";
  out_ << row;
  out_.flush();

  MutexLock lock(&mu_);
  if (!out_) {
    if (status_.ok()) {
      status_ = Status::IOError("failed writing metrics snapshot row");
    }
    return;
  }
  ++rows_written_;
}

}  // namespace obs
}  // namespace maroon
