#include "obs/metrics_snapshotter.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"

namespace maroon {
namespace obs {

MetricsSnapshotWriter::MetricsSnapshotWriter(
    const MetricsSnapshotWriterOptions& options)
    : start_(std::chrono::steady_clock::now()),
      out_(options.path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    status_ = Status::IOError("cannot open " + options.path + " for writing");
  }
  const double period_s = std::max(options.period_s, 0.01);
  timer_ = std::make_unique<PeriodicTimer>(
      std::chrono::milliseconds(static_cast<int64_t>(period_s * 1000.0)),
      [this] { WriteRow(); });
}

MetricsSnapshotWriter::~MetricsSnapshotWriter() { Stop(); }

void MetricsSnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
  }
  timer_->Stop();  // joins; no WriteRow is in flight afterwards
  WriteRow();      // closing state, so short runs still get one row
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  out_.flush();
  if (!out_ && status_.ok()) {
    status_ = Status::IOError("failed writing metrics snapshot file");
  }
}

int64_t MetricsSnapshotWriter::rows_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_written_;
}

Status MetricsSnapshotWriter::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void MetricsSnapshotWriter::WriteRow() {
  // Snapshot outside mu_: the registry serializes itself and can be slow;
  // only the file append needs our lock.
  const double t_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::string metrics = MetricsRegistry::Global().SnapshotJson();

  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_ || !status_.ok()) return;
  JsonWriter head;
  head.BeginObject();
  head.Key("schema").String("maroon_metrics_snapshot_v1");
  head.Key("seq").Int(rows_written_);
  head.Key("t_s").Number(t_s);
  // Splice the registry's own JSON in verbatim rather than re-serializing,
  // matching BuildRunReportJson.
  std::string row = head.text();
  row += ", \"metrics\": ";
  row += metrics;
  row += "}\n";
  out_ << row;
  out_.flush();
  if (!out_) {
    status_ = Status::IOError("failed writing metrics snapshot row");
    return;
  }
  ++rows_written_;
}

}  // namespace obs
}  // namespace maroon
