#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace maroon {
namespace obs {

namespace {

int CurrentTid() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1);
  return tid;
}

/// Per-thread count of open spans — the depth assigned to the next one.
int& OpenSpanDepth() {
  thread_local int depth = 0;
  return depth;
}

/// True while the thread is inside a PoolTaskScope; spans recorded then
/// carry pool_worker attribution.
bool& PoolWorkerFlag() {
  thread_local bool pool_worker = false;
  return pool_worker;
}

/// Steady-clock now as integer nanoseconds (the epoch_ns_ unit).
int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Tracer::Tracer() : epoch_ns_(SteadyNowNanos()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::Clear() {
  {
    MutexLock lock(&mu_);
    spans_.clear();
  }
  // Published outside mu_: the epoch is not guarded (see the header), and
  // spans in flight across a Clear() are dropped-or-skewed either way.
  epoch_ns_.store(SteadyNowNanos(), std::memory_order_relaxed);
}

double Tracer::NowMicros() const {
  const int64_t now_ns = SteadyNowNanos();
  const int64_t epoch_ns = epoch_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(now_ns - epoch_ns) / 1e3;
}

void Tracer::Record(SpanRecord record) {
  MutexLock lock(&mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SpanRecord> spans = spans_;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) {  // maroon-lint: allow(R003)
                return a.start_us < b.start_us;
              }
              return a.depth < b.depth;
            });
  return spans;
}

size_t Tracer::span_count() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String("maroon");
    w.Key("ph").String("X");
    w.Key("ts").Number(span.start_us);
    w.Key("dur").Number(span.duration_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(span.tid);
    if (span.pool_worker) {
      w.Key("args").BeginObject();
      w.Key("pool_worker").Int(1);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.text();
}

double Tracer::RootSpanSeconds() const {
  double total_us = 0.0;
  MutexLock lock(&mu_);
  for (const SpanRecord& span : spans_) {
    if (span.depth == 0 && !span.pool_worker) total_us += span.duration_us;
  }
  return total_us / 1e6;
}

Span::Span(const char* name) : name_(name) {
  if (!Tracer::Enabled()) return;
  active_ = true;
  depth_ = OpenSpanDepth()++;
  start_us_ = Tracer::Global().NowMicros();
}

Span::~Span() {
  if (!active_) return;
  --OpenSpanDepth();
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = Tracer::Global().NowMicros() - start_us_;
  record.tid = CurrentTid();
  record.depth = depth_;
  record.pool_worker = PoolWorkerFlag();
  Tracer::Global().Record(std::move(record));
}

PoolTaskScope::PoolTaskScope(const char* name) : name_(name) {
  if (!Tracer::Enabled()) return;
  active_ = true;
  // The task root occupies depth 0 on this thread; spans opened inside the
  // task nest from depth 1. The previous depth (the caller strand's open
  // spans, or garbage-free 0 on a helper) is restored on destruction.
  saved_depth_ = OpenSpanDepth();
  OpenSpanDepth() = 1;
  saved_worker_ = PoolWorkerFlag();
  PoolWorkerFlag() = true;
  start_us_ = Tracer::Global().NowMicros();
}

PoolTaskScope::~PoolTaskScope() {
  if (!active_) return;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = Tracer::Global().NowMicros() - start_us_;
  record.tid = CurrentTid();
  record.depth = 0;
  record.pool_worker = true;
  Tracer::Global().Record(std::move(record));
  OpenSpanDepth() = saved_depth_;
  PoolWorkerFlag() = saved_worker_;
}

}  // namespace obs
}  // namespace maroon
