#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace maroon {
namespace obs {

namespace {

int CurrentTid() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1);
  return tid;
}

/// Per-thread count of open spans — the depth assigned to the next one.
int& OpenSpanDepth() {
  thread_local int depth = 0;
  return depth;
}

/// True while the thread is inside a PoolTaskScope; spans recorded then
/// carry pool_worker attribution.
bool& PoolWorkerFlag() {
  thread_local bool pool_worker = false;
  return pool_worker;
}

/// Steady-clock now as integer nanoseconds (the epoch_ns_ unit).
int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One /tracez ring slot: a seqlock whose payload is also atomic, so a
/// reader racing a writer observes a torn *logical* record at worst, never
/// a data race. seq semantics: 0 = never written, odd = a writer is inside,
/// even = ticket (seq/2 - 1) is published.
struct RingSlot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<double> start_us{0.0};
  std::atomic<double> duration_us{0.0};
  std::atomic<int> tid{0};
  std::atomic<int> depth{0};
  std::atomic<bool> pool_worker{false};
};

struct SpanRing {
  std::atomic<uint64_t> next{0};
  RingSlot slots[Tracer::kRingCapacity];
};

SpanRing& Ring() {
  // Leaked like the tracer itself: spans may complete during static
  // destruction of other objects.
  static SpanRing* ring = new SpanRing();
  return *ring;
}

void RingPush(const char* name, double start_us, double duration_us, int tid,
              int depth, bool pool_worker) {
  SpanRing& ring = Ring();
  const uint64_t ticket = ring.next.fetch_add(1, std::memory_order_relaxed);
  RingSlot& slot = ring.slots[ticket % Tracer::kRingCapacity];
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.duration_us.store(duration_us, std::memory_order_relaxed);
  slot.tid.store(tid, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  slot.pool_worker.store(pool_worker, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};
std::atomic<bool> Tracer::ring_enabled_{false};

Tracer::Tracer() : epoch_ns_(SteadyNowNanos()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetRingEnabled(bool enabled) {
  ring_enabled_.store(enabled, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::RingSnapshot() {
  SpanRing& ring = Ring();
  const uint64_t next = ring.next.load(std::memory_order_acquire);
  const uint64_t begin = next > kRingCapacity ? next - kRingCapacity : 0;
  std::vector<SpanRecord> out;
  out.reserve(static_cast<size_t>(next - begin));
  for (uint64_t ticket = begin; ticket < next; ++ticket) {
    RingSlot& slot = ring.slots[ticket % kRingCapacity];
    const uint64_t want = 2 * ticket + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    SpanRecord record;
    record.name = slot.name.load(std::memory_order_relaxed);
    record.start_us = slot.start_us.load(std::memory_order_relaxed);
    record.duration_us = slot.duration_us.load(std::memory_order_relaxed);
    record.tid = slot.tid.load(std::memory_order_relaxed);
    record.depth = slot.depth.load(std::memory_order_relaxed);
    record.pool_worker = slot.pool_worker.load(std::memory_order_relaxed);
    // The fence orders the field loads before the re-check: an unchanged
    // seq after it means no writer touched the slot while we copied.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    out.push_back(std::move(record));
  }
  return out;
}

uint64_t Tracer::RingSpanCount() {
  return Ring().next.load(std::memory_order_relaxed);
}

void Tracer::Clear() {
  {
    MutexLock lock(&mu_);
    spans_.clear();
  }
  // Published outside mu_: the epoch is not guarded (see the header), and
  // spans in flight across a Clear() are dropped-or-skewed either way.
  epoch_ns_.store(SteadyNowNanos(), std::memory_order_relaxed);
}

double Tracer::NowMicros() const {
  const int64_t now_ns = SteadyNowNanos();
  const int64_t epoch_ns = epoch_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(now_ns - epoch_ns) / 1e3;
}

void Tracer::Record(SpanRecord record) {
  MutexLock lock(&mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SpanRecord> spans = spans_;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) {  // maroon-lint: allow(R003)
                return a.start_us < b.start_us;
              }
              return a.depth < b.depth;
            });
  return spans;
}

size_t Tracer::span_count() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String("maroon");
    w.Key("ph").String("X");
    w.Key("ts").Number(span.start_us);
    w.Key("dur").Number(span.duration_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(span.tid);
    if (span.pool_worker) {
      w.Key("args").BeginObject();
      w.Key("pool_worker").Int(1);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.text();
}

double Tracer::RootSpanSeconds() const {
  double total_us = 0.0;
  MutexLock lock(&mu_);
  for (const SpanRecord& span : spans_) {
    if (span.depth == 0 && !span.pool_worker) total_us += span.duration_us;
  }
  return total_us / 1e6;
}

Span::Span(const char* name) : name_(name) {
  if (!Tracer::Enabled() && !Tracer::RingEnabled()) return;
  active_ = true;
  depth_ = OpenSpanDepth()++;
  start_us_ = Tracer::Global().NowMicros();
}

Span::~Span() {
  if (!active_) return;
  --OpenSpanDepth();
  const double duration_us = Tracer::Global().NowMicros() - start_us_;
  const int tid = CurrentTid();
  const bool pool_worker = PoolWorkerFlag();
  if (Tracer::RingEnabled()) {
    RingPush(name_, start_us_, duration_us, tid, depth_, pool_worker);
  }
  if (!Tracer::Enabled()) return;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = duration_us;
  record.tid = tid;
  record.depth = depth_;
  record.pool_worker = pool_worker;
  Tracer::Global().Record(std::move(record));
}

PoolTaskScope::PoolTaskScope(const char* name) : name_(name) {
  if (!Tracer::Enabled() && !Tracer::RingEnabled()) return;
  active_ = true;
  // The task root occupies depth 0 on this thread; spans opened inside the
  // task nest from depth 1. The previous depth (the caller strand's open
  // spans, or garbage-free 0 on a helper) is restored on destruction.
  saved_depth_ = OpenSpanDepth();
  OpenSpanDepth() = 1;
  saved_worker_ = PoolWorkerFlag();
  PoolWorkerFlag() = true;
  start_us_ = Tracer::Global().NowMicros();
}

PoolTaskScope::~PoolTaskScope() {
  if (!active_) return;
  const double duration_us = Tracer::Global().NowMicros() - start_us_;
  const int tid = CurrentTid();
  if (Tracer::RingEnabled()) {
    RingPush(name_, start_us_, duration_us, tid, /*depth=*/0,
             /*pool_worker=*/true);
  }
  if (Tracer::Enabled()) {
    SpanRecord record;
    record.name = name_;
    record.start_us = start_us_;
    record.duration_us = duration_us;
    record.tid = tid;
    record.depth = 0;
    record.pool_worker = true;
    Tracer::Global().Record(std::move(record));
  }
  OpenSpanDepth() = saved_depth_;
  PoolWorkerFlag() = saved_worker_;
}

}  // namespace obs
}  // namespace maroon
