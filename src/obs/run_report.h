#ifndef MAROON_OBS_RUN_REPORT_H_
#define MAROON_OBS_RUN_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace maroon {
namespace obs {

/// End-of-run summary: a snapshot of the global metrics registry and tracer
/// plus the run's configuration, emitted as JSON (machines) or a table
/// (humans). Schema `maroon_run_report_v1`:
///
///   {
///     "schema": "maroon_run_report_v1",
///     "generated_at": "2015-06-04T12:00:00Z",   // "" when suppressed
///     "config": {"command": "link", "data": "corpus/", ...},
///     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...},
///                 "latency_histograms": {...}},
///     "trace": {"enabled": true, "span_count": 42,
///               "root_span_seconds": 1.25}
///   }
///
/// The metrics object is MetricsRegistry::SnapshotJson()'s layout; see
/// docs/observability.md for the documented schema and metric inventory.
struct RunReportOptions {
  /// Ordered key/value pairs for the "config" object (command line, dataset
  /// path, thresholds, ...).
  std::vector<std::pair<std::string, std::string>> config;
  /// Suppress the wall-clock "generated_at" stamp — golden-file tests need
  /// byte-identical output.
  bool include_timestamp = true;
};

/// The JSON report (schema above), from the global registry and tracer.
std::string BuildRunReportJson(const RunReportOptions& options = {});

/// A human-readable summary table of the same snapshot: config, non-zero
/// counters, gauges, histogram digests, latency percentiles (p50..p999, in
/// milliseconds), and trace totals.
std::string RenderRunReportText(const RunReportOptions& options = {});

/// Writes `content` to `path` atomically enough for CLI use (truncate +
/// flush + close, IOError on failure).
Status WriteTextFile(const std::string& path, const std::string& content);

/// The current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ".
std::string Iso8601UtcNow();

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_RUN_REPORT_H_
