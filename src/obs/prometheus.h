#ifndef MAROON_OBS_PROMETHEUS_H_
#define MAROON_OBS_PROMETHEUS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace maroon {
namespace obs {

/// Prometheus text exposition (format version 0.0.4) for the metrics
/// registry — the scrape surface for a future `maroon_cli serve` mode, and
/// already writable per run via `maroon_cli --metrics-prom-out=FILE`.
///
/// Mapping:
///  - metric names: dots become underscores (`maroon.phase1.confidence`
///    -> `maroon_phase1_confidence`); every series gets `# TYPE` and
///    `# HELP` headers;
///  - counters / gauges: one sample line each;
///  - fixed-bucket histograms: cumulative `name_bucket{le="<bound>"}`
///    series over the registered bounds plus `le="+Inf"`, then `name_sum`
///    and `name_count`;
///  - latency histograms: the same shape, downsampled to the
///    LatencySecondsBuckets() ladder (1e-5 * 4^k) — Prometheus does not
///    need the ~2800 fine buckets to reconstruct quantiles at scrape
///    resolution.
///
/// Renders from `snapshot`, so one consistent snapshot can feed both the
/// JSON and the Prometheus artifacts.
std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// PrometheusText over the global registry's current snapshot.
std::string PrometheusTextFromGlobal();

/// A metric name sanitized to Prometheus conventions:
/// [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte becomes '_'.
///
/// Sanitization can collide (`maroon.a.b` and `maroon.a-b` both map to
/// `maroon_a_b`); PrometheusText emits the first series and drops later
/// colliders with a `# maroon: dropped colliding series <name>` comment so
/// the exposition never carries duplicate series.
std::string PrometheusName(const std::string& name);

/// HELP text escaped per exposition format 0.0.4: `\` -> `\\`,
/// newline -> `\n`.
std::string PrometheusEscapeHelp(const std::string& text);

/// Label value escaped per exposition format 0.0.4: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`.
std::string PrometheusEscapeLabel(const std::string& value);

/// Exporter lint: checks `text` against the exposition-format rules the
/// real Prometheus scraper enforces, returning one message per violation
/// (empty = clean). Checked: sample-line syntax, metric-name charset,
/// label syntax and escaping, `# TYPE` present before (and only once for)
/// each series, histogram `le` buckets cumulative and monotone with a
/// `+Inf` bucket equal to `_count`. Tests assert real exports lint clean;
/// the CI ops-smoke job reuses it through `maroon_cli promlint`.
std::vector<std::string> PrometheusLint(const std::string& text);

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_PROMETHEUS_H_
