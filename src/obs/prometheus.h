#ifndef MAROON_OBS_PROMETHEUS_H_
#define MAROON_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace maroon {
namespace obs {

/// Prometheus text exposition (format version 0.0.4) for the metrics
/// registry — the scrape surface for a future `maroon_cli serve` mode, and
/// already writable per run via `maroon_cli --metrics-prom-out=FILE`.
///
/// Mapping:
///  - metric names: dots become underscores (`maroon.phase1.confidence`
///    -> `maroon_phase1_confidence`); every series gets `# TYPE` and
///    `# HELP` headers;
///  - counters / gauges: one sample line each;
///  - fixed-bucket histograms: cumulative `name_bucket{le="<bound>"}`
///    series over the registered bounds plus `le="+Inf"`, then `name_sum`
///    and `name_count`;
///  - latency histograms: the same shape, downsampled to the
///    LatencySecondsBuckets() ladder (1e-5 * 4^k) — Prometheus does not
///    need the ~2800 fine buckets to reconstruct quantiles at scrape
///    resolution.
///
/// Renders from `snapshot`, so one consistent snapshot can feed both the
/// JSON and the Prometheus artifacts.
std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// PrometheusText over the global registry's current snapshot.
std::string PrometheusTextFromGlobal();

/// A metric name sanitized to Prometheus conventions:
/// [a-zA-Z_:][a-zA-Z0-9_:]*; every other byte becomes '_'.
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_PROMETHEUS_H_
