#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "maroon/version_info.h"
#include "obs/json.h"

namespace maroon {
namespace obs {

namespace {

bool EnabledFromEnvironment() {
  const char* env = std::getenv("MAROON_METRICS");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnabledFromEnvironment()};
  return enabled;
}

/// The uptime/build gauges once RegisterBuildMetrics() created them;
/// TakeSnapshot() refreshes through these pointers without touching the
/// registry lock (which it is about to take itself).
std::atomic<Gauge*>& UptimeGaugeSlot() {
  static std::atomic<Gauge*> gauge{nullptr};
  return gauge;
}

std::atomic<Gauge*>& BuildInfoGaugeSlot() {
  static std::atomic<Gauge*> gauge{nullptr};
  return gauge;
}

}  // namespace

std::string BuildVersion() { return MAROON_VERSION; }

std::string BuildRevision() { return MAROON_GIT_DESCRIBE; }

double ProcessUptimeSeconds() {
  // Anchored at the first call — RegisterBuildMetrics() makes that call at
  // startup in long-lived entry points, so "uptime" means process uptime
  // there and first-scrape-relative time anywhere else.
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void RegisterBuildMetrics() {
  (void)ProcessUptimeSeconds();  // anchor the uptime epoch
  MetricsRegistry& registry = MetricsRegistry::Global();
  Gauge* build_info = registry.GetGauge("maroon.build_info");
  build_info->Set(1.0);
  Gauge* uptime = registry.GetGauge("maroon.uptime_seconds");
  uptime->Set(ProcessUptimeSeconds());
  BuildInfoGaugeSlot().store(build_info, std::memory_order_release);
  UptimeGaugeSlot().store(uptime, std::memory_order_release);
}

bool BuildMetricsRegistered() {
  return UptimeGaugeSlot().load(std::memory_order_acquire) != nullptr;
}

void Counter::Add(int64_t delta) {
  if (!MetricsRegistry::Enabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Set(double value) {
  if (!MetricsRegistry::Enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MAROON_CHECK(!bounds_.empty()) << "histogram needs at least one bucket";
  MAROON_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must ascend";
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double value) {
  if (!MetricsRegistry::Enabled()) return;
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  MutexLock lock(&mu_);
  ++counts_[bucket];
  sum_ += value;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  MutexLock lock(&mu_);
  snapshot.counts = counts_;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = min_;
  snapshot.max = max_;
  return snapshot;
}

void Histogram::Reset() {
  MutexLock lock(&mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::vector<double> UnitIntervalBuckets() {
  std::vector<double> bounds;
  bounds.reserve(20);
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

std::vector<double> LatencySecondsBuckets() {
  std::vector<double> bounds;
  double bound = 1e-5;
  for (int i = 0; i <= 10; ++i) {
    bounds.push_back(bound);
    bound *= 4.0;
  }
  return bounds;
}

std::vector<double> SmallCountBuckets() {
  std::vector<double> bounds;
  for (double bound = 1.0; bound <= 1024.0; bound *= 2.0) {
    bounds.push_back(bound);
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool MetricsRegistry::Enabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  MAROON_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0 &&
               latency_histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  MAROON_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0 &&
               latency_histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  MAROON_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
               latency_histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetLatencyHistogram(
    const std::string& name) {
  MutexLock lock(&mu_);
  MAROON_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0 &&
               histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = latency_histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  // Refresh the self-identification gauges (if registered) before reading,
  // so every snapshot — scrape, JSONL dump, run report — carries a current
  // uptime and survives an intervening ResetAll().
  if (Gauge* uptime = UptimeGaugeSlot().load(std::memory_order_acquire)) {
    uptime->Set(ProcessUptimeSeconds());
  }
  if (Gauge* info = BuildInfoGaugeSlot().load(std::memory_order_acquire)) {
    info->Set(1.0);
  }
  Snapshot snapshot;
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, histogram] : latency_histograms_) {
    snapshot.latency_histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

std::string MetricsRegistry::SnapshotJson() const {
  const Snapshot snapshot = TakeSnapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name).Int(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(h.count);
    w.Key("sum").Number(h.sum);
    w.Key("min").Number(h.min);
    w.Key("max").Number(h.max);
    w.Key("mean").Number(h.Mean());
    w.Key("bounds").BeginArray();
    for (const double bound : h.bounds) w.Number(bound);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (const int64_t count : h.counts) w.Int(count);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("latency_histograms").BeginObject();
  for (const auto& [name, h] : snapshot.latency_histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(h.count);
    w.Key("sum").Number(h.sum);
    w.Key("min").Number(h.min);
    w.Key("max").Number(h.max);
    w.Key("mean").Number(h.Mean());
    w.Key("p50").Number(h.P50());
    w.Key("p90").Number(h.P90());
    w.Key("p95").Number(h.P95());
    w.Key("p99").Number(h.P99());
    w.Key("p999").Number(h.P999());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.text();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, histogram] : latency_histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace maroon
