#ifndef MAROON_OBS_LATENCY_HISTOGRAM_H_
#define MAROON_OBS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace maroon {
namespace obs {

/// Linear interpolation percentile of an ascending-sorted sample vector:
/// q in [0, 1], rank r = q * (n - 1) between samples. Returns 0 on empty
/// input. Shared by the benches (exact percentiles over raw per-entity
/// latencies) and tests (reference values for the histogram's estimates).
double PercentileOfSorted(const std::vector<double>& sorted, double q);

/// A point-in-time copy of a LatencyHistogram's state.
///
/// Percentiles are estimated from the log-spaced buckets: the documented
/// error bound is the relative half-width of one bucket, <= 100 / 128 %
/// (see LatencyHistogram). Estimates are additionally clamped to the
/// exact observed [min, max], so a single-sample histogram reports every
/// percentile exactly.
struct LatencyHistogramSnapshot {
  /// Per-bucket counts; bucket layout is LatencyHistogram's (use
  /// LatencyHistogram::BucketUpperBound for the bounds). The last entry
  /// counts overflow samples (> kMaxSeconds).
  std::vector<int64_t> counts;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  double P50() const { return Percentile(0.50); }
  double P90() const { return Percentile(0.90); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }
  double P999() const { return Percentile(0.999); }

  /// Number of recorded samples <= `seconds` (cumulative bucket count, by
  /// bucket upper bound). Feeds the Prometheus `_bucket{le=...}` series.
  int64_t CountAtOrBelow(double seconds) const;
};

/// A log-bucketed latency histogram (HDR-histogram style) for per-record
/// and per-entity link latencies.
///
/// Layout: values in seconds are clamped to [kMinSeconds, kMaxSeconds] and
/// bucketed by binary exponent with kSubBuckets linear sub-buckets per
/// octave, so bucket width is at most 1/kSubBuckets of the value — a
/// relative quantile error of at most 100 / (2 * kSubBuckets) percent
/// (~0.8% at 64 sub-buckets, within the documented 1% bound). Samples
/// above kMaxSeconds land in a dedicated overflow bucket and saturate the
/// percentile estimate at the observed max.
///
/// The record path is lock-free: one relaxed fetch_add on the bucket
/// counter plus CAS loops for sum/min/max — safe to call from every pool
/// worker at per-record granularity, unlike the mutexed fixed-bucket
/// Histogram. Relaxed ordering is sound because each counter is an
/// independent statistic (this file is on lint rule R014's relaxed-atomics
/// allowlist; see docs/threading-model.md). Snapshot() is not atomic with respect to concurrent
/// Record() calls; a snapshot taken mid-record can be ahead or behind by
/// the in-flight samples, which is fine for monitoring output.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 64;       // per octave
  static constexpr int kMinExponent = -30;     // 2^-30 s ~ 0.93 ns
  static constexpr int kMaxExponent = 14;      // 2^14 s = 16384 s
  static constexpr int kOctaves = kMaxExponent - kMinExponent;
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;
  static constexpr double kMinSeconds = 9.313225746154785e-10;  // 2^-30
  static constexpr double kMaxSeconds = 16384.0;                // 2^14

  LatencyHistogram();

  /// Records one latency sample. Lock-free; negative and non-finite values
  /// are dropped. No-op while the metrics registry is disabled.
  void Record(double seconds);

  LatencyHistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index for a value (clamped; kNumBuckets = overflow). Exposed
  /// for tests.
  static int BucketIndex(double seconds);
  /// Inclusive upper bound of bucket `index`; the overflow bucket reports
  /// kMaxSeconds.
  static double BucketUpperBound(int index);

 private:
  // +1 overflow bucket. ~22 KB per histogram; registered once per name.
  std::array<std::atomic<int64_t>, kNumBuckets + 1> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +/-infinity sentinels until the first sample; Snapshot() reports 0
  /// for both while count_ is 0.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_LATENCY_HISTOGRAM_H_
