#include "obs/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace maroon {
namespace obs {

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double LatencyHistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, nearest-rank method).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil(q * static_cast<double>(count))));
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Midpoint of the bucket, clamped to the exact observed range so
      // single-sample and all-overflow histograms report exact values.
      const int index = static_cast<int>(i);
      const double upper = LatencyHistogram::BucketUpperBound(index);
      const double lower =
          index == 0 ? 0.0 : LatencyHistogram::BucketUpperBound(index - 1);
      const double mid = 0.5 * (lower + upper);
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

int64_t LatencyHistogramSnapshot::CountAtOrBelow(double seconds) const {
  // Overflow samples exceed kMaxSeconds by definition, so they are only
  // covered by the le="+Inf" series (use `count` for that).
  int64_t total = 0;
  const int regular =
      std::min(static_cast<int>(counts.size()), LatencyHistogram::kNumBuckets);
  for (int i = 0; i < regular; ++i) {
    if (LatencyHistogram::BucketUpperBound(i) > seconds) break;
    total += counts[static_cast<size_t>(i)];
  }
  return total;
}

LatencyHistogram::LatencyHistogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > 0.0)) return 0;
  if (seconds >= kMaxSeconds) return kNumBuckets;  // overflow bucket
  if (seconds < kMinSeconds) return 0;
  int exp = 0;
  // seconds = m * 2^exp with m in [0.5, 1) => value lives in the octave
  // [2^(exp-1), 2^exp).
  const double m = std::frexp(seconds, &exp);
  const int octave = (exp - 1) - kMinExponent;
  // m*2 in [1, 2): linear sub-bucket within the octave.
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((m * 2.0 - 1.0) * static_cast<double>(kSubBuckets)));
  const int index = octave * kSubBuckets + sub;
  return std::clamp(index, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperBound(int index) {
  if (index >= kNumBuckets) return kMaxSeconds;
  index = std::max(index, 0);
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  const double base = std::ldexp(1.0, kMinExponent + octave);
  return base * (1.0 + static_cast<double>(sub + 1) /
                           static_cast<double>(kSubBuckets));
}

void LatencyHistogram::Record(double seconds) {
  if (!MetricsRegistry::Enabled()) return;
  if (!std::isfinite(seconds) || seconds < 0.0) return;
  counts_[static_cast<size_t>(BucketIndex(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + seconds,
                                     std::memory_order_relaxed)) {
  }
  expected = min_.load(std::memory_order_relaxed);
  while (seconds < expected &&
         !min_.compare_exchange_weak(expected, seconds,
                                     std::memory_order_relaxed)) {
  }
  expected = max_.load(std::memory_order_relaxed);
  while (seconds > expected &&
         !max_.compare_exchange_weak(expected, seconds,
                                     std::memory_order_relaxed)) {
  }
}

LatencyHistogramSnapshot LatencyHistogram::Snapshot() const {
  LatencyHistogramSnapshot snapshot;
  snapshot.counts.resize(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.min = min_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  if (snapshot.count == 0) {
    snapshot.min = 0.0;
    snapshot.max = 0.0;
  }
  return snapshot;
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace maroon
