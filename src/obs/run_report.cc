#include "obs/run_report.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {
namespace obs {

std::string Iso8601UtcNow() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buffer;
}

std::string BuildRunReportJson(const RunReportOptions& options) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("maroon_run_report_v1");
  w.Key("generated_at")
      .String(options.include_timestamp ? Iso8601UtcNow() : "");
  w.Key("config").BeginObject();
  for (const auto& [key, value] : options.config) {
    w.Key(key).String(value);
  }
  w.EndObject();
  // Splice the registry's own JSON in verbatim rather than re-serializing.
  std::string out = w.text();
  out += ", \"metrics\": ";
  out += MetricsRegistry::Global().SnapshotJson();

  const Tracer& tracer = Tracer::Global();
  JsonWriter trace;
  trace.BeginObject();
  trace.Key("enabled").Bool(Tracer::Enabled());
  trace.Key("span_count").Int(static_cast<int64_t>(tracer.span_count()));
  trace.Key("root_span_seconds").Number(tracer.RootSpanSeconds());
  trace.EndObject();
  out += ", \"trace\": ";
  out += trace.text();
  out += "}";
  return out;
}

std::string RenderRunReportText(const RunReportOptions& options) {
  const MetricsRegistry::Snapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  std::ostringstream os;
  os << "== MAROON run report ==\n";
  if (!options.config.empty()) {
    os << "config:\n";
    for (const auto& [key, value] : options.config) {
      os << "  " << key << " = " << value << "\n";
    }
  }
  os << "counters:\n";
  bool any = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    any = true;
    os << "  " << name << " = " << value << "\n";
  }
  if (!any) os << "  (all zero)\n";
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      os << "  " << name << " = " << FormatDouble(value, 4) << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      os << "  " << name << ": count=" << h.count
         << " mean=" << FormatDouble(h.Mean(), 4)
         << " min=" << FormatDouble(h.min, 4)
         << " max=" << FormatDouble(h.max, 4) << "\n";
    }
  }
  if (!snapshot.latency_histograms.empty()) {
    os << "latency (ms):\n";
    for (const auto& [name, h] : snapshot.latency_histograms) {
      os << "  " << name << ": count=" << h.count
         << " p50=" << FormatDouble(h.P50() * 1e3, 3)
         << " p90=" << FormatDouble(h.P90() * 1e3, 3)
         << " p95=" << FormatDouble(h.P95() * 1e3, 3)
         << " p99=" << FormatDouble(h.P99() * 1e3, 3)
         << " p999=" << FormatDouble(h.P999() * 1e3, 3)
         << " max=" << FormatDouble(h.max * 1e3, 3) << "\n";
    }
  }
  os << "trace: " << Tracer::Global().span_count() << " span(s), "
     << FormatDouble(Tracer::Global().RootSpanSeconds(), 3)
     << "s in root spans ("
     << (Tracer::Enabled() ? "enabled" : "disabled") << ")\n";
  return os.str();
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  // Surface close-time failures too (flush-on-close filesystems, quotas);
  // the implicit destructor close would swallow them.
  out.close();
  if (out.fail()) return Status::IOError("failed closing " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace maroon
