#ifndef MAROON_OBS_HEALTH_H_
#define MAROON_OBS_HEALTH_H_

#include <chrono>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace maroon {
namespace obs {

/// Per-component health states, ordered by severity. The ops plane's
/// `/healthz` reports the worst state across components; `/readyz` demands
/// kOk everywhere plus an explicit ready mark from the serving loop.
enum class HealthState {
  kOk = 0,
  kDegraded = 1,   // serving, but shedding / lagging / near a limit
  kUnhealthy = 2,  // a component has latched a non-transient failure
};

const char* HealthStateName(HealthState state);

/// One component's last report.
struct ComponentHealth {
  HealthState state = HealthState::kOk;
  std::string detail;  // human-oriented one-liner, "" when healthy
  double age_s = 0;    // seconds since the component last reported
};

/// Process-wide health registry: components (the stream linker's WAL, its
/// queue, the snapshotter) push state transitions, the ops server reads the
/// aggregate. Mirrors the MetricsRegistry singleton pattern — a leaked
/// global, mutex-guarded, safe from any thread.
class HealthRegistry {
 public:
  static HealthRegistry& Global();

  /// Reports `component` as `state`. Detail is advisory prose for
  /// `/healthz` output; keep it short and stable.
  void Set(const std::string& component, HealthState state,
           const std::string& detail = "");

  /// Marks the process ready (or not) to serve. Readiness is separate from
  /// health: a process replaying its WAL is healthy but not yet ready.
  void SetReady(bool ready);
  bool ready() const;

  /// Worst state across all reported components; kOk when none reported.
  HealthState Overall() const;

  /// Snapshot of every component's last report, keyed by component name.
  std::map<std::string, ComponentHealth> Components() const;

  /// Drops all components and clears readiness. Test isolation only.
  void Clear();

 private:
  HealthRegistry() = default;

  struct Entry {
    HealthState state = HealthState::kOk;
    std::string detail;
    std::chrono::steady_clock::time_point updated;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> components_ MAROON_GUARDED_BY(mu_);
  bool ready_ MAROON_GUARDED_BY(mu_) = false;
};

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_HEALTH_H_
