#ifndef MAROON_OBS_METRICS_H_
#define MAROON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/latency_histogram.h"

namespace maroon {
namespace obs {

/// Process-wide metrics for the MAROON pipeline.
///
/// Naming convention: `maroon.<subsystem>.<name>`, e.g.
/// `maroon.phase1.clusters_formed` (see docs/observability.md for the full
/// inventory). Metrics are registered lazily on first use and live for the
/// process lifetime, so instrumentation sites cache the returned pointer in
/// a function-local static:
///
///   static Counter* c = MAROON_COUNTER("maroon.phase1.clusters_formed");
///   c->Add(clusters.size());
///
/// The fast path is lock-free: counters and gauges are single relaxed
/// atomics; histograms serialize on a per-histogram mutex (observations are
/// infrequent — per cluster or per iteration, never per record pair).
/// `MetricsRegistry::SetEnabled(false)` (or env MAROON_METRICS=off) turns
/// every mutation into a cheap early return, which is how the
/// instrumentation-overhead benchmark measures the cost of the layer.

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(int64_t delta = 1);
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-value-wins gauge.
class Gauge {
 public:
  void Set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A point-in-time copy of a histogram's state.
struct HistogramSnapshot {
  /// Ascending upper bounds; bucket i counts observations v <= bounds[i]
  /// (and > bounds[i-1]). counts.back() is the overflow bucket
  /// (v > bounds.back()), so counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// A fixed-bucket histogram. Bounds are set at registration and immutable.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable Mutex mu_;
  /// bounds_.size() + 1 slots: the last is the overflow bucket.
  std::vector<int64_t> counts_ MAROON_GUARDED_BY(mu_);
  int64_t count_ MAROON_GUARDED_BY(mu_) = 0;
  double sum_ MAROON_GUARDED_BY(mu_) = 0.0;
  double min_ MAROON_GUARDED_BY(mu_) = 0.0;
  double max_ MAROON_GUARDED_BY(mu_) = 0.0;
};

/// Canonical bucket sets. Scores and confidences from Eq. 11/15 live in
/// [0, 1]; latencies are exponential from 10µs to ~10s.
std::vector<double> UnitIntervalBuckets();    // 0.05, 0.10, ..., 1.00
std::vector<double> LatencySecondsBuckets();  // 1e-5 * 4^k, k = 0..10
std::vector<double> SmallCountBuckets();      // 1, 2, 4, 8, ..., 1024

/// --- build identity ------------------------------------------------------
/// The binary's version and git-describe string (from the generated
/// maroon/version_info.h), exposed here so the obs layer can stamp exports
/// without every caller including the generated header.
std::string BuildVersion();
std::string BuildRevision();

/// Seconds since this process first touched the obs layer (steady clock).
double ProcessUptimeSeconds();

/// Registers the self-identification metrics — the `maroon.build_info`
/// gauge (value 1; the Prometheus exporter attaches version/revision
/// labels) and the `maroon.uptime_seconds` gauge, which every subsequent
/// TakeSnapshot() refreshes. Idempotent; long-lived entry points (the CLI,
/// the ops server, benches) call it once at startup. Deliberately opt-in so
/// unit tests see exactly the metrics they created.
void RegisterBuildMetrics();

/// True once RegisterBuildMetrics() has run.
bool BuildMetricsRegistered();

/// The process-wide named-metric registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Mutations are dropped while disabled. Defaults to enabled unless the
  /// MAROON_METRICS environment variable is "0", "off", or "false" at first
  /// use.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// Lazily registers and returns the named metric. Pointers stay valid for
  /// the registry's lifetime. Registering an existing name with a different
  /// metric kind trips MAROON_CHECK; GetHistogram ignores `bounds` when the
  /// name already exists.
  Counter* GetCounter(const std::string& name) MAROON_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) MAROON_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds)
      MAROON_EXCLUDES(mu_);
  /// Log-bucketed latency histogram with a lock-free record path — the
  /// right kind for per-record / per-entity latencies (the mutexed
  /// fixed-bucket Histogram stays for coarse-grained scores and sizes).
  LatencyHistogram* GetLatencyHistogram(const std::string& name)
      MAROON_EXCLUDES(mu_);

  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, LatencyHistogramSnapshot> latency_histograms;
  };
  Snapshot TakeSnapshot() const MAROON_EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count": ...,
  ///  "sum": ..., "min": ..., "max": ..., "mean": ..., "bounds": [...],
  ///  "counts": [...]}}, "latency_histograms": {name: {"count": ...,
  ///  "sum": ..., "min": ..., "max": ..., "mean": ..., "p50": ...,
  ///  "p90": ..., "p95": ..., "p99": ..., "p999": ...}}}
  ///
  /// Latency histograms serialize as their percentile digest, not their
  /// ~2800 raw buckets; use TakeSnapshot() for bucket-level access.
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (names stay registered). Tests and the
  /// CLI use this to scope metrics to one run.
  void ResetAll() MAROON_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  /// Guards the maps, not the metric values: the pointed-to metrics have
  /// their own synchronization (atomics or a per-histogram mutex), so
  /// readers holding a cached Counter*/Gauge* never touch mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MAROON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      MAROON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MAROON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latency_histograms_
      MAROON_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace maroon

/// Registration shorthands for instrumentation sites (cache the result in a
/// function-local static — registration takes the registry lock).
#define MAROON_COUNTER(name) \
  ::maroon::obs::MetricsRegistry::Global().GetCounter(name)
#define MAROON_GAUGE(name) \
  ::maroon::obs::MetricsRegistry::Global().GetGauge(name)
#define MAROON_HISTOGRAM(name, bounds) \
  ::maroon::obs::MetricsRegistry::Global().GetHistogram(name, bounds)
#define MAROON_LATENCY(name) \
  ::maroon::obs::MetricsRegistry::Global().GetLatencyHistogram(name)

#endif  // MAROON_OBS_METRICS_H_
