#ifndef MAROON_OBS_METRICS_SNAPSHOTTER_H_
#define MAROON_OBS_METRICS_SNAPSHOTTER_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_pool.h"

namespace maroon {
namespace obs {

/// Periodic metrics time series: while alive, appends one JSONL row with the
/// global registry's full snapshot every `period_s` seconds, so a long batch
/// run leaves behind the *trajectory* of its counters and latency
/// percentiles, not just the end state. One row per line, schema
/// `maroon_metrics_snapshot_v1`:
///
///   {"schema": "maroon_metrics_snapshot_v1", "seq": 0, "t_s": 10.0,
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...},
///                "latency_histograms": {...}}}
///
/// `t_s` is steady-clock seconds since the writer started; `seq` ascends
/// from 0. Stop() (also run by the destructor) writes one final row so the
/// series always ends with the run's closing state, even for runs shorter
/// than a period.
///
/// The ticking thread comes from maroon::PeriodicTimer — thread construction
/// stays confined to src/common/thread_pool.* (lint rule R008). I/O errors
/// don't throw: the first failure is latched into status() and later rows
/// are skipped.
struct MetricsSnapshotWriterOptions {
  std::string path;        // JSONL output file (truncated on start)
  double period_s = 10.0;  // snapshot period; clamped to >= 0.01
};

class MetricsSnapshotWriter {
 public:
  explicit MetricsSnapshotWriter(const MetricsSnapshotWriterOptions& options);
  ~MetricsSnapshotWriter();

  MetricsSnapshotWriter(const MetricsSnapshotWriter&) = delete;
  MetricsSnapshotWriter& operator=(const MetricsSnapshotWriter&) = delete;

  /// Stops the timer and writes the final row; idempotent. The output file
  /// is complete once this returns.
  void Stop();

  /// Rows successfully written so far (periodic rows plus the final one).
  int64_t rows_written() const;

  /// OK, or the first I/O error encountered.
  Status status() const;

 private:
  void WriteRow();

  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::ofstream out_;        // guarded by mu_
  Status status_;            // guarded by mu_
  int64_t rows_written_ = 0; // guarded by mu_
  bool stopped_ = false;     // guarded by mu_
  // Last member: the timer thread may call WriteRow immediately.
  std::unique_ptr<PeriodicTimer> timer_;
};

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_METRICS_SNAPSHOTTER_H_
