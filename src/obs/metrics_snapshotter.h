#ifndef MAROON_OBS_METRICS_SNAPSHOTTER_H_
#define MAROON_OBS_METRICS_SNAPSHOTTER_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace maroon {
namespace obs {

/// Periodic metrics time series: while alive, appends one JSONL row with the
/// global registry's full snapshot every `period_s` seconds, so a long batch
/// run leaves behind the *trajectory* of its counters and latency
/// percentiles, not just the end state. One row per line, schema
/// `maroon_metrics_snapshot_v1`:
///
///   {"schema": "maroon_metrics_snapshot_v1", "seq": 0, "t_s": 10.0,
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...},
///                "latency_histograms": {...}}}
///
/// `t_s` is steady-clock seconds since the writer started; `seq` ascends
/// from 0. Stop() (also run by the destructor) writes one final row so the
/// series always ends with the run's closing state, even for runs shorter
/// than a period.
///
/// The ticking thread comes from maroon::PeriodicTimer — thread construction
/// stays confined to src/common/thread_pool.* (lint rule R008). I/O errors
/// don't throw: the first failure is latched into status() and later rows
/// are skipped.
struct MetricsSnapshotWriterOptions {
  std::string path;        // JSONL output file (truncated on start)
  double period_s = 10.0;  // snapshot period; clamped to >= 0.01
};

class MetricsSnapshotWriter {
 public:
  explicit MetricsSnapshotWriter(const MetricsSnapshotWriterOptions& options);
  ~MetricsSnapshotWriter();

  MetricsSnapshotWriter(const MetricsSnapshotWriter&) = delete;
  MetricsSnapshotWriter& operator=(const MetricsSnapshotWriter&) = delete;

  /// Stops the timer and writes the final row; idempotent. The output file
  /// is complete once this returns.
  void Stop();

  /// Rows successfully written so far (periodic rows plus the final one).
  int64_t rows_written() const;

  /// OK, or the first I/O error encountered.
  Status status() const;

 private:
  void WriteRow();

  const std::chrono::steady_clock::time_point start_;
  mutable Mutex mu_;
  Status status_ MAROON_GUARDED_BY(mu_);
  int64_t rows_written_ MAROON_GUARDED_BY(mu_) = 0;
  /// Deliberately NOT guarded by mu_: the stream is written only from the
  /// constructor (before the timer exists) and from WriteRow, whose
  /// invocations never overlap — the timer serializes its own ticks, and
  /// Stop() writes the final row only after joining the timer thread.
  /// Keeping the stream outside mu_ keeps blocking I/O out of every
  /// critical section (lint rule R013).
  std::ofstream out_;
  /// Stop() runs exactly once even when the destructor races an explicit
  /// Stop() call from another thread.
  std::once_flag stop_once_;
  // Last member: the timer thread may call WriteRow immediately.
  std::unique_ptr<PeriodicTimer> timer_;
};

}  // namespace obs
}  // namespace maroon

#endif  // MAROON_OBS_METRICS_SNAPSHOTTER_H_
