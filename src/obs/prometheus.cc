#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

namespace maroon {
namespace obs {

namespace {

/// Prometheus sample values: shortest round-trip decimal form ("%g" is
/// enough for exposition; counts are integers and print as such).
std::string PromNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {  // maroon-lint: allow(R003)
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void EmitHeader(const std::string& name, const char* type, std::string* out) {
  out->append("# HELP ").append(name).append(" MAROON pipeline metric\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void EmitBucketLine(const std::string& name, const std::string& le,
                    int64_t cumulative, std::string* out) {
  out->append(name)
      .append("_bucket{le=\"")
      .append(le)
      .append("\"} ")
      .append(std::to_string(cumulative))
      .append("\n");
}

void EmitSumCount(const std::string& name, double sum, int64_t count,
                  std::string* out) {
  out->append(name).append("_sum ").append(PromNumber(sum)).append("\n");
  out->append(name).append("_count ").append(std::to_string(count)).append(
      "\n");
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    const bool ok = std::isalpha(c) || c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(c));
    out += ok ? name[i] : '_';
  }
  return out.empty() ? "_" : out;
}

std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    EmitHeader(prom, "counter", &out);
    out.append(prom).append(" ").append(std::to_string(value)).append("\n");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    EmitHeader(prom, "gauge", &out);
    out.append(prom).append(" ").append(PromNumber(value)).append("\n");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    EmitHeader(prom, "histogram", &out);
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      EmitBucketLine(prom, PromNumber(h.bounds[i]), cumulative, &out);
    }
    EmitBucketLine(prom, "+Inf", h.count, &out);
    EmitSumCount(prom, h.sum, h.count, &out);
  }
  for (const auto& [name, h] : snapshot.latency_histograms) {
    const std::string prom = PrometheusName(name);
    EmitHeader(prom, "histogram", &out);
    for (const double bound : LatencySecondsBuckets()) {
      EmitBucketLine(prom, PromNumber(bound), h.CountAtOrBelow(bound), &out);
    }
    EmitBucketLine(prom, "+Inf", h.count, &out);
    EmitSumCount(prom, h.sum, h.count, &out);
  }
  return out;
}

std::string PrometheusTextFromGlobal() {
  return PrometheusText(MetricsRegistry::Global().TakeSnapshot());
}

}  // namespace obs
}  // namespace maroon
