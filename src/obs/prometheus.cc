#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace maroon {
namespace obs {

namespace {

/// Prometheus sample values: shortest round-trip decimal form ("%g" is
/// enough for exposition; counts are integers and print as such).
std::string PromNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {  // maroon-lint: allow(R003)
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void EmitHeader(const std::string& name, const char* type, std::string* out) {
  out->append("# HELP ")
      .append(name)
      .append(" ")
      .append(PrometheusEscapeHelp("MAROON pipeline metric"))
      .append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void EmitBucketLine(const std::string& name, const std::string& le,
                    int64_t cumulative, std::string* out) {
  out->append(name)
      .append("_bucket{le=\"")
      .append(le)
      .append("\"} ")
      .append(std::to_string(cumulative))
      .append("\n");
}

void EmitSumCount(const std::string& name, double sum, int64_t count,
                  std::string* out) {
  out->append(name).append("_sum ").append(PromNumber(sum)).append("\n");
  out->append(name).append("_count ").append(std::to_string(count)).append(
      "\n");
}

/// True when `prom` is new; otherwise records the dropped collider as an
/// exposition comment so scrapes never carry duplicate series.
bool ClaimSeries(const std::string& prom, const std::string& original,
                 std::set<std::string>* emitted, std::string* out) {
  if (emitted->insert(prom).second) return true;
  out->append("# maroon: dropped colliding series ")
      .append(original)
      .append("\n");
  return false;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    const bool ok = std::isalpha(c) || c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(c));
    if (!ok) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    const bool ok = std::isalpha(c) || c == '_' || (i > 0 && std::isdigit(c));
    if (!ok) return false;
  }
  return true;
}

/// State the lint accumulates per histogram family.
struct HistogramLint {
  int64_t last_bucket = 0;
  bool monotone = true;
  bool saw_inf = false;
  int64_t inf_count = 0;
  bool saw_count = false;
  double count_value = 0;
};

/// Strips a histogram sample suffix; "" when none.
std::string HistogramSuffix(const std::string& name, std::string* base) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      *base = name.substr(0, name.size() - len);
      return suffix;
    }
  }
  *base = name;
  return "";
}

/// Parses `{k="v",...}` starting at `pos` (the '{'); advances `pos` past the
/// closing '}'. Returns label-syntax problems; fills `le` when present.
std::vector<std::string> ParseLabels(const std::string& line, size_t* pos,
                                     std::string* le) {
  std::vector<std::string> problems;
  size_t p = *pos + 1;  // past '{'
  while (p < line.size() && line[p] != '}') {
    const size_t eq = line.find('=', p);
    if (eq == std::string::npos) {
      problems.push_back("label without '='");
      break;
    }
    const std::string key = line.substr(p, eq - p);
    if (!ValidLabelName(key)) {
      problems.push_back("bad label name '" + key + "'");
    }
    if (eq + 1 >= line.size() || line[eq + 1] != '"') {
      problems.push_back("label value for '" + key + "' not quoted");
      break;
    }
    std::string value;
    size_t q = eq + 2;
    bool closed = false;
    while (q < line.size()) {
      const char c = line[q];
      if (c == '\\') {
        if (q + 1 >= line.size() ||
            (line[q + 1] != '\\' && line[q + 1] != '"' &&
             line[q + 1] != 'n')) {
          problems.push_back("bad escape in label '" + key + "'");
        }
        value += c;
        if (q + 1 < line.size()) value += line[++q];
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        value += c;
      }
      ++q;
    }
    if (!closed) {
      problems.push_back("unterminated label value for '" + key + "'");
      break;
    }
    if (key == "le") *le = value;
    p = q + 1;
    if (p < line.size() && line[p] == ',') ++p;
  }
  if (p >= line.size() || line[p] != '}') {
    problems.push_back("unterminated label set");
    *pos = line.size();
  } else {
    *pos = p + 1;
  }
  return problems;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    const bool ok = std::isalpha(c) || c == '_' || c == ':' ||
                    (i > 0 && std::isdigit(c));
    out += ok ? name[i] : '_';
  }
  return out.empty() ? "_" : out;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  std::set<std::string> emitted;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    if (!ClaimSeries(prom, name, &emitted, &out)) continue;
    EmitHeader(prom, "counter", &out);
    out.append(prom).append(" ").append(std::to_string(value)).append("\n");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    if (!ClaimSeries(prom, name, &emitted, &out)) continue;
    EmitHeader(prom, "gauge", &out);
    if (name == "maroon.build_info") {
      // The self-identification series: the binary's version and git
      // describe ride as labels, the value stays a constant 1.
      out.append(prom)
          .append("{version=\"")
          .append(PrometheusEscapeLabel(BuildVersion()))
          .append("\",revision=\"")
          .append(PrometheusEscapeLabel(BuildRevision()))
          .append("\"} ")
          .append(PromNumber(value))
          .append("\n");
      continue;
    }
    out.append(prom).append(" ").append(PromNumber(value)).append("\n");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    if (!ClaimSeries(prom, name, &emitted, &out)) continue;
    EmitHeader(prom, "histogram", &out);
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      EmitBucketLine(prom, PromNumber(h.bounds[i]), cumulative, &out);
    }
    EmitBucketLine(prom, "+Inf", h.count, &out);
    EmitSumCount(prom, h.sum, h.count, &out);
  }
  for (const auto& [name, h] : snapshot.latency_histograms) {
    const std::string prom = PrometheusName(name);
    if (!ClaimSeries(prom, name, &emitted, &out)) continue;
    EmitHeader(prom, "histogram", &out);
    for (const double bound : LatencySecondsBuckets()) {
      EmitBucketLine(prom, PromNumber(bound), h.CountAtOrBelow(bound), &out);
    }
    EmitBucketLine(prom, "+Inf", h.count, &out);
    EmitSumCount(prom, h.sum, h.count, &out);
  }
  return out;
}

std::string PrometheusTextFromGlobal() {
  return PrometheusText(MetricsRegistry::Global().TakeSnapshot());
}

std::vector<std::string> PrometheusLint(const std::string& text) {
  std::vector<std::string> problems;
  std::map<std::string, std::string> type_of;  // family -> counter/gauge/...
  std::map<std::string, HistogramLint> histograms;
  auto complain = [&problems](int line_no, const std::string& what) {
    problems.push_back("line " + std::to_string(line_no) + ": " + what);
  };

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t end = text.find('\n', pos);
    const std::string line = text.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only TYPE comments carry lint weight; HELP and free comments pass.
      if (line.compare(0, 7, "# TYPE ") == 0) {
        const size_t name_end = line.find(' ', 7);
        if (name_end == std::string::npos) {
          complain(line_no, "TYPE comment without a type");
          continue;
        }
        const std::string family = line.substr(7, name_end - 7);
        const std::string type = line.substr(name_end + 1);
        if (!ValidMetricName(family)) {
          complain(line_no, "bad metric name '" + family + "' in TYPE");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          complain(line_no, "unknown type '" + type + "'");
        }
        if (!type_of.emplace(family, type).second) {
          complain(line_no, "duplicate TYPE for '" + family + "'");
        }
      }
      continue;
    }

    // A sample line: name[{labels}] value.
    size_t cursor = line.find_first_of("{ ");
    if (cursor == std::string::npos) {
      complain(line_no, "sample line without a value");
      continue;
    }
    const std::string name = line.substr(0, cursor);
    if (!ValidMetricName(name)) {
      complain(line_no, "bad metric name '" + name + "'");
      continue;
    }
    std::string le;
    if (line[cursor] == '{') {
      for (const std::string& problem : ParseLabels(line, &cursor, &le)) {
        complain(line_no, problem);
      }
      if (cursor >= line.size() || line[cursor] != ' ') {
        complain(line_no, "no value after label set");
        continue;
      }
    }
    // value [timestamp] — the exposition format allows an optional
    // millisecond timestamp after the value (this exporter never emits one,
    // but hand-written fixtures may).
    std::string value_text = line.substr(cursor + 1);
    const size_t value_end = value_text.find(' ');
    if (value_end != std::string::npos) {
      const std::string timestamp = value_text.substr(value_end + 1);
      value_text.resize(value_end);
      char* ts_end = nullptr;
      (void)std::strtoll(timestamp.c_str(), &ts_end, 10);
      if (timestamp.empty() || ts_end == nullptr || *ts_end != '\0') {
        complain(line_no, "unparseable timestamp '" + timestamp + "'");
        continue;
      }
    }
    double value = 0;
    if (value_text == "+Inf" || value_text == "-Inf" || value_text == "NaN") {
      value = 0;  // legal sample values; magnitude not needed below
    } else {
      char* parse_end = nullptr;
      value = std::strtod(value_text.c_str(), &parse_end);
      if (value_text.empty() || parse_end == nullptr || *parse_end != '\0') {
        complain(line_no, "unparseable sample value '" + value_text + "'");
        continue;
      }
    }

    std::string family;
    const std::string suffix = HistogramSuffix(name, &family);
    const bool histogram_family =
        !suffix.empty() && type_of.count(family) != 0 &&
        type_of[family] == "histogram";
    const std::string typed_as = histogram_family ? family : name;
    if (type_of.count(typed_as) == 0) {
      complain(line_no, "sample for '" + name + "' precedes its TYPE");
      continue;
    }
    if (!histogram_family && type_of[typed_as] == "histogram") {
      complain(line_no,
               "bare sample for histogram family '" + typed_as + "'");
      continue;
    }
    if (histogram_family) {
      HistogramLint& h = histograms[family];
      if (suffix == "_bucket") {
        if (le.empty()) {
          complain(line_no, "histogram bucket without an le label");
        } else if (le == "+Inf") {
          h.saw_inf = true;
          h.inf_count = static_cast<int64_t>(value);
          if (value < static_cast<double>(h.last_bucket)) h.monotone = false;
        } else {
          const int64_t count = static_cast<int64_t>(value);
          if (count < h.last_bucket) h.monotone = false;
          h.last_bucket = count;
        }
      } else if (suffix == "_count") {
        h.saw_count = true;
        h.count_value = value;
      }
    }
  }

  for (const auto& [family, h] : histograms) {
    if (!h.saw_inf) {
      problems.push_back("histogram '" + family + "' has no +Inf bucket");
    }
    if (!h.monotone) {
      problems.push_back("histogram '" + family +
                         "' buckets are not cumulative");
    }
    if (h.saw_inf && h.saw_count &&
        h.count_value != static_cast<double>(h.inf_count)) {
      problems.push_back("histogram '" + family +
                         "' _count disagrees with its +Inf bucket");
    }
  }
  return problems;
}

}  // namespace obs
}  // namespace maroon
