#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace maroon {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values print without an exponent or trailing ".000000"; other
  // values keep full round-trip precision.
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {  // maroon-lint: allow(R003)
    return std::to_string(static_cast<int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void JsonWriter::BeforeValue() {
  if (scope_has_value_.empty()) return;
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (scope_has_value_.back()) out_ += ", ";
  scope_has_value_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  MAROON_CHECK(!scope_has_value_.empty()) << "EndObject without BeginObject";
  scope_has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  MAROON_CHECK(!scope_has_value_.empty()) << "EndArray without BeginArray";
  scope_has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MAROON_CHECK(!scope_has_value_.empty()) << "Key outside an object";
  if (scope_has_value_.back()) out_ += ", ";
  scope_has_value_.back() = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseRoot() {
    MAROON_ASSIGN_OR_RETURN(JsonValue value, ParseValue(/*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    JsonValue value;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      MAROON_ASSIGN_OR_RETURN(value.string_value, ParseString());
      value.kind = JsonValue::Kind::kString;
      return value;
    }
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.bool_value = false;
      return value;
    }
    if (ConsumeWord("null")) {
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      MAROON_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      MAROON_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.object[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      MAROON_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // The emitters only escape control characters; decode the BMP
          // point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, parsed);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      return Error("malformed number '" +
                   std::string(text_.substr(start, pos_ - start)) + "'");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number_value = parsed;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).ParseRoot();
}

}  // namespace obs
}  // namespace maroon
