#ifndef MAROON_OBS_TRACE_H_
#define MAROON_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace maroon {
namespace obs {

/// One completed span. Times are microseconds on the steady clock, relative
/// to the tracer epoch (process start or the last Clear()).
struct SpanRecord {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
  /// Small dense id per OS thread (1, 2, ...), stable within the process.
  int tid = 0;
  /// Nesting depth on its thread at the time the span opened (0 = root).
  int depth = 0;
  /// True when the span was recorded inside a PoolTaskScope: its wall time
  /// is already covered by the span of the thread that issued the parallel
  /// section, so RootSpanSeconds() skips worker roots.
  bool pool_worker = false;
};

/// A span-based tracer with Chrome trace_event JSON export
/// (chrome://tracing and https://ui.perfetto.dev load the output directly).
///
/// Tracing is off by default; a disabled MAROON_TRACE_SPAN costs one relaxed
/// atomic load. Span nesting is tracked per thread: spans opened while
/// another span is live on the same thread record a larger depth, and the
/// exported ts/dur containment lets trace viewers rebuild the hierarchy.
///
/// Span names form a dot taxonomy parallel to the metric names:
/// `cli.link` > `experiment.prepare` > `train.transition`, `link.phase1` >
/// `phase1.partition`, ... (see docs/observability.md).
class Tracer {
 public:
  static Tracer& Global();

  static void SetEnabled(bool enabled);
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded spans and restarts the epoch.
  void Clear();

  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;

  /// {"displayTimeUnit": "ms", "traceEvents": [{"name": ..., "ph": "X",
  ///  "ts": ..., "dur": ..., "pid": 1, "tid": ...}, ...]}
  std::string ToChromeTraceJson() const;

  /// Total wall time covered by root (depth 0) spans, in seconds. Pool-task
  /// roots are excluded: they run concurrently under some caller's span, and
  /// counting them would bill the same wall time twice.
  double RootSpanSeconds() const;

  /// Called by Span; records one completed span.
  void Record(SpanRecord record);

  /// Microseconds since the epoch, on the steady clock.
  double NowMicros() const;

  /// --- /tracez ring --------------------------------------------------
  /// A fixed-size lock-free ring of the most recent completed spans, for
  /// the live ops plane. Independent of the accumulate-everything vector
  /// above: the ring stays on for an indefinitely-running `serve` process
  /// with bounded memory while full tracing stays off. Writers publish
  /// into per-slot seqlocks whose fields are all atomics (span names are
  /// string literals with process lifetime, so the ring stores the
  /// pointer); readers skip slots that are mid-write. A scrape racing the
  /// writers may miss a span — acceptable for a debugging surface.

  static constexpr size_t kRingCapacity = 256;

  static void SetRingEnabled(bool enabled);
  static bool RingEnabled() {
    return ring_enabled_.load(std::memory_order_relaxed);
  }

  /// The ring's currently-published spans, oldest first. Best effort:
  /// slots being overwritten mid-read are skipped, not blocked on.
  static std::vector<SpanRecord> RingSnapshot();

  /// Spans pushed to the ring since process start (monotonic; the ring
  /// itself only retains the last kRingCapacity of them).
  static uint64_t RingSpanCount();

 private:
  Tracer();

  static std::atomic<bool> enabled_;
  static std::atomic<bool> ring_enabled_;

  /// Epoch as steady-clock nanoseconds. Atomic rather than guarded by mu_:
  /// NowMicros() runs on every span open/close and must not serialize
  /// against Record(); Clear() simply publishes a new epoch.
  std::atomic<int64_t> epoch_ns_;
  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ MAROON_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) on the global tracer when
/// tracing is enabled at construction. The name must outlive the span
/// (string literals always do).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_ = false;
};

/// Marks one task executed on behalf of a ThreadPool parallel section.
///
/// Spans on a pool helper thread would otherwise interleave with whatever
/// depth state the thread last held; on the caller strand they would nest
/// under the caller's open span and inherit its depth. This scope gives the
/// task a fresh per-thread root instead: the task span records at depth 0
/// with pool_worker set, spans opened inside it nest under that root, and on
/// destruction the thread's previous depth is restored exactly, so the
/// calling thread's span stack is never corrupted. Parallel call sites open
/// one at the top of each task lambda:
///
///   pool->ParallelFor(n, width, [&](int strand, size_t i) {
///     obs::PoolTaskScope task("pool.link_entity");
///     ...
///   });
class PoolTaskScope {
 public:
  /// `name` must outlive the scope (string literals always do).
  explicit PoolTaskScope(const char* name);
  ~PoolTaskScope();

  PoolTaskScope(const PoolTaskScope&) = delete;
  PoolTaskScope& operator=(const PoolTaskScope&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  int saved_depth_ = 0;
  bool saved_worker_ = false;
  bool active_ = false;
};

}  // namespace obs
}  // namespace maroon

#define MAROON_TRACE_CONCAT_INNER(a, b) a##b
#define MAROON_TRACE_CONCAT(a, b) MAROON_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope:
/// `MAROON_TRACE_SPAN("phase1.partition");`
#define MAROON_TRACE_SPAN(name)                                  \
  ::maroon::obs::Span MAROON_TRACE_CONCAT(maroon_trace_span_,    \
                                          __LINE__)(name)

#endif  // MAROON_OBS_TRACE_H_
