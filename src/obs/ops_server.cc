#include "obs/ops_server.h"

#include <chrono>

#include "common/thread_pool.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace maroon {
namespace obs {

namespace {

constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr char kJsonContentType[] = "application/json; charset=utf-8";

void WriteHealthJson(JsonWriter* w) {
  HealthRegistry& health = HealthRegistry::Global();
  w->Key("overall").String(HealthStateName(health.Overall()));
  w->Key("ready").Bool(health.ready());
  w->Key("components").BeginObject();
  for (const auto& [name, component] : health.Components()) {
    w->Key(name).BeginObject();
    w->Key("state").String(HealthStateName(component.state));
    w->Key("detail").String(component.detail);
    w->Key("age_s").Number(component.age_s);
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace

Result<std::unique_ptr<OpsServer>> OpsServer::Start(OpsServerOptions options) {
  RegisterBuildMetrics();
  std::unique_ptr<OpsServer> ops(new OpsServer(std::move(options)));
  auto server = net::HttpServer::Start(
      ops->options_.http,
      // The ops server outlives the HTTP server (it owns it and Stop()
      // joins every worker), so the raw pointer capture is safe.
      [raw = ops.get()](const net::HttpRequest& request) {
        return raw->Handle(request);
      });
  if (!server.ok()) return server.status();
  ops->server_ = std::move(server.value());
  return ops;
}

OpsServer::OpsServer(OpsServerOptions options)
    : options_(std::move(options)), started_at_(Iso8601UtcNow()) {}

OpsServer::~OpsServer() { Stop(); }

void OpsServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

net::HttpResponse OpsServer::Handle(const net::HttpRequest& request) const {
  MAROON_TRACE_SPAN("ops.request");
  if (request.path == "/metrics") return Metrics();
  if (request.path == "/varz") return Varz();
  if (request.path == "/healthz") return Healthz();
  if (request.path == "/readyz") return Readyz();
  if (request.path == "/statusz") return Statusz();
  if (request.path == "/tracez") return Tracez();
  if (request.path == "/") return Index();
  net::HttpResponse response;
  response.status = 404;
  response.body = "no route '" + request.path + "'; see / for the index\n";
  return response;
}

net::HttpResponse OpsServer::Metrics() const {
  static Counter* scrapes = MAROON_COUNTER("maroon.ops.scrapes");
  static LatencyHistogram* latency =
      MAROON_LATENCY("maroon.ops.scrape_seconds");
  const auto start = std::chrono::steady_clock::now();
  net::HttpResponse response;
  response.content_type = kPrometheusContentType;
  response.body = PrometheusTextFromGlobal();
  scrapes->Add(1);
  latency->Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return response;
}

net::HttpResponse OpsServer::Varz() const {
  net::HttpResponse response;
  response.content_type = kJsonContentType;
  response.body = MetricsRegistry::Global().SnapshotJson();
  return response;
}

net::HttpResponse OpsServer::Healthz() const {
  JsonWriter w;
  w.BeginObject();
  WriteHealthJson(&w);
  w.EndObject();
  net::HttpResponse response;
  // DEGRADED still serves 200: the process is doing useful work and a
  // restart would not improve it. Only a latched UNHEALTHY flips the probe.
  response.status =
      HealthRegistry::Global().Overall() == HealthState::kUnhealthy ? 503
                                                                    : 200;
  response.content_type = kJsonContentType;
  response.body = w.text();
  return response;
}

net::HttpResponse OpsServer::Readyz() const {
  HealthRegistry& health = HealthRegistry::Global();
  const bool ready =
      health.ready() && health.Overall() == HealthState::kOk;
  net::HttpResponse response;
  response.status = ready ? 200 : 503;
  response.body = ready ? "ready\n" : "not ready\n";
  return response;
}

net::HttpResponse OpsServer::Statusz() const {
  const net::HttpServerStats stats =
      server_ == nullptr ? net::HttpServerStats{} : server_->stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("version").String(BuildVersion());
  w.Key("revision").String(BuildRevision());
  w.Key("started_at").String(started_at_);
  w.Key("uptime_s").Number(ProcessUptimeSeconds());
  w.Key("threads").Int(ThreadPool::DefaultThreadCount());
  w.Key("config").BeginObject();
  for (const auto& [key, value] : options_.statusz_config) {
    w.Key(key).String(value);
  }
  w.EndObject();
  w.Key("http").BeginObject();
  w.Key("accepted").Int(stats.accepted);
  w.Key("served").Int(stats.served);
  w.Key("rejected_overload").Int(stats.rejected_overload);
  w.Key("timeouts").Int(stats.timeouts);
  w.Key("bad_requests").Int(stats.bad_requests);
  w.EndObject();
  WriteHealthJson(&w);
  w.EndObject();
  net::HttpResponse response;
  response.content_type = kJsonContentType;
  response.body = w.text();
  return response;
}

net::HttpResponse OpsServer::Tracez() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("ring_enabled").Bool(Tracer::RingEnabled());
  w.Key("span_count").Int(static_cast<int64_t>(Tracer::RingSpanCount()));
  w.Key("capacity").Int(static_cast<int64_t>(Tracer::kRingCapacity));
  w.Key("spans").BeginArray();
  for (const SpanRecord& span : Tracer::RingSnapshot()) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("start_us").Number(span.start_us);
    w.Key("duration_us").Number(span.duration_us);
    w.Key("tid").Int(span.tid);
    w.Key("depth").Int(span.depth);
    w.Key("pool_worker").Bool(span.pool_worker);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  net::HttpResponse response;
  response.content_type = kJsonContentType;
  response.body = w.text();
  return response;
}

net::HttpResponse OpsServer::Index() const {
  net::HttpResponse response;
  response.body =
      "maroon ops plane\n"
      "  /metrics   Prometheus 0.0.4 exposition\n"
      "  /varz      metrics snapshot as JSON\n"
      "  /healthz   component health (503 when UNHEALTHY)\n"
      "  /readyz    readiness probe (503 until ready)\n"
      "  /statusz   build, uptime, config, server stats\n"
      "  /tracez    recent completed spans\n";
  return response;
}

}  // namespace obs
}  // namespace maroon
