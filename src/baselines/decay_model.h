#ifndef MAROON_BASELINES_DECAY_MODEL_H_
#define MAROON_BASELINES_DECAY_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "baselines/temporal_model.h"
#include "core/entity_profile.h"
#include "core/value.h"

namespace maroon {

/// The time-decay model of Li, Dong, Maurino & Srivastava (PVLDB 2011) — the
/// paper's ref. [18]; implemented as an additional comparison point.
///
/// Two curves per attribute:
///  - *disagreement decay* d⁻(A, Δt): the probability that an entity changes
///    its value of A within Δt time — learnt from the distribution of value
///    spell lengths (how long a value is held before it changes);
///  - *agreement decay* d⁺(A, Δt): the probability that two *different*
///    entities share the same value of A within Δt — learnt from cross-entity
///    value collisions.
class DecayModel final : public TemporalModel {
 public:
  DecayModel() = default;

  static DecayModel Train(const ProfileSet& profiles,
                          const std::vector<Attribute>& attributes);

  /// d⁻(A, Δt): fraction of observed value spells of length <= Δt (spells
  /// still open at the end of a profile are censored and only counted when
  /// longer than Δt). 0 for Δt <= 0; untrained attributes return 0.
  double DisagreementDecay(const Attribute& attribute, int64_t delta) const;

  /// d⁺(A, Δt): probability that two distinct training entities share a
  /// value of A within a window of Δt. Monotone non-decreasing in Δt.
  double AgreementDecay(const Attribute& attribute, int64_t delta) const;

  /// TemporalModel: probability that the history continues into the state —
  /// 1 - d⁻ at the elapsed gap when the state repeats the latest history
  /// value, d⁻ · (1 - d⁺) when it does not (a change happened, and the match
  /// is unlikely to be coincidental agreement).
  double StateProbability(const Attribute& attribute,
                          const TemporalSequence& history,
                          const ValueSet& state_values,
                          const Interval& state_interval) const override;

 private:
  struct SpellStats {
    /// spell length -> closed spell count (value changed after this long).
    std::map<int64_t, int64_t> closed;
    /// spell length -> censored spell count (profile ended, value may have
    /// lasted longer).
    std::map<int64_t, int64_t> censored;
  };
  struct AgreementStats {
    /// Δt -> number of cross-entity pairs sharing a value within Δt.
    std::map<int64_t, int64_t> shared;
    int64_t pair_count = 0;
  };

  std::map<Attribute, SpellStats> spells_;
  std::map<Attribute, AgreementStats> agreement_;
};

}  // namespace maroon

#endif  // MAROON_BASELINES_DECAY_MODEL_H_
