#include "baselines/decay_model.h"

#include <algorithm>
#include <limits>
#include <set>

namespace maroon {

namespace {

/// Merges adjacent intervals (next.begin == prev.end + 1 or overlapping)
/// into maximal spells.
std::vector<Interval> MergeAdjacent(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (!merged.empty() &&
        iv.begin <= merged.back().end + 1) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

/// Minimal time gap between any interval of `a` and any of `b`; 0 if any
/// pair overlaps.
int64_t MinGap(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const Interval& x : a) {
    for (const Interval& y : b) {
      if (x.Overlaps(y)) return 0;
      const int64_t gap = x.end < y.begin
                              ? static_cast<int64_t>(y.begin) - x.end
                              : static_cast<int64_t>(x.begin) - y.end;
      best = std::min(best, gap);
    }
  }
  return best;
}

constexpr size_t kMaxAgreementPairs = 50000;

}  // namespace

DecayModel DecayModel::Train(const ProfileSet& profiles,
                             const std::vector<Attribute>& attributes) {
  DecayModel model;
  for (const Attribute& attribute : attributes) {
    SpellStats& spells = model.spells_[attribute];

    // Per-entity value universes for the agreement pass.
    std::vector<std::map<Value, std::vector<Interval>>> entity_values;

    for (const EntityProfile& profile : profiles) {
      const TemporalSequence& seq = profile.sequence(attribute);
      if (seq.empty()) continue;

      std::map<Value, std::vector<Interval>> values;
      std::set<Value> universe;
      for (const Triple& tr : seq.triples()) {
        for (const Value& v : tr.values) universe.insert(v);
      }
      for (const Value& v : universe) {
        std::vector<Interval> merged = MergeAdjacent(seq.IntervalsOf(v));
        for (const Interval& spell : merged) {
          // A spell is closed iff the instant right after it is covered by
          // the sequence (the value demonstrably changed); otherwise the
          // observation is censored.
          const bool closed = !seq.ValuesAt(spell.end + 1).empty();
          auto& bucket = closed ? spells.closed : spells.censored;
          ++bucket[spell.Length()];
        }
        values[v] = std::move(merged);
      }
      entity_values.push_back(std::move(values));
    }

    // Agreement decay: deterministic stride sampling of entity pairs.
    AgreementStats& agreement = model.agreement_[attribute];
    const size_t n = entity_values.size();
    if (n >= 2) {
      size_t sampled = 0;
      for (size_t stride = 1; stride < n && sampled < kMaxAgreementPairs;
           ++stride) {
        for (size_t i = 0; i + stride < n && sampled < kMaxAgreementPairs;
             ++i) {
          const auto& a = entity_values[i];
          const auto& b = entity_values[i + stride];
          ++sampled;
          int64_t best = std::numeric_limits<int64_t>::max();
          for (const auto& [v, intervals_a] : a) {
            auto it = b.find(v);
            if (it == b.end()) continue;
            best = std::min(best, MinGap(intervals_a, it->second));
            if (best == 0) break;
          }
          if (best != std::numeric_limits<int64_t>::max()) {
            ++agreement.shared[best];
          }
        }
      }
      agreement.pair_count = static_cast<int64_t>(sampled);
    }
  }
  return model;
}

double DecayModel::DisagreementDecay(const Attribute& attribute,
                                     int64_t delta) const {
  if (delta <= 0) return 0.0;
  auto it = spells_.find(attribute);
  if (it == spells_.end()) return 0.0;
  const SpellStats& stats = it->second;
  int64_t changed_within = 0;   // closed spells of length <= Δt
  int64_t at_risk = 0;          // ... plus every spell longer than Δt
  for (const auto& [length, count] : stats.closed) {
    if (length <= delta) {
      changed_within += count;
    }
    at_risk += count;
  }
  for (const auto& [length, count] : stats.censored) {
    if (length > delta) at_risk += count;
  }
  // Censored spells of length <= Δt carry no information about change within
  // Δt and are excluded from the risk set.
  if (at_risk == 0) return 0.0;
  return static_cast<double>(changed_within) / static_cast<double>(at_risk);
}

double DecayModel::AgreementDecay(const Attribute& attribute,
                                  int64_t delta) const {
  auto it = agreement_.find(attribute);
  if (it == agreement_.end() || it->second.pair_count == 0) return 0.0;
  int64_t within = 0;
  for (const auto& [gap, count] : it->second.shared) {
    if (gap <= delta) within += count;
  }
  return static_cast<double>(within) /
         static_cast<double>(it->second.pair_count);
}

double DecayModel::StateProbability(const Attribute& attribute,
                                    const TemporalSequence& history,
                                    const ValueSet& state_values,
                                    const Interval& state_interval) const {
  if (history.empty() || state_values.empty() || !state_interval.IsValid()) {
    return 0.0;
  }
  // The decay model reasons from the latest known state only (the paper's
  // critique of [18]: decisions based on a single time point).
  const Triple& latest = history.triples().back();
  const int64_t gap = std::max<int64_t>(
      0, static_cast<int64_t>(state_interval.begin) - latest.interval.end);
  const bool recurs =
      !ValueSetIntersection(latest.values, state_values).empty();
  const double d_minus = DisagreementDecay(attribute, std::max<int64_t>(gap, 1));
  if (recurs) return 1.0 - d_minus;
  const double d_plus = AgreementDecay(attribute, gap);
  return d_minus * (1.0 - d_plus);
}

}  // namespace maroon
