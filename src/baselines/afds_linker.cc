#include "baselines/afds_linker.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "clustering/partition_clusterer.h"

namespace maroon {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

AfdsLinker::AfdsLinker(const SimilarityCalculator* similarity,
                       const TemporalModel* temporal_model,
                       std::vector<Attribute> schema_attributes,
                       AfdsOptions options)
    : similarity_(similarity),
      temporal_model_(temporal_model),
      schema_attributes_(std::move(schema_attributes)),
      options_(options) {}

double AfdsLinker::EvolutionScore(const Cluster& earlier,
                                  const Cluster& later) const {
  // Phase B: can the entity in `earlier`'s state evolve into `later`'s
  // state? Each shared attribute contributes its value similarity weighted
  // by the temporal-model probability of the transition.
  const auto earlier_state = earlier.MajorityState();
  const auto later_state = later.MajorityState();
  const Interval later_interval(later.tmin(), later.tmax());

  double weighted = 0.0;
  double weight_total = 0.0;
  for (const auto& [attribute, earlier_values] : earlier_state) {
    auto it = later_state.find(attribute);
    if (it == later_state.end()) continue;
    // The earlier state as a one-triple history for the temporal model.
    TemporalSequence history;
    if (!history
             .Append(Triple(Interval(earlier.tmin(), earlier.tmax()),
                            earlier_values))
             .ok()) {
      continue;
    }
    const double weight = temporal_model_->StateProbability(
        attribute, history, it->second, later_interval);
    const double sim =
        similarity_->ValueSetSimilarity(earlier_values, it->second);
    // A high transition probability lets dissimilar states merge; a low one
    // requires near-identical values.
    weighted += std::max(sim, weight);
    weight_total += 1.0;
  }
  return weight_total > 0.0 ? weighted / weight_total : 0.0;
}

std::vector<Cluster> AfdsLinker::ClusterRecords(
    const std::vector<const TemporalRecord*>& records) const {
  // Phase A: static value-similarity clustering (time-agnostic).
  PartitionClusterer partitioner(similarity_,
                                 PartitionOptions{options_.static_threshold});
  std::vector<Cluster> clusters = partitioner.ClusterRecords(records);

  // Phase B: merge clusters whose states an entity could evolve between.
  // Clusters ordered by start time; each later cluster is tested against the
  // earlier ones and merged into the best-evolving predecessor.
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              if (a.tmin() != b.tmin()) return a.tmin() < b.tmin();
              return a.tmax() < b.tmax();
            });
  std::map<RecordId, const TemporalRecord*> by_id;
  for (const TemporalRecord* r : records) by_id[r->id()] = r;

  std::vector<Cluster> merged;
  for (Cluster& current : clusters) {
    double best_score = -1.0;
    size_t best_index = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      const double score = EvolutionScore(merged[i], current);
      if (score > best_score) {
        best_score = score;
        best_index = i;
      }
    }
    if (!merged.empty() && best_score >= options_.merge_threshold) {
      for (RecordId id : current.records()) {
        auto it = by_id.find(id);
        if (it != by_id.end()) merged[best_index].Add(*it->second);
      }
    } else {
      merged.push_back(std::move(current));
    }
  }
  return merged;
}

double AfdsLinker::LinkScore(const EntityProfile& profile,
                             const Cluster& cluster) const {
  const auto state = cluster.MajorityState();
  const Interval interval(cluster.tmin(), cluster.tmax());
  double weighted = 0.0;
  double weight_total = 0.0;
  for (const auto& [attribute, values] : state) {
    const TemporalSequence& seq = profile.sequence(attribute);
    if (seq.empty()) continue;
    double best_sim = 0.0;
    for (const Triple& tr : seq.triples()) {
      best_sim = std::max(
          best_sim, similarity_->ValueSetSimilarity(tr.values, values));
    }
    const double weight =
        temporal_model_->StateProbability(attribute, seq, values, interval);
    // Weighted attribute similarity: the temporal model reweights how much
    // exact value agreement matters for this attribute at this time gap.
    weighted += weight * best_sim + (1.0 - weight) * best_sim * best_sim;
    weight_total += 1.0;
  }
  return weight_total > 0.0 ? weighted / weight_total : 0.0;
}

AfdsResult AfdsLinker::Link(
    const EntityProfile& clean_profile,
    const std::vector<const TemporalRecord*>& records) const {
  AfdsResult result;

  auto start = std::chrono::steady_clock::now();
  std::vector<Cluster> clusters = ClusterRecords(records);
  result.num_clusters = clusters.size();
  result.phase1_seconds = SecondsSince(start);

  start = std::chrono::steady_clock::now();
  std::map<RecordId, const TemporalRecord*> by_id;
  for (const TemporalRecord* r : records) by_id[r->id()] = r;

  std::vector<const TemporalRecord*> matched;
  for (const Cluster& c : clusters) {
    if (LinkScore(clean_profile, c) < options_.link_threshold) continue;
    for (RecordId id : c.records()) {
      result.matched_records.push_back(id);
      auto it = by_id.find(id);
      if (it != by_id.end()) matched.push_back(it->second);
    }
  }
  std::sort(result.matched_records.begin(), result.matched_records.end());
  result.matched_records.erase(
      std::unique(result.matched_records.begin(),
                  result.matched_records.end()),
      result.matched_records.end());

  result.augmented_profile = BuildProfileFromRecords(clean_profile, matched);
  result.phase2_seconds = SecondsSince(start);
  return result;
}

EntityProfile BuildProfileFromRecords(
    const EntityProfile& base,
    std::vector<const TemporalRecord*> matched_records) {
  EntityProfile out = base;
  std::sort(matched_records.begin(), matched_records.end(),
            [](const TemporalRecord* a, const TemporalRecord* b) {
              if (a->timestamp() != b->timestamp()) {
                return a->timestamp() < b->timestamp();
              }
              return a->id() < b->id();
            });
  for (size_t i = 0; i < matched_records.size(); ++i) {
    const TemporalRecord* r = matched_records[i];
    // The record's values hold from its timestamp until just before the next
    // record (paper §5.5); the last record covers its own instant.
    TimePoint end = r->timestamp();
    if (i + 1 < matched_records.size()) {
      end = std::max<TimePoint>(r->timestamp(),
                                matched_records[i + 1]->timestamp() - 1);
    }
    for (const auto& [attribute, values] : r->values()) {
      (void)out.sequence(attribute)
          .Insert(Triple(Interval(r->timestamp(), end), values));
    }
  }
  out.Normalize();
  return out;
}

}  // namespace maroon
