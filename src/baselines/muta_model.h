#ifndef MAROON_BASELINES_MUTA_MODEL_H_
#define MAROON_BASELINES_MUTA_MODEL_H_

#include <cstdint>
#include <map>

#include "baselines/temporal_model.h"
#include "core/entity_profile.h"
#include "core/value.h"

namespace maroon {

/// The mutation model of Chiang, Doan & Naughton (SIGMOD 2014) — the paper's
/// ref. [5] and its headline baseline (MUTA).
///
/// For each attribute A, MUTA learns a *global* recurrence function
/// R_A(Δt): the probability that an attribute value recurs after Δt time,
/// aggregated over all values. Unlike MAROON's transition model it cannot
/// distinguish which value an entity transitions *to* — exactly the
/// limitation the paper's Example 1 (r5 vs r6) illustrates.
class MutaModel final : public TemporalModel {
 public:
  MutaModel() = default;

  /// Learns recurrence functions from clean profiles using the same Δt-pair
  /// counting as Algorithm 1, but aggregating only (recurrence, total).
  static MutaModel Train(const ProfileSet& profiles,
                         const std::vector<Attribute>& attributes);

  /// R_A(Δt): fraction of Δt-transitions whose value is unchanged.
  /// Δt == 0 returns 1; Δt beyond the learnt range clamps to the largest
  /// learnt Δt; untrained attributes return 0.
  double RecurrenceProbability(const Attribute& attribute,
                               int64_t delta) const;

  /// TemporalModel: value-agnostic state probability — the average, over the
  /// triples of `history` and the instant pairs with `state_interval`, of
  /// R_A(Δt) when the state repeats a history value, and 1 - R_A(Δt) when it
  /// does not. This is the "global recurrence" behaviour the paper contrasts
  /// against.
  double StateProbability(const Attribute& attribute,
                          const TemporalSequence& history,
                          const ValueSet& state_values,
                          const Interval& state_interval) const override;

  /// Largest Δt learnt for `attribute` (0 if untrained).
  int64_t MaxDelta(const Attribute& attribute) const;

 private:
  struct Counts {
    int64_t recur = 0;
    int64_t total = 0;
  };
  /// attribute -> Δt -> (recurrence count, total count).
  std::map<Attribute, std::map<int64_t, Counts>> counts_;
};

}  // namespace maroon

#endif  // MAROON_BASELINES_MUTA_MODEL_H_
