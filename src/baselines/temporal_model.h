#ifndef MAROON_BASELINES_TEMPORAL_MODEL_H_
#define MAROON_BASELINES_TEMPORAL_MODEL_H_

#include "core/temporal_sequence.h"
#include "core/time_types.h"
#include "core/value.h"
#include "transition/transition_model.h"

namespace maroon {

/// Common interface over temporal models (MAROON's transition model, the
/// MUTA mutation model, the time-decay model) as consumed by the AFDS-style
/// weighted-similarity linkage: the probability that an entity whose history
/// on attribute `A` is `history` exhibits state (`state_values`,
/// `state_interval`).
class TemporalModel {
 public:
  virtual ~TemporalModel() = default;

  virtual double StateProbability(const Attribute& attribute,
                                  const TemporalSequence& history,
                                  const ValueSet& state_values,
                                  const Interval& state_interval) const = 0;
};

/// Adapts MAROON's transition model (Eq. 14) to the TemporalModel interface.
class TransitionTemporalModel final : public TemporalModel {
 public:
  /// `model` must outlive this adapter.
  explicit TransitionTemporalModel(const TransitionModel* model)
      : model_(model) {}

  double StateProbability(const Attribute& attribute,
                          const TemporalSequence& history,
                          const ValueSet& state_values,
                          const Interval& state_interval) const override {
    return model_->SequenceToStateProbability(attribute, history, state_values,
                                              state_interval);
  }

 private:
  const TransitionModel* model_;
};

}  // namespace maroon

#endif  // MAROON_BASELINES_TEMPORAL_MODEL_H_
