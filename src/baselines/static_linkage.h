#ifndef MAROON_BASELINES_STATIC_LINKAGE_H_
#define MAROON_BASELINES_STATIC_LINKAGE_H_

#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// Options for the traditional (non-temporal) record-linkage baseline.
struct StaticLinkageOptions {
  /// Records at least this similar to the profile's value universe match.
  double match_threshold = 0.6;
};

/// Traditional record linkage, agnostic to the temporal dimension (paper
/// §1-§2): a record matches the entity iff its attribute values are similar
/// to the union of the values the profile ever held. Demonstrates the
/// failure mode of Example 1 — records describing *future* states (r5, r6)
/// are missed because their values differ from the known history.
class StaticLinkage {
 public:
  /// `similarity` must outlive this object.
  StaticLinkage(const SimilarityCalculator* similarity,
                StaticLinkageOptions options = {})
      : similarity_(similarity), options_(options) {}

  /// Similarity of `record` to the profile's per-attribute value universe:
  /// mean over the record's attributes of the value-set similarity against
  /// the union of all values the profile ever held on that attribute.
  double Similarity(const EntityProfile& profile,
                    const TemporalRecord& record) const;

  /// Record ids from `candidates` whose similarity reaches the threshold.
  std::vector<RecordId> Link(
      const EntityProfile& profile,
      const std::vector<const TemporalRecord*>& candidates) const;

  const StaticLinkageOptions& options() const { return options_; }

 private:
  const SimilarityCalculator* similarity_;
  StaticLinkageOptions options_;
};

}  // namespace maroon

#endif  // MAROON_BASELINES_STATIC_LINKAGE_H_
