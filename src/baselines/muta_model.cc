#include "baselines/muta_model.h"

#include <algorithm>

#include "common/logging.h"

namespace maroon {

MutaModel MutaModel::Train(const ProfileSet& profiles,
                           const std::vector<Attribute>& attributes) {
  MutaModel model;
  for (const Attribute& attribute : attributes) {
    auto& per_delta = model.counts_[attribute];
    for (const EntityProfile& profile : profiles) {
      const TemporalSequence& seq = profile.sequence(attribute);
      const std::vector<Triple>& triples = seq.triples();
      for (size_t i = 0; i < triples.size(); ++i) {
        const Interval& first = triples[i].interval;
        for (size_t j = i; j < triples.size(); ++j) {
          const Interval& second = triples[j].interval;
          const int64_t delta_min = std::max<int64_t>(
              1, static_cast<int64_t>(second.begin) - first.end);
          const int64_t delta_max =
              static_cast<int64_t>(second.end) - first.begin;
          for (int64_t delta = delta_min; delta <= delta_max; ++delta) {
            const int64_t lo = std::max<int64_t>(
                first.begin, static_cast<int64_t>(second.begin) - delta);
            const int64_t hi = std::min<int64_t>(
                first.end, static_cast<int64_t>(second.end) - delta);
            const int64_t occurrences = hi - lo + 1;
            if (occurrences <= 0) continue;
            Counts& c = per_delta[delta];
            for (const Value& v : triples[i].values) {
              for (const Value& w : triples[j].values) {
                c.total += occurrences;
                if (v == w) c.recur += occurrences;
              }
            }
          }
        }
      }
    }
  }
  return model;
}

double MutaModel::RecurrenceProbability(const Attribute& attribute,
                                        int64_t delta) const {
  MAROON_DCHECK(delta >= 0);
  if (delta == 0) return 1.0;
  auto attr_it = counts_.find(attribute);
  if (attr_it == counts_.end() || attr_it->second.empty()) return 0.0;
  const auto& per_delta = attr_it->second;
  // Clamp to the nearest learnt Δt at or below; else the smallest learnt Δt.
  auto it = per_delta.upper_bound(delta);
  const Counts& c = it != per_delta.begin() ? std::prev(it)->second
                                            : it->second;
  if (c.total == 0) return 0.0;
  return static_cast<double>(c.recur) / static_cast<double>(c.total);
}

double MutaModel::StateProbability(const Attribute& attribute,
                                   const TemporalSequence& history,
                                   const ValueSet& state_values,
                                   const Interval& state_interval) const {
  if (history.empty() || state_values.empty() || !state_interval.IsValid()) {
    return 0.0;
  }
  double total = 0.0;
  for (const Triple& tr : history.triples()) {
    // Does the state repeat a value from this history triple?
    const bool recurs =
        !ValueSetIntersection(tr.values, state_values).empty();
    // Average R_A over the instant-pair deltas of the two intervals.
    const Interval& a = tr.interval;
    const Interval& b = state_interval;
    double sum = 0.0;
    int64_t pairs = 0;
    for (TimePoint t = a.begin; t <= a.end; ++t) {
      for (TimePoint u = b.begin; u <= b.end; ++u) {
        const int64_t delta = t <= u ? u - t : t - u;
        const double r = RecurrenceProbability(attribute, delta);
        sum += recurs ? r : 1.0 - r;
        ++pairs;
      }
    }
    total += pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  }
  return total / static_cast<double>(history.size());
}

int64_t MutaModel::MaxDelta(const Attribute& attribute) const {
  auto it = counts_.find(attribute);
  if (it == counts_.end() || it->second.empty()) return 0;
  return it->second.rbegin()->first;
}

}  // namespace maroon
