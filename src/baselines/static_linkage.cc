#include "baselines/static_linkage.h"

namespace maroon {

double StaticLinkage::Similarity(const EntityProfile& profile,
                                 const TemporalRecord& record) const {
  double total = 0.0;
  size_t considered = 0;
  for (const auto& [attribute, values] : record.values()) {
    ++considered;
    const TemporalSequence& seq = profile.sequence(attribute);
    if (seq.empty()) continue;
    ValueSet universe;
    for (const Triple& tr : seq.triples()) {
      universe = ValueSetUnion(universe, tr.values);
    }
    total += similarity_->ValueSetSimilarity(universe, values);
  }
  return considered == 0 ? 0.0 : total / static_cast<double>(considered);
}

std::vector<RecordId> StaticLinkage::Link(
    const EntityProfile& profile,
    const std::vector<const TemporalRecord*>& candidates) const {
  std::vector<RecordId> matched;
  for (const TemporalRecord* r : candidates) {
    if (Similarity(profile, *r) >= options_.match_threshold) {
      matched.push_back(r->id());
    }
  }
  return matched;
}

}  // namespace maroon
