#ifndef MAROON_BASELINES_AFDS_LINKER_H_
#define MAROON_BASELINES_AFDS_LINKER_H_

#include <vector>

#include "baselines/temporal_model.h"
#include "clustering/cluster.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// Options for the AFDS baseline.
struct AfdsOptions {
  /// Phase-A static clustering threshold (records grouped by value
  /// similarity, time ignored).
  double static_threshold = 0.8;
  /// Phase-B merge threshold: an earlier cluster merges into a later one if
  /// the evolution-weighted similarity reaches this.
  double merge_threshold = 0.4;
  /// A cluster links to the target profile if its weighted attribute
  /// similarity with the profile reaches this.
  double link_threshold = 0.45;
};

/// The result of AFDS linkage for one target entity.
struct AfdsResult {
  std::vector<RecordId> matched_records;
  /// Profile built per the paper's §5.5 protocol: matched records sorted by
  /// time; each consecutive pair (r1, r2) contributes <r1.A, r1.t, r2.t - 1>,
  /// and the last record contributes its instant.
  EntityProfile augmented_profile;
  size_t num_clusters = 0;
  double phase1_seconds = 0.0;  // clustering
  double phase2_seconds = 0.0;  // linkage
};

/// The AFDS baseline — Chiang, Doan & Naughton (PVLDB 2014), the paper's
/// ref. [6]: a two-phase temporal clustering (static grouping, then
/// evolution-aware merging), followed by linking clusters to the target
/// profile via *weighted attribute similarity*, where the weights come from
/// a pluggable temporal model (MUTA for the paper's MUTA+AFDS combination,
/// or MAROON's transition model for the MAROON_TR configuration of Fig. 4).
///
/// AFDS is deliberately agnostic to source freshness: cluster intervals are
/// the raw min/max member timestamps — the failure mode MAROON's Phase I
/// fixes (paper §4.3.1).
class AfdsLinker {
 public:
  /// `similarity` and `temporal_model` must outlive this object.
  AfdsLinker(const SimilarityCalculator* similarity,
             const TemporalModel* temporal_model,
             std::vector<Attribute> schema_attributes,
             AfdsOptions options = {});

  /// Two-phase clustering of `records`.
  std::vector<Cluster> ClusterRecords(
      const std::vector<const TemporalRecord*>& records) const;

  /// Full pipeline: cluster, link to `clean_profile`, build the augmented
  /// profile from the matched records.
  AfdsResult Link(const EntityProfile& clean_profile,
                  const std::vector<const TemporalRecord*>& records) const;

  /// Weighted attribute similarity between the profile and a cluster:
  ///   Σ_A w_A · sim_A / Σ_A w_A over the cluster's attributes, with
  ///   w_A = temporal-model state probability and sim_A the best value-set
  ///   similarity against any profile triple.
  double LinkScore(const EntityProfile& profile, const Cluster& cluster) const;

  const AfdsOptions& options() const { return options_; }

 private:
  double EvolutionScore(const Cluster& earlier, const Cluster& later) const;

  const SimilarityCalculator* similarity_;
  const TemporalModel* temporal_model_;
  std::vector<Attribute> schema_attributes_;
  AfdsOptions options_;
};

/// Builds a temporal profile from matched records per the paper's §5.5 AFDS
/// protocol and merges it into `base` (returning the normalized result).
EntityProfile BuildProfileFromRecords(
    const EntityProfile& base,
    std::vector<const TemporalRecord*> matched_records);

}  // namespace maroon

#endif  // MAROON_BASELINES_AFDS_LINKER_H_
