#include "freshness/reliability_model.h"

#include <set>

namespace maroon {

void ReliabilityModel::AddObservation(SourceId source,
                                      const Attribute& attribute,
                                      bool correct) {
  Counts& c = counts_[{source, attribute}];
  ++c.total;
  if (correct) ++c.correct;
}

double ReliabilityModel::Reliability(SourceId source,
                                     const Attribute& attribute) const {
  auto it = counts_.find({source, attribute});
  if (it == counts_.end() || it->second.total == 0) {
    return options_.default_reliability;
  }
  const double alpha = options_.smoothing_alpha;
  return (static_cast<double>(it->second.correct) + alpha) /
         (static_cast<double>(it->second.total) + 2.0 * alpha);
}

double ReliabilityModel::ErrorRate(SourceId source,
                                   const Attribute& attribute) const {
  auto it = counts_.find({source, attribute});
  if (it == counts_.end() || it->second.total == 0) return 0.0;
  return 1.0 - static_cast<double>(it->second.correct) /
                   static_cast<double>(it->second.total);
}

int64_t ReliabilityModel::ObservationCount(SourceId source,
                                           const Attribute& attribute) const {
  auto it = counts_.find({source, attribute});
  return it != counts_.end() ? it->second.total : 0;
}

ReliabilityModel ReliabilityModel::Train(
    const Dataset& dataset, const std::vector<EntityId>& training_entities,
    ReliabilityModelOptions options) {
  ReliabilityModel model(options);
  std::set<EntityId> training(training_entities.begin(),
                              training_entities.end());
  for (const TemporalRecord& r : dataset.records()) {
    const EntityId& label = dataset.LabelOf(r.id());
    if (label.empty() || training.count(label) == 0) continue;
    auto target = dataset.target(label);
    if (!target.ok()) continue;
    const EntityProfile& profile = (*target)->ground_truth;
    for (const auto& [attribute, values] : r.values()) {
      const TemporalSequence& seq = profile.sequence(attribute);
      if (seq.empty()) continue;
      for (const Value& v : values) {
        // Genuine iff the value occurs anywhere in the true history; a stale
        // (but once-true) value is the freshness model's concern, not an
        // error.
        model.AddObservation(r.source(), attribute,
                             !seq.IntervalsOf(v).empty());
      }
    }
  }
  return model;
}

}  // namespace maroon
