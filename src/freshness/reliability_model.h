#ifndef MAROON_FRESHNESS_RELIABILITY_MODEL_H_
#define MAROON_FRESHNESS_RELIABILITY_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"

namespace maroon {

/// Options for the reliability model.
struct ReliabilityModelOptions {
  /// Reliability reported for a (source, attribute) with no training
  /// observations.
  double default_reliability = 1.0;
  /// Laplace smoothing: reliability = (correct + α) / (total + 2α).
  double smoothing_alpha = 1.0;
};

/// Per-source per-attribute publication reliability — the probability that a
/// published value is *genuine* (some state of the entity) rather than
/// erroneous.
///
/// The paper handles erroneous values by reference to Li et al. (KDD 2014,
/// its ref. [17]) and lists reliability as future work (§6); this model
/// implements that extension: a published value counts as an error when it
/// never occurs anywhere in the referred entity's true history (a stale
/// value is *not* an error — staleness is the freshness model's job).
///
/// `ClusterGeneratorOptions::use_source_reliability` weighs each source's
/// Eq. 11 confidence contribution by its reliability, lowering the impact of
/// noisy sources on matching decisions.
class ReliabilityModel {
 public:
  explicit ReliabilityModel(ReliabilityModelOptions options = {})
      : options_(options) {}

  /// Records one publication outcome for (source, attribute).
  void AddObservation(SourceId source, const Attribute& attribute,
                      bool correct);

  /// Smoothed probability that `source` publishes a genuine value of
  /// `attribute`.
  double Reliability(SourceId source, const Attribute& attribute) const;

  /// Raw error rate (errors / total); 0 when untrained.
  double ErrorRate(SourceId source, const Attribute& attribute) const;

  int64_t ObservationCount(SourceId source, const Attribute& attribute) const;

  /// Learns reliabilities from `dataset`: each record labelled with a
  /// training entity contributes one observation per published value —
  /// correct iff the value occurs somewhere in that entity's ground-truth
  /// sequence for the attribute.
  static ReliabilityModel Train(const Dataset& dataset,
                                const std::vector<EntityId>& training_entities,
                                ReliabilityModelOptions options = {});

 private:
  struct Counts {
    int64_t correct = 0;
    int64_t total = 0;
  };
  std::map<std::pair<SourceId, Attribute>, Counts> counts_;
  ReliabilityModelOptions options_;
};

}  // namespace maroon

#endif  // MAROON_FRESHNESS_RELIABILITY_MODEL_H_
