#ifndef MAROON_FRESHNESS_FRESHNESS_MODEL_H_
#define MAROON_FRESHNESS_FRESHNESS_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/temporal_sequence.h"
#include "core/value.h"

namespace maroon {

/// Eq. 9: the update delay η of value `v` published at instant `t`, relative
/// to the (assumed correct) profile sequence `seq`:
///   - 0 if `t` lies inside an interval during which `v` holds;
///   - t - t_max otherwise, where t_max is the latest instant before `t` at
///     which `v` holds;
///   - nullopt if `v` never occurs in `seq` at or before `t` (the paper only
///     defines delay for values present in the profile).
std::optional<int64_t> ComputeDelay(const TemporalSequence& seq, const Value& v,
                                    TimePoint t);

/// Options for the freshness model.
struct FreshnessModelOptions {
  /// When a (source, attribute) pair has no training observations, treat the
  /// source as perfectly fresh on that attribute (Delay(0)=1, else 0) if
  /// true; as completely unknown (all probabilities 0) if false.
  bool missing_data_is_fresh = true;

  /// Width (in time instants) of publication-time epochs for the
  /// time-varying extension (paper §6: "the freshness of a particular source
  /// can change over time"). 0 keeps a single distribution per
  /// (source, attribute); with W > 0, timestamped observations also feed an
  /// epoch-local distribution consulted by the timestamped Delay overload.
  int64_t epoch_width = 0;
  /// Epoch-local distributions with fewer observations than this fall back
  /// to the global distribution.
  int64_t min_epoch_observations = 10;
};

/// The paper's §4.2 source-quality model: for each source s and attribute A,
/// a distribution Delay(η, s, A) over update delays, learnt by comparing
/// published records against the true profiles of the entities they refer to.
class FreshnessModel {
 public:
  explicit FreshnessModel(FreshnessModelOptions options = {})
      : options_(options) {}

  /// Records one observed delay for (source, attribute).
  void AddObservation(SourceId source, const Attribute& attribute,
                      int64_t delay);

  /// Records one observed delay together with the record's publication
  /// instant; feeds both the global and (when epoch_width > 0) the
  /// epoch-local distribution.
  void AddObservation(SourceId source, const Attribute& attribute,
                      int64_t delay, TimePoint published_at);

  /// Normalizes the per-(source, attribute) counts into distributions.
  /// Must be called after the last AddObservation and before queries.
  void Finalize();

  /// Delay(η, s, A): the probability that source `s` publishes attribute `A`
  /// with delay exactly `η`.
  double Delay(int64_t eta, SourceId source, const Attribute& attribute) const;

  /// Time-varying Delay(η, s, A, t): uses the epoch containing
  /// `published_at` when it holds enough observations; falls back to the
  /// global distribution otherwise (identical to Delay(η, s, A) when
  /// epoch_width is 0).
  double Delay(int64_t eta, SourceId source, const Attribute& attribute,
               TimePoint published_at) const;

  /// Number of observations in the epoch containing `published_at`.
  int64_t EpochObservationCount(SourceId source, const Attribute& attribute,
                                TimePoint published_at) const;

  /// True iff Delay(0, s, A) > mu for every attribute in `attributes`
  /// (the paper's fresh-source predicate, §4.3.1).
  bool IsFresh(SourceId source, const std::vector<Attribute>& attributes,
               double mu) const;

  /// Mean Delay(0, s, A) over `attributes` — the "Freshness" column of the
  /// paper's Table 6.
  double FreshnessScore(SourceId source,
                        const std::vector<Attribute>& attributes) const;

  /// Number of observations recorded for (source, attribute).
  int64_t ObservationCount(SourceId source, const Attribute& attribute) const;

  /// Learns a freshness model from `dataset`: every record whose ground-truth
  /// label is in `training_entities` is compared against that entity's
  /// ground-truth profile via Eq. 9. `training_entities` must be target
  /// entities of the dataset; unknown ids are skipped.
  static FreshnessModel Train(const Dataset& dataset,
                              const std::vector<EntityId>& training_entities,
                              FreshnessModelOptions options = {});

  /// Serializes the learnt delay distributions (global and per-epoch) and
  /// scalar options to a versioned CSV text.
  std::string Serialize() const;

  /// Reconstructs a finalized model from Serialize() output.
  static Result<FreshnessModel> Deserialize(const std::string& text);

 private:
  struct Distribution {
    std::map<int64_t, int64_t> counts;
    std::map<int64_t, double> probabilities;
    int64_t total = 0;
  };

  int64_t EpochOf(TimePoint published_at) const;

  std::map<std::pair<SourceId, Attribute>, Distribution> distributions_;
  /// (source, attribute) -> epoch index -> distribution.
  std::map<std::pair<SourceId, Attribute>, std::map<int64_t, Distribution>>
      epoch_distributions_;
  FreshnessModelOptions options_;
  bool finalized_ = false;
};

}  // namespace maroon

#endif  // MAROON_FRESHNESS_FRESHNESS_MODEL_H_
