#include "freshness/freshness_model.h"

#include <algorithm>
#include <charconv>
#include <set>
#include <system_error>

#include "common/csv.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

std::optional<int64_t> ComputeDelay(const TemporalSequence& seq,
                                    const Value& v, TimePoint t) {
  bool occurs_at_t = false;
  for (const Interval& iv : seq.IntervalsOf(v)) {
    if (iv.Contains(t)) {
      occurs_at_t = true;
      break;
    }
  }
  if (occurs_at_t) return 0;
  std::optional<TimePoint> t_max =
      seq.LatestOccurrenceBefore(v, t, /*strictly_before=*/true);
  if (!t_max) return std::nullopt;
  return static_cast<int64_t>(t) - *t_max;
}

void FreshnessModel::AddObservation(SourceId source,
                                    const Attribute& attribute,
                                    int64_t delay) {
  MAROON_DCHECK(delay >= 0);
  finalized_ = false;
  Distribution& dist = distributions_[{source, attribute}];
  ++dist.counts[delay];
  ++dist.total;
}

void FreshnessModel::AddObservation(SourceId source,
                                    const Attribute& attribute, int64_t delay,
                                    TimePoint published_at) {
  AddObservation(source, attribute, delay);
  if (options_.epoch_width <= 0) return;
  Distribution& dist =
      epoch_distributions_[{source, attribute}][EpochOf(published_at)];
  ++dist.counts[delay];
  ++dist.total;
}

int64_t FreshnessModel::EpochOf(TimePoint published_at) const {
  MAROON_DCHECK(options_.epoch_width > 0);
  // Floor division that behaves for negative time points too.
  int64_t t = published_at;
  int64_t w = options_.epoch_width;
  return t >= 0 ? t / w : -((-t + w - 1) / w);
}

namespace {
void FinalizeDistribution(
    std::map<int64_t, int64_t>& counts,
    std::map<int64_t, double>& probabilities, int64_t total) {
  probabilities.clear();
  if (total == 0) return;
  for (const auto& [eta, count] : counts) {
    probabilities[eta] =
        static_cast<double>(count) / static_cast<double>(total);
  }
}
}  // namespace

void FreshnessModel::Finalize() {
  for (auto& [key, dist] : distributions_) {
    FinalizeDistribution(dist.counts, dist.probabilities, dist.total);
  }
  for (auto& [key, epochs] : epoch_distributions_) {
    for (auto& [epoch, dist] : epochs) {
      FinalizeDistribution(dist.counts, dist.probabilities, dist.total);
    }
  }
  finalized_ = true;
}

double FreshnessModel::Delay(int64_t eta, SourceId source,
                             const Attribute& attribute) const {
  MAROON_DCHECK(finalized_);
  auto it = distributions_.find({source, attribute});
  if (it == distributions_.end() || it->second.total == 0) {
    if (options_.missing_data_is_fresh) return eta == 0 ? 1.0 : 0.0;
    return 0.0;
  }
  auto p = it->second.probabilities.find(eta);
  return p != it->second.probabilities.end() ? p->second : 0.0;
}

double FreshnessModel::Delay(int64_t eta, SourceId source,
                             const Attribute& attribute,
                             TimePoint published_at) const {
  MAROON_DCHECK(finalized_);
  if (options_.epoch_width > 0) {
    auto it = epoch_distributions_.find({source, attribute});
    if (it != epoch_distributions_.end()) {
      auto epoch_it = it->second.find(EpochOf(published_at));
      if (epoch_it != it->second.end() &&
          epoch_it->second.total >= options_.min_epoch_observations) {
        auto p = epoch_it->second.probabilities.find(eta);
        return p != epoch_it->second.probabilities.end() ? p->second : 0.0;
      }
    }
  }
  return Delay(eta, source, attribute);
}

int64_t FreshnessModel::EpochObservationCount(SourceId source,
                                              const Attribute& attribute,
                                              TimePoint published_at) const {
  if (options_.epoch_width <= 0) return 0;
  auto it = epoch_distributions_.find({source, attribute});
  if (it == epoch_distributions_.end()) return 0;
  auto epoch_it = it->second.find(EpochOf(published_at));
  return epoch_it != it->second.end() ? epoch_it->second.total : 0;
}

bool FreshnessModel::IsFresh(SourceId source,
                             const std::vector<Attribute>& attributes,
                             double mu) const {
  for (const Attribute& a : attributes) {
    if (Delay(0, source, a) <= mu) return false;
  }
  return true;
}

double FreshnessModel::FreshnessScore(
    SourceId source, const std::vector<Attribute>& attributes) const {
  if (attributes.empty()) return 0.0;
  double total = 0.0;
  for (const Attribute& a : attributes) total += Delay(0, source, a);
  return total / static_cast<double>(attributes.size());
}

int64_t FreshnessModel::ObservationCount(SourceId source,
                                         const Attribute& attribute) const {
  auto it = distributions_.find({source, attribute});
  return it != distributions_.end() ? it->second.total : 0;
}

FreshnessModel FreshnessModel::Train(
    const Dataset& dataset, const std::vector<EntityId>& training_entities,
    FreshnessModelOptions options) {
  MAROON_TRACE_SPAN("freshness.train");
  FreshnessModel model(options);
  int64_t observations = 0;
  std::set<EntityId> training(training_entities.begin(),
                              training_entities.end());
  for (const TemporalRecord& r : dataset.records()) {
    const EntityId& label = dataset.LabelOf(r.id());
    if (label.empty() || training.count(label) == 0) continue;
    auto target = dataset.target(label);
    if (!target.ok()) continue;
    const EntityProfile& profile = (*target)->ground_truth;
    for (const auto& [attribute, values] : r.values()) {
      const TemporalSequence& seq = profile.sequence(attribute);
      if (seq.empty()) continue;
      for (const Value& v : values) {
        std::optional<int64_t> delay = ComputeDelay(seq, v, r.timestamp());
        if (delay) {
          ++observations;
          model.AddObservation(r.source(), attribute, *delay, r.timestamp());
        }
      }
    }
  }
  model.Finalize();
  MAROON_COUNTER("maroon.freshness.observations")->Add(observations);
  MAROON_COUNTER("maroon.freshness.distributions")
      ->Add(static_cast<int64_t>(model.distributions_.size()));
  // Per-source delay summaries: mean delay and the zero-delay (perfectly
  // fresh) share, aggregated across attributes.
  std::map<SourceId, std::pair<int64_t, int64_t>> per_source;  // {sum, total}
  std::map<SourceId, int64_t> zero_delay;
  for (const auto& [key, dist] : model.distributions_) {
    auto& [sum, total] = per_source[key.first];
    for (const auto& [eta, count] : dist.counts) {
      sum += eta * count;
      if (eta == 0) zero_delay[key.first] += count;
    }
    total += dist.total;
  }
  for (const auto& [source, stats] : per_source) {
    if (stats.second == 0) continue;
    const std::string prefix =
        "maroon.freshness.source" + std::to_string(source);
    MAROON_GAUGE(prefix + ".mean_delay")
        ->Set(static_cast<double>(stats.first) /
              static_cast<double>(stats.second));
    MAROON_GAUGE(prefix + ".zero_delay_share")
        ->Set(static_cast<double>(zero_delay[source]) /
              static_cast<double>(stats.second));
  }
  return model;
}

namespace {

Status ParseFreshnessInt(const std::string& cell, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), *out);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    return Status::InvalidArgument("cannot parse integer '" + cell + "'");
  }
  return Status::OK();
}

constexpr char kFreshnessFormat[] = "maroon_freshness_model_v1";

}  // namespace

std::string FreshnessModel::Serialize() const {
  CsvWriter writer;
  writer.AppendRow({"format", kFreshnessFormat});
  writer.AppendRow({"option", "missing_data_is_fresh",
                    options_.missing_data_is_fresh ? "1" : "0"});
  writer.AppendRow({"option", "epoch_width",
                    std::to_string(options_.epoch_width)});
  writer.AppendRow({"option", "min_epoch_observations",
                    std::to_string(options_.min_epoch_observations)});
  for (const auto& [key, dist] : distributions_) {
    for (const auto& [eta, count] : dist.counts) {
      writer.AppendRow({"delay", std::to_string(key.first), key.second,
                        std::to_string(eta), std::to_string(count)});
    }
  }
  for (const auto& [key, epochs] : epoch_distributions_) {
    for (const auto& [epoch, dist] : epochs) {
      for (const auto& [eta, count] : dist.counts) {
        writer.AppendRow({"epoch_delay", std::to_string(key.first),
                          key.second, std::to_string(epoch),
                          std::to_string(eta), std::to_string(count)});
      }
    }
  }
  return writer.text();
}

Result<FreshnessModel> FreshnessModel::Deserialize(const std::string& text) {
  MAROON_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "format" ||
      rows[0][1] != kFreshnessFormat) {
    return Status::InvalidArgument(
        "not a serialized freshness model (missing format header)");
  }
  FreshnessModel model;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    if (kind == "option") {
      if (row.size() != 3) {
        return Status::InvalidArgument("malformed option row " +
                                       std::to_string(i));
      }
      int64_t value = 0;
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[2], &value));
      if (row[1] == "missing_data_is_fresh") {
        model.options_.missing_data_is_fresh = value != 0;
      } else if (row[1] == "epoch_width") {
        model.options_.epoch_width = value;
      } else if (row[1] == "min_epoch_observations") {
        model.options_.min_epoch_observations = value;
      }
    } else if (kind == "delay") {
      if (row.size() != 5) {
        return Status::InvalidArgument("malformed delay row " +
                                       std::to_string(i));
      }
      int64_t source = 0, eta = 0, count = 0;
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[1], &source));
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[3], &eta));
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[4], &count));
      Distribution& dist =
          model.distributions_[{static_cast<SourceId>(source), row[2]}];
      dist.counts[eta] += count;
      dist.total += count;
    } else if (kind == "epoch_delay") {
      if (row.size() != 6) {
        return Status::InvalidArgument("malformed epoch_delay row " +
                                       std::to_string(i));
      }
      int64_t source = 0, epoch = 0, eta = 0, count = 0;
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[1], &source));
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[3], &epoch));
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[4], &eta));
      MAROON_RETURN_IF_ERROR(ParseFreshnessInt(row[5], &count));
      Distribution& dist =
          model.epoch_distributions_[{static_cast<SourceId>(source),
                                      row[2]}][epoch];
      dist.counts[eta] += count;
      dist.total += count;
    } else {
      return Status::InvalidArgument("unknown row kind '" + kind + "'");
    }
  }
  model.Finalize();
  return model;
}

}  // namespace maroon
