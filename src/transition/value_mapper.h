#ifndef MAROON_TRANSITION_VALUE_MAPPER_H_
#define MAROON_TRANSITION_VALUE_MAPPER_H_

#include <map>
#include <memory>
#include <string>

#include "core/value.h"

namespace maroon {

/// Maps raw attribute values to a coarser category before transition
/// counting (paper §4.1.2 Discussion: when attributes have too many distinct
/// values, map them to a more general category — industry instead of company
/// name, city instead of street address, buckets for numerical values — to
/// avoid overfitting the transition model).
class ValueMapper {
 public:
  virtual ~ValueMapper() = default;

  /// The generalized category of `value` for `attribute`.
  virtual Value Map(const Attribute& attribute, const Value& value) const = 0;
};

/// Passes every value through unchanged.
class IdentityValueMapper final : public ValueMapper {
 public:
  Value Map(const Attribute& /*attribute*/, const Value& value) const override {
    return value;
  }
};

/// Looks values up in per-attribute mapping tables; unmapped values pass
/// through unchanged (or map to a configured default category).
class TableValueMapper final : public ValueMapper {
 public:
  TableValueMapper() = default;

  /// Declares that `value` of `attribute` generalizes to `category`.
  void AddMapping(const Attribute& attribute, const Value& value,
                  const Value& category);

  /// Sets a fallback category for unmapped values of `attribute` (e.g.,
  /// "other"); without one, unmapped values pass through.
  void SetDefaultCategory(const Attribute& attribute, const Value& category);

  Value Map(const Attribute& attribute, const Value& value) const override;

  /// Number of explicit mappings for `attribute`.
  size_t NumMappings(const Attribute& attribute) const;

 private:
  std::map<Attribute, std::map<Value, Value>> tables_;
  std::map<Attribute, Value> defaults_;
};

}  // namespace maroon

#endif  // MAROON_TRANSITION_VALUE_MAPPER_H_
