#ifndef MAROON_TRANSITION_TRANSITION_TABLE_H_
#define MAROON_TRANSITION_TRANSITION_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/value.h"

namespace maroon {

/// The transition table T^A_Δt for one attribute and one Δt: a count per
/// observed (v, v') pair, where (v, v') is a Δt-transition (paper Def. 2 and
/// Algorithm 1). After building, call Finalize() to precompute the aggregates
/// needed by the probability equations (Eq. 1 and the smoothing cases 1-4).
class TransitionTable {
 public:
  TransitionTable() = default;

  /// Adds `count` occurrences of the transition (from -> to).
  void Add(const Value& from, const Value& to, int64_t count);

  /// Adds every entry of `other` into this table. Used to merge per-worker
  /// count shards after parallel training; integer addition commutes, so the
  /// merged table is identical to serially-built counts regardless of how
  /// transitions were sharded. Requires Finalize() afterwards.
  void MergeFrom(const TransitionTable& other);

  /// Precomputes row sums, column sums, totals, per-row minimum transition
  /// probabilities and the case-4 expected-change probability. Must be called
  /// after the last Add and before any probability query.
  void Finalize();

  /// T_Δt[(from, to)]; 0 if unseen.
  int64_t Count(const Value& from, const Value& to) const;

  /// Σ_x T[(from, x)] — denominator of Eq. 1.
  int64_t RowSum(const Value& from) const;

  /// Σ_v T[(v, to)] — numerator of Eq. 5.
  int64_t ColumnSum(const Value& to) const;

  /// Σ over all entries.
  int64_t Total() const { return total_; }

  /// Σ_v T[(v, v)] — numerator of Eq. 6 (recurrences).
  int64_t SelfTotal() const { return self_total_; }

  /// Σ_{v != v'} T[(v, v')] — denominator of Eq. 8.
  int64_t DiffTotal() const { return total_ - self_total_; }

  /// True iff `v` occurs as a first component (v ∈ V in the paper).
  bool HasOrigin(const Value& v) const { return rows_.count(v) > 0; }

  /// True iff `v` occurs as a second component (v ∈ V').
  bool HasDestination(const Value& v) const {
    return column_sums_.count(v) > 0;
  }

  /// Eq. 1: T[(from, to)] / RowSum(from); 0 if the row is empty.
  double ConditionalProbability(const Value& from, const Value& to) const;

  /// min over observed destinations x of ConditionalProbability(from, x)
  /// — the "minimum transition probability w.r.t. the value u" used by the
  /// smoothing cases 1 and 2 (Eq. 3-4). 0 if `from` has no row.
  double MinRowProbability(const Value& from) const;

  /// Eq. 5: ColumnSum(to) / Total; 0 if the table is empty.
  double PriorProbability(const Value& to) const;

  /// Eq. 6: SelfTotal / Total; 0 if the table is empty.
  double RecurrenceProbability() const;

  /// Eq. 7-8: E(X) / DiffTotal with E(X) = Σ_{v != v'} Pr(v,v') T[(v,v')];
  /// 0 if no differing transition was observed.
  double ExpectedChangeProbability() const { return case4_diff_probability_; }

  /// Number of distinct (v, v') entries.
  size_t NumEntries() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// All entries as (from, to, count), ordered; for inspection and tests.
  std::vector<std::tuple<Value, Value, int64_t>> Entries() const;

  /// Process-unique id stamped at Finalize(), 0 before the first Finalize().
  /// The transition-probability cache keys entries on it, so re-finalizing a
  /// mutated table invalidates cached probabilities computed against it.
  uint64_t cache_salt() const { return cache_salt_; }

 private:
  // Deterministic ordering (std::map) keeps Entries() and debugging stable.
  std::map<Value, std::map<Value, int64_t>> rows_;
  std::map<Value, int64_t> row_sums_;
  std::map<Value, int64_t> column_sums_;
  std::map<Value, double> min_row_probability_;
  int64_t total_ = 0;
  int64_t self_total_ = 0;
  double case4_diff_probability_ = 0.0;
  size_t num_entries_ = 0;
  uint64_t cache_salt_ = 0;
  bool finalized_ = false;
};

}  // namespace maroon

#endif  // MAROON_TRANSITION_TRANSITION_TABLE_H_
