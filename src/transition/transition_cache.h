#ifndef MAROON_TRANSITION_TRANSITION_CACHE_H_
#define MAROON_TRANSITION_TRANSITION_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace maroon {

/// 128-bit fingerprint of one mapped value set: two independently seeded
/// FNV-1a hashes over the sequence of (value, frequent) elements. Element
/// order matters — callers fingerprint sets in their canonical (already
/// sorted) order, so equal sets always produce equal fingerprints.
struct SetFingerprint {
  uint64_t a = 0;
  uint64_t b = 0;
};

/// Accumulates a SetFingerprint one element at a time:
///
///   SetFingerprintBuilder fp;
///   for (const MappedValue& mv : mapped) fp.Add(mv.value, mv.frequent);
///   cache->Lookup(table->cache_salt(), fp.fingerprint(), to_fp, &p);
class SetFingerprintBuilder {
 public:
  void Add(std::string_view value, bool frequent);

  SetFingerprint fingerprint() const { return {a_, b_}; }

 private:
  // FNV-1a offset bases; the second stream is re-seeded so the two 64-bit
  // halves do not collide together.
  uint64_t a_ = 14695981039346656037ull;
  uint64_t b_ = 14695981039346656037ull ^ 0x5851f42d4c957f2dull;
};

/// A fixed-capacity, insert-only, lock-free memo table mapping
/// (table cache_salt, from fingerprint, to fingerprint) -> probability.
///
/// Eq. 13's interval probability evaluates the same Eq. 12 set probability
/// for every Δt that resolves (via Eq. 2 clamping) to the same transition
/// table, and Eq. 14 repeats whole interval computations across candidate
/// records; this cache collapses those repeats. Keys are order-dependent
/// ((from, to) and (to, from) are distinct entries, as Eq. 12 requires) and
/// carry the table's process-unique cache_salt, so entries can never alias
/// across tables or across re-finalized generations of one table.
///
/// Concurrency: slots hold two atomic key words and an atomic value word.
/// Writers claim a slot by CAS on the first key word, then publish the
/// second key and the value with release stores; readers probe with acquire
/// loads and treat half-written slots as misses (acquire/release ordering is
/// load-bearing here — see docs/threading-model.md for the inventory of
/// lock-free structures and their ordering contracts). Duplicate inserts of the
/// same key are benign — the computed value is deterministic. Entries that
/// do not find a free slot within the probe window are silently dropped
/// (the cache is an accelerator, never a source of truth).
///
/// Correctness caveat: hits are exact modulo a 128-bit fingerprint
/// collision between two *different* value sets queried against the same
/// table — negligible for any realistic workload, and the trade is
/// documented in TransitionModelOptions::cache_probabilities.
class TransitionProbabilityCache {
 public:
  /// Capacity is 2^capacity_log2 slots (24 bytes each); the default 2^16
  /// (~1.5 MiB) is far above the distinct-key population of the paper's
  /// corpora.
  explicit TransitionProbabilityCache(int capacity_log2 = 16);

  TransitionProbabilityCache(const TransitionProbabilityCache&) = delete;
  TransitionProbabilityCache& operator=(const TransitionProbabilityCache&) =
      delete;

  /// True and sets *value on a hit; false on a miss.
  bool Lookup(uint64_t salt, const SetFingerprint& from,
              const SetFingerprint& to, double* value) const;

  /// Publishes (salt, from, to) -> value; drops silently when the probe
  /// window is exhausted.
  void Put(uint64_t salt, const SetFingerprint& from,
           const SetFingerprint& to, double value);

  /// Occupied slots (approximate under concurrent inserts); for tests.
  size_t SizeForTest() const;

 private:
  struct Slot {
    std::atomic<uint64_t> k1{0};
    std::atomic<uint64_t> k2{0};
    std::atomic<uint64_t> value_bits{kEmptyValueBits};
  };

  /// Linear-probe window; beyond it the insert is dropped.
  static constexpr size_t kMaxProbe = 8;
  /// All-ones is a NaN payload no probability computation produces, so it
  /// can mark "value not yet published".
  static constexpr uint64_t kEmptyValueBits = ~0ull;

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
};

}  // namespace maroon

#endif  // MAROON_TRANSITION_TRANSITION_CACHE_H_
