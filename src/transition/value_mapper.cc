#include "transition/value_mapper.h"

namespace maroon {

void TableValueMapper::AddMapping(const Attribute& attribute,
                                  const Value& value, const Value& category) {
  tables_[attribute][value] = category;
}

void TableValueMapper::SetDefaultCategory(const Attribute& attribute,
                                          const Value& category) {
  defaults_[attribute] = category;
}

Value TableValueMapper::Map(const Attribute& attribute,
                            const Value& value) const {
  auto table_it = tables_.find(attribute);
  if (table_it != tables_.end()) {
    auto it = table_it->second.find(value);
    if (it != table_it->second.end()) return it->second;
  }
  auto default_it = defaults_.find(attribute);
  if (default_it != defaults_.end()) return default_it->second;
  return value;
}

size_t TableValueMapper::NumMappings(const Attribute& attribute) const {
  auto it = tables_.find(attribute);
  return it != tables_.end() ? it->second.size() : 0;
}

}  // namespace maroon
