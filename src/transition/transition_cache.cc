#include "transition/transition_cache.h"

#include <bit>

namespace maroon {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvByte(uint64_t h, uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

/// Order-dependent combine (boost-style golden-ratio mix), so swapping the
/// from/to fingerprints changes the key.
uint64_t Mix(uint64_t h, uint64_t x) {
  return h ^ (x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace

void SetFingerprintBuilder::Add(std::string_view value, bool frequent) {
  for (char c : value) {
    a_ = FnvByte(a_, static_cast<uint8_t>(c));
    b_ = FnvByte(b_, static_cast<uint8_t>(c));
  }
  // Element separator + the frequent flag; the separator keeps ("ab", "c")
  // and ("a", "bc") distinct.
  a_ = FnvByte(FnvByte(a_, 0xff), frequent ? 1 : 0);
  b_ = FnvByte(FnvByte(b_, 0xfe), frequent ? 1 : 0);
}

TransitionProbabilityCache::TransitionProbabilityCache(int capacity_log2) {
  const size_t capacity = size_t{1} << capacity_log2;
  slots_ = std::make_unique<Slot[]>(capacity);
  mask_ = capacity - 1;
}

namespace {

void MakeKeys(uint64_t salt, const SetFingerprint& from,
              const SetFingerprint& to, uint64_t* k1, uint64_t* k2) {
  *k1 = Mix(Mix(salt, from.a), to.a);
  *k2 = Mix(Mix(salt ^ 0x94d049bb133111ebull, from.b), to.b);
  // 0 marks an unclaimed slot, so keys must be nonzero.
  if (*k1 == 0) *k1 = 1;
  if (*k2 == 0) *k2 = 1;
}

}  // namespace

bool TransitionProbabilityCache::Lookup(uint64_t salt,
                                        const SetFingerprint& from,
                                        const SetFingerprint& to,
                                        double* value) const {
  uint64_t k1 = 0, k2 = 0;
  MakeKeys(salt, from, to, &k1, &k2);
  for (size_t probe = 0; probe < kMaxProbe; ++probe) {
    const Slot& slot = slots_[(k1 + probe) & mask_];
    const uint64_t seen_k1 = slot.k1.load(std::memory_order_acquire);
    if (seen_k1 == 0) return false;  // end of the occupied run
    if (seen_k1 != k1) continue;
    if (slot.k2.load(std::memory_order_acquire) != k2) continue;
    const uint64_t bits = slot.value_bits.load(std::memory_order_acquire);
    if (bits == kEmptyValueBits) return false;  // writer mid-publish
    *value = std::bit_cast<double>(bits);
    return true;
  }
  return false;
}

void TransitionProbabilityCache::Put(uint64_t salt,
                                     const SetFingerprint& from,
                                     const SetFingerprint& to,
                                     double value) {
  uint64_t k1 = 0, k2 = 0;
  MakeKeys(salt, from, to, &k1, &k2);
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  for (size_t probe = 0; probe < kMaxProbe; ++probe) {
    Slot& slot = slots_[(k1 + probe) & mask_];
    uint64_t expected = 0;
    if (slot.k1.compare_exchange_strong(expected, k1,
                                        std::memory_order_acq_rel)) {
      slot.k2.store(k2, std::memory_order_release);
      slot.value_bits.store(bits, std::memory_order_release);
      return;
    }
    if (expected == k1 &&
        slot.k2.load(std::memory_order_acquire) == k2) {
      // Already present (or a concurrent writer publishing the same
      // deterministic value); nothing to do.
      return;
    }
  }
  // Probe window exhausted: drop the entry.
}

size_t TransitionProbabilityCache::SizeForTest() const {
  size_t occupied = 0;
  for (size_t i = 0; i <= mask_; ++i) {
    if (slots_[i].k1.load(std::memory_order_acquire) != 0) ++occupied;
  }
  return occupied;
}

}  // namespace maroon
