#include "transition/transition_io.h"

#include <fstream>

#include "common/csv.h"
#include "common/string_util.h"

namespace maroon {

std::string TransitionTablesToCsv(const TransitionModel& model,
                                  const Attribute& attribute) {
  CsvWriter writer;
  writer.AppendRow({"attribute", "delta", "from", "to", "count",
                    "probability"});
  for (int64_t delta : model.DeltasFor(attribute)) {
    const TransitionTable* table = model.table(attribute, delta);
    if (table == nullptr) continue;
    for (const auto& [from, to, count] : table->Entries()) {
      writer.AppendRow({attribute, std::to_string(delta), from, to,
                        std::to_string(count),
                        FormatDouble(table->ConditionalProbability(from, to),
                                     6)});
    }
  }
  return writer.text();
}

Status WriteTransitionTablesCsv(const TransitionModel& model,
                                const Attribute& attribute,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << TransitionTablesToCsv(model, attribute);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace maroon
