#include "transition/transition_table.h"

#include <atomic>
#include <tuple>

#include "common/logging.h"

namespace maroon {

namespace {

/// Each Finalize() takes the next id; salts are unique across all tables in
/// the process, so a cache entry keyed on one can never alias another
/// table's (or a stale generation of the same table's) probabilities.
uint64_t NextCacheSalt() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void TransitionTable::Add(const Value& from, const Value& to, int64_t count) {
  MAROON_DCHECK(count > 0);
  finalized_ = false;
  rows_[from][to] += count;
}

void TransitionTable::MergeFrom(const TransitionTable& other) {
  finalized_ = false;
  for (const auto& [from, row] : other.rows_) {
    auto& dest = rows_[from];
    for (const auto& [to, count] : row) dest[to] += count;
  }
}

void TransitionTable::Finalize() {
  cache_salt_ = NextCacheSalt();
  row_sums_.clear();
  column_sums_.clear();
  min_row_probability_.clear();
  total_ = 0;
  self_total_ = 0;
  num_entries_ = 0;

  for (const auto& [from, row] : rows_) {
    int64_t row_sum = 0;
    for (const auto& [to, count] : row) {
      row_sum += count;
      column_sums_[to] += count;
      total_ += count;
      if (from == to) self_total_ += count;
      ++num_entries_;
    }
    row_sums_[from] = row_sum;
  }

  for (const auto& [from, row] : rows_) {
    const double row_sum = static_cast<double>(row_sums_[from]);
    double min_p = 1.0;
    for (const auto& [to, count] : row) {
      min_p = std::min(min_p, static_cast<double>(count) / row_sum);
    }
    min_row_probability_[from] = row.empty() ? 0.0 : min_p;
  }

  // Eq. 7-8: expected number of value-changing occurrences over their total.
  const int64_t diff_total = total_ - self_total_;
  if (diff_total > 0) {
    double expected = 0.0;
    for (const auto& [from, row] : rows_) {
      const double row_sum = static_cast<double>(row_sums_[from]);
      for (const auto& [to, count] : row) {
        if (from == to) continue;
        const double p = static_cast<double>(count) / row_sum;
        expected += p * static_cast<double>(count);
      }
    }
    case4_diff_probability_ = expected / static_cast<double>(diff_total);
  } else {
    case4_diff_probability_ = 0.0;
  }
  finalized_ = true;
}

int64_t TransitionTable::Count(const Value& from, const Value& to) const {
  auto row_it = rows_.find(from);
  if (row_it == rows_.end()) return 0;
  auto it = row_it->second.find(to);
  return it != row_it->second.end() ? it->second : 0;
}

int64_t TransitionTable::RowSum(const Value& from) const {
  MAROON_DCHECK(finalized_);
  auto it = row_sums_.find(from);
  return it != row_sums_.end() ? it->second : 0;
}

int64_t TransitionTable::ColumnSum(const Value& to) const {
  MAROON_DCHECK(finalized_);
  auto it = column_sums_.find(to);
  return it != column_sums_.end() ? it->second : 0;
}

double TransitionTable::ConditionalProbability(const Value& from,
                                               const Value& to) const {
  const int64_t row_sum = RowSum(from);
  if (row_sum == 0) return 0.0;
  return static_cast<double>(Count(from, to)) / static_cast<double>(row_sum);
}

double TransitionTable::MinRowProbability(const Value& from) const {
  MAROON_DCHECK(finalized_);
  auto it = min_row_probability_.find(from);
  return it != min_row_probability_.end() ? it->second : 0.0;
}

double TransitionTable::PriorProbability(const Value& to) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(ColumnSum(to)) / static_cast<double>(total_);
}

double TransitionTable::RecurrenceProbability() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(self_total_) / static_cast<double>(total_);
}

std::vector<std::tuple<Value, Value, int64_t>> TransitionTable::Entries()
    const {
  std::vector<std::tuple<Value, Value, int64_t>> out;
  out.reserve(num_entries_);
  for (const auto& [from, row] : rows_) {
    for (const auto& [to, count] : row) {
      out.emplace_back(from, to, count);
    }
  }
  return out;
}

}  // namespace maroon
