#ifndef MAROON_TRANSITION_JOINT_TRANSITION_MODEL_H_
#define MAROON_TRANSITION_JOINT_TRANSITION_MODEL_H_

#include <cstdint>
#include <string>

#include "core/entity_profile.h"
#include "transition/transition_model.h"

namespace maroon {

/// Models the *joint* evolution of a pair of attributes — the paper's §6
/// future-work item "the correlation of attributes can also be exploited to
/// develop more sophisticated temporal models".
///
/// Real careers change Organization and Title together (~80% of moves in
/// the Recruitment world), so
///   Pr(Org: a->a', Title: b->b', Δt)
/// is far from the independence product
///   Pr(a->a', Δt) · Pr(b->b', Δt).
///
/// Implementation: the two per-attribute sequences of each training profile
/// are zipped instant-by-instant into a compound state "a ⊗ b"; the ordinary
/// transition machinery (Algorithm 1 + Eq. 1-8) then runs over the compound
/// attribute. `CompareJointVsIndependent` quantifies the gain as held-out
/// log-likelihood.
class JointTransitionModel {
 public:
  JointTransitionModel() = default;

  /// Learns the joint model of (`first`, `second`) from `profiles`.
  /// Instants where either attribute is missing are skipped.
  static JointTransitionModel Train(const ProfileSet& profiles,
                                    const Attribute& first,
                                    const Attribute& second,
                                    TransitionModelOptions options = {});

  /// Pr((first_from, second_from) -> (first_to, second_to), Δt).
  double Probability(const Value& first_from, const Value& second_from,
                     const Value& first_to, const Value& second_to,
                     int64_t delta) const;

  /// The synthetic compound attribute name ("first⊗second").
  const Attribute& joint_attribute() const { return joint_attribute_; }
  const Attribute& first() const { return first_; }
  const Attribute& second() const { return second_; }

  /// The underlying transition model over compound states (for table
  /// inspection).
  const TransitionModel& model() const { return model_; }

  /// Builds the compound value encoding used internally.
  static Value Compose(const Value& first_value, const Value& second_value);

 private:
  Attribute first_;
  Attribute second_;
  Attribute joint_attribute_;
  TransitionModel model_;
};

/// Held-out comparison of the joint model against the independence product
/// of per-attribute marginals.
struct CorrelationReport {
  /// Mean log-probability per scored transition under the joint model.
  double joint_mean_log_likelihood = 0.0;
  /// Mean log-probability under independent marginals.
  double independent_mean_log_likelihood = 0.0;
  /// Number of (state, next-state) transitions scored.
  size_t transitions_scored = 0;

  double Gain() const {
    return joint_mean_log_likelihood - independent_mean_log_likelihood;
  }
};

/// Scores every consecutive joint-state transition in `held_out` under both
/// models. Probabilities are floored at `epsilon` before taking logs.
CorrelationReport CompareJointVsIndependent(const JointTransitionModel& joint,
                                            const TransitionModel& marginals,
                                            const ProfileSet& held_out,
                                            double epsilon = 1e-6);

}  // namespace maroon

#endif  // MAROON_TRANSITION_JOINT_TRANSITION_MODEL_H_
