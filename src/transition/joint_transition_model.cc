#include "transition/joint_transition_model.h"

#include <algorithm>
#include <cmath>

namespace maroon {

namespace {

/// Zips two sequences into a compound-state sequence over the instants where
/// both are defined. Multi-valued instants contribute the cross product.
TemporalSequence ZipSequences(const TemporalSequence& first,
                              const TemporalSequence& second) {
  TemporalSequence joint;
  if (first.empty() || second.empty()) return joint;
  const TimePoint lo = std::max(*first.EarliestTime(), *second.EarliestTime());
  const TimePoint hi = std::min(*first.LatestTime(), *second.LatestTime());
  for (TimePoint t = lo; t <= hi; ++t) {
    const ValueSet a = first.ValuesAt(t);
    const ValueSet b = second.ValuesAt(t);
    if (a.empty() || b.empty()) continue;
    std::vector<Value> compound;
    compound.reserve(a.size() * b.size());
    for (const Value& va : a) {
      for (const Value& vb : b) {
        compound.push_back(JointTransitionModel::Compose(va, vb));
      }
    }
    (void)joint.Insert(Triple(Interval(t, t), MakeValueSet(std::move(compound))));
  }
  joint.Normalize();
  return joint;
}

}  // namespace

Value JointTransitionModel::Compose(const Value& first_value,
                                    const Value& second_value) {
  return first_value + " \xE2\x8A\x97 " + second_value;  // " ⊗ "
}

JointTransitionModel JointTransitionModel::Train(
    const ProfileSet& profiles, const Attribute& first,
    const Attribute& second, TransitionModelOptions options) {
  JointTransitionModel joint;
  joint.first_ = first;
  joint.second_ = second;
  joint.joint_attribute_ = first + "\xE2\x8A\x97" + second;

  // The mapper (if any) applies to raw attribute values, not compound ones;
  // drop it for the compound model (generalize before composing instead).
  options.mapper = nullptr;

  ProfileSet compound_profiles;
  compound_profiles.reserve(profiles.size());
  for (const EntityProfile& p : profiles) {
    EntityProfile cp(p.id(), p.name());
    cp.sequence(joint.joint_attribute_) =
        ZipSequences(p.sequence(first), p.sequence(second));
    if (!cp.empty()) compound_profiles.push_back(std::move(cp));
  }
  joint.model_ = TransitionModel::Train(compound_profiles,
                                        {joint.joint_attribute_}, options);
  return joint;
}

double JointTransitionModel::Probability(const Value& first_from,
                                         const Value& second_from,
                                         const Value& first_to,
                                         const Value& second_to,
                                         int64_t delta) const {
  return model_.Probability(joint_attribute_, Compose(first_from, second_from),
                            Compose(first_to, second_to), delta);
}

CorrelationReport CompareJointVsIndependent(const JointTransitionModel& joint,
                                            const TransitionModel& marginals,
                                            const ProfileSet& held_out,
                                            double epsilon) {
  CorrelationReport report;
  double joint_sum = 0.0;
  double independent_sum = 0.0;

  for (const EntityProfile& profile : held_out) {
    const TemporalSequence& first = profile.sequence(joint.first());
    const TemporalSequence& second = profile.sequence(joint.second());
    if (first.empty() || second.empty()) continue;
    const TimePoint lo =
        std::max(*first.EarliestTime(), *second.EarliestTime());
    const TimePoint hi = std::min(*first.LatestTime(), *second.LatestTime());
    // Score year-over-year state transitions (Δt = 1) where all four values
    // are defined and single-valued for clarity.
    for (TimePoint t = lo; t + 1 <= hi; ++t) {
      const ValueSet a0 = first.ValuesAt(t);
      const ValueSet b0 = second.ValuesAt(t);
      const ValueSet a1 = first.ValuesAt(t + 1);
      const ValueSet b1 = second.ValuesAt(t + 1);
      if (a0.size() != 1 || b0.size() != 1 || a1.size() != 1 ||
          b1.size() != 1) {
        continue;
      }
      const double pj =
          std::max(epsilon, joint.Probability(a0[0], b0[0], a1[0], b1[0], 1));
      const double pa = std::max(
          epsilon, marginals.Probability(joint.first(), a0[0], a1[0], 1));
      const double pb = std::max(
          epsilon, marginals.Probability(joint.second(), b0[0], b1[0], 1));
      joint_sum += std::log(pj);
      independent_sum += std::log(pa) + std::log(pb);
      ++report.transitions_scored;
    }
  }
  if (report.transitions_scored > 0) {
    report.joint_mean_log_likelihood =
        joint_sum / static_cast<double>(report.transitions_scored);
    report.independent_mean_log_likelihood =
        independent_sum / static_cast<double>(report.transitions_scored);
  }
  return report;
}

}  // namespace maroon
