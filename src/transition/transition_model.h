#ifndef MAROON_TRANSITION_TRANSITION_MODEL_H_
#define MAROON_TRANSITION_TRANSITION_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/entity_profile.h"
#include "core/temporal_sequence.h"
#include "core/time_types.h"
#include "core/value.h"
#include "transition/transition_cache.h"
#include "transition/transition_table.h"
#include "transition/value_mapper.h"

namespace maroon {

/// Options controlling transition-model training and querying.
struct TransitionModelOptions {
  /// Values occurring on fewer than this many time instants in the training
  /// profiles are treated as unseen at query time, falling back to the
  /// general recurrence/change probabilities (paper §4.1.2 Discussion).
  int64_t min_value_frequency = 1;

  /// Eq. 13's literal double sum skips t = t' pairs. When true, those pairs
  /// contribute Pr(..., Δt=0) = 1 (Eq. 2) to the interval average instead.
  bool include_zero_delta_terms = false;

  /// Caps unseen-transition probabilities (smoothing cases 1, 2 and the
  /// case-4 change branch) at 1/(support + 1), where support is the origin
  /// row mass (cases 1-2) or the table's differing-transition mass (case 4).
  ///
  /// The literal Eq. 3-8 assign the row-minimum / expected-change
  /// probability, which degenerates to ~1.0 on sparse tables (a row with a
  /// single observed destination has minimum 1.0), making *unseen*
  /// transitions look certain on high-cardinality attributes such as
  /// organizations. The cap keeps "unseen transitions are rare" true while
  /// leaving dense-table behaviour close to the paper's. Disable for the
  /// literal formulas.
  bool cap_unseen_by_support = true;

  /// Memoizes Eq. 12 set probabilities in a lock-free cache keyed on the
  /// resolved transition table and the 128-bit fingerprints of the mapped
  /// value sets. Eq. 13-14 re-evaluate the same (table, from, to) triple for
  /// every Δt that clamps to the same table and for every repeated candidate
  /// state, so hits dominate on real corpora. Results are exact modulo a
  /// 128-bit fingerprint collision (cryptographically unlikely); disable for
  /// the literal recomputation path. Not serialized: the cache is a runtime
  /// accelerator, not model state.
  bool cache_probabilities = true;

  /// Optional value generalization applied before counting and querying;
  /// nullptr = identity.
  std::shared_ptr<const ValueMapper> mapper;
};

/// The paper's core contribution (§4.1): for each attribute A, a family of
/// transition tables T^A_Δt learnt from clean entity profiles, answering
///
///   Pr(v, v', Δt, A) — the probability that attribute A is v' given that it
///   was v at Δt time earlier (Eq. 1), with Δt clamping per Eq. 2 and the
///   four unseen-transition smoothing cases (Eq. 3-8).
///
/// Training uses the closed-form interval-pair counting of Lemma 1 /
/// Proposition 1 (Algorithm 1) rather than literally sliding a window.
class TransitionModel {
 public:
  TransitionModel() = default;

  /// Learns transition tables for each of `attributes` from `profiles`.
  /// Profiles are expected to be clean and canonical; non-canonical
  /// sequences are still consumed (each triple pair is processed by
  /// Proposition 1, which only requires b <= b').
  static TransitionModel Train(const ProfileSet& profiles,
                               const std::vector<Attribute>& attributes,
                               TransitionModelOptions options = {});

  /// Pr(v, v', Δt, A) per Eq. 1-8 with clamping per Eq. 2:
  /// Δt == 0 -> 1.0; Δt >= L -> probability at L-1. Returns 0 when the model
  /// has no data at all for the attribute. `delta` must be >= 0.
  double Probability(const Attribute& attribute, const Value& v,
                     const Value& v_next, int64_t delta) const;

  /// Eq. 12: mean over v' in `to` of the best transition from `from`.
  double SetProbability(const Attribute& attribute, const ValueSet& from,
                        const ValueSet& to, int64_t delta) const;

  /// Eq. 13: average transition probability over all ordered instant pairs
  /// drawn from `from_interval` x `to_interval` (closed form over deltas).
  double IntervalProbability(const Attribute& attribute, const ValueSet& from,
                             const ValueSet& to, const Interval& from_interval,
                             const Interval& to_interval) const;

  /// Eq. 14: transitPr — mean over the triples of `sequence` of the interval
  /// probability from that triple to the state (`to`, `to_interval`).
  /// Returns 0 for an empty sequence.
  double SequenceToStateProbability(const Attribute& attribute,
                                    const TemporalSequence& sequence,
                                    const ValueSet& to,
                                    const Interval& to_interval) const;

  /// The maximum lifespan L over the training sequences of `attribute`
  /// (0 if untrained).
  int64_t MaxLifespan(const Attribute& attribute) const;

  bool HasAttribute(const Attribute& attribute) const {
    return attributes_.count(attribute) > 0;
  }

  /// The table for (attribute, Δt), or nullptr if none was built.
  const TransitionTable* table(const Attribute& attribute,
                               int64_t delta) const;

  /// The Δt values with a table for `attribute`, ascending.
  std::vector<int64_t> DeltasFor(const Attribute& attribute) const;

  /// Instants-weighted frequency of (mapped) `value` in the training data.
  int64_t ValueFrequency(const Attribute& attribute, const Value& value) const;

  /// Serializes the learnt state (tables, value frequencies, lifespans, and
  /// scalar options) to a versioned CSV text. The value mapper is NOT
  /// serialized — tables already hold post-mapping values; pass the same
  /// mapper in `options` when deserializing so queries keep mapping inputs.
  std::string Serialize() const;

  /// Reconstructs a model from Serialize() output. Scalar options embedded
  /// in the text are restored; `options.mapper` (if any) is re-attached.
  static Result<TransitionModel> Deserialize(const std::string& text,
                                             TransitionModelOptions options = {});

  const TransitionModelOptions& options() const { return options_; }

 private:
  struct AttributeModel {
    std::map<int64_t, TransitionTable> tables;
    std::map<Value, int64_t> value_frequency;
    int64_t max_lifespan = 0;
  };

  /// A value mapped through the generalization with its low-frequency flag
  /// precomputed — the hot loops of Eq. 12-14 resolve each value once.
  struct MappedValue {
    Value value;
    bool frequent = false;
  };

  Value MapValue(const Attribute& attribute, const Value& value) const;

  /// Maps a whole set for `attribute` under `am` (parallel to the input;
  /// no dedup, preserving Eq. 12's |V'| semantics).
  std::vector<MappedValue> MapSet(const AttributeModel& am,
                                  const Attribute& attribute,
                                  const ValueSet& values) const;

  /// Eq. 1-8 given the already-resolved table and mapped values.
  double PairProbability(const TransitionTable& table, const MappedValue& from,
                         const MappedValue& to) const;

  /// Eq. 12 given resolved state.
  double SetProbabilityImpl(const TransitionTable* table,
                            const std::vector<MappedValue>& from,
                            const std::vector<MappedValue>& to) const;

  /// Fingerprints a mapped set in its canonical order (MapSet preserves the
  /// input ValueSet order, which is already sorted).
  static SetFingerprint FingerprintOf(const std::vector<MappedValue>& set);

  /// SetProbabilityImpl behind the probability cache (when enabled).
  /// `from_fp`/`to_fp` must be the fingerprints of `from`/`to` — callers
  /// compute them once per interval query and reuse them across deltas
  /// (backward Eq. 13 terms pass the same pair swapped).
  double CachedSetProbability(const TransitionTable* table,
                              const std::vector<MappedValue>& from,
                              const std::vector<MappedValue>& to,
                              const SetFingerprint& from_fp,
                              const SetFingerprint& to_fp) const;

  /// Clamps Δt per Eq. 2 and picks the nearest available table at or below
  /// it (or the smallest table above, if none below exists).
  const TransitionTable* ResolveTable(const AttributeModel& model,
                                      int64_t delta) const;

  std::map<Attribute, AttributeModel> attributes_;
  TransitionModelOptions options_;
  /// Shared so copies of a model reuse one memo table; nullptr when
  /// options_.cache_probabilities is false. The cache only ever stores
  /// deterministic recomputable values, so sharing across threads is safe.
  std::shared_ptr<TransitionProbabilityCache> cache_;
};

}  // namespace maroon

#endif  // MAROON_TRANSITION_TRANSITION_MODEL_H_
