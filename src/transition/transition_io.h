#ifndef MAROON_TRANSITION_TRANSITION_IO_H_
#define MAROON_TRANSITION_TRANSITION_IO_H_

#include <string>

#include "common/status.h"
#include "transition/transition_model.h"

namespace maroon {

/// Export of learnt transition tables for inspection and downstream
/// analysis (plotting Figure-3-style trends, auditing probabilities).
///
/// CSV schema, one row per table entry:
///   attribute,delta,from,to,count,probability
/// where probability is the Eq. 1 conditional for the entry.

/// Serializes every table of `attribute` to CSV text.
[[nodiscard]] std::string TransitionTablesToCsv(const TransitionModel& model,
                                                const Attribute& attribute);

/// Writes TransitionTablesToCsv to `path`.
Status WriteTransitionTablesCsv(const TransitionModel& model,
                                const Attribute& attribute,
                                const std::string& path);

}  // namespace maroon

#endif  // MAROON_TRANSITION_TRANSITION_IO_H_
