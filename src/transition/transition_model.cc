#include "transition/transition_model.h"

#include <algorithm>
#include <charconv>
#include <system_error>

#include "common/csv.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

namespace {

/// Applies the mapper to every value of `set` and re-canonicalizes (distinct
/// raw values may generalize to the same category).
ValueSet MapValueSet(const ValueMapper* mapper, const Attribute& attribute,
                     const ValueSet& set) {
  if (mapper == nullptr) return set;
  std::vector<Value> mapped;
  mapped.reserve(set.size());
  for (const Value& v : set) mapped.push_back(mapper->Map(attribute, v));
  return MakeValueSet(std::move(mapped));
}

/// One worker's private slice of the training counts for one attribute.
/// Sharding is exact: Δt-transition counting is integer addition, which
/// commutes, so merging shards in any grouping reproduces the serial counts
/// bit for bit (and Finalize derives all doubles from those integers).
struct TrainShard {
  std::map<int64_t, TransitionTable> tables;
  std::map<Value, int64_t> value_frequency;
  int64_t max_lifespan = 0;
  int64_t observations = 0;
};

/// Counts one profile's contribution for `attribute` into `shard`
/// (Algorithm 1 over every ordered triple pair via Proposition 1).
void CountProfileTransitions(const ValueMapper* mapper,
                             const Attribute& attribute,
                             const EntityProfile& profile, TrainShard* shard) {
  const TemporalSequence& seq = profile.sequence(attribute);
  if (seq.empty()) return;
  shard->max_lifespan = std::max(shard->max_lifespan, seq.Lifespan());

  // Value frequencies (instants-weighted) for the low-frequency fallback.
  for (const Triple& tr : seq.triples()) {
    const ValueSet mapped = MapValueSet(mapper, attribute, tr.values);
    for (const Value& v : mapped) {
      shard->value_frequency[v] += tr.interval.Length();
    }
  }

  // Algorithm 1: every ordered pair of triples (b <= b'), every valid Δt,
  // counted in closed form via Proposition 1.
  const std::vector<Triple>& triples = seq.triples();
  for (size_t i = 0; i < triples.size(); ++i) {
    const Interval& first = triples[i].interval;
    const ValueSet from = MapValueSet(mapper, attribute, triples[i].values);
    for (size_t j = i; j < triples.size(); ++j) {
      const Interval& second = triples[j].interval;
      MAROON_DCHECK(first.begin <= second.begin);
      const ValueSet to =
          (j == i) ? from : MapValueSet(mapper, attribute,
                                        triples[j].values);
      const int64_t delta_min = std::max<int64_t>(
          1, static_cast<int64_t>(second.begin) - first.end);
      const int64_t delta_max =
          static_cast<int64_t>(second.end) - first.begin;
      for (int64_t delta = delta_min; delta <= delta_max; ++delta) {
        // Proposition 1: number of instants x with x in [b, e] and
        // x + Δt in [b', e'].
        const int64_t lo = std::max<int64_t>(
            first.begin, static_cast<int64_t>(second.begin) - delta);
        const int64_t hi = std::min<int64_t>(
            first.end, static_cast<int64_t>(second.end) - delta);
        const int64_t occurrences = hi - lo + 1;
        if (occurrences <= 0) continue;
        ++shard->observations;
        TransitionTable& table = shard->tables[delta];
        for (const Value& v : from) {
          for (const Value& w : to) {
            table.Add(v, w, occurrences);
          }
        }
      }
    }
  }
}

}  // namespace

TransitionModel TransitionModel::Train(
    const ProfileSet& profiles, const std::vector<Attribute>& attributes,
    TransitionModelOptions options) {
  MAROON_TRACE_SPAN("transition.train");
  TransitionModel model;
  model.options_ = std::move(options);
  const ValueMapper* mapper = model.options_.mapper.get();
  int64_t observations = 0;

  const int width = ThreadPool::ResolveThreadCount(0);
  ThreadPool* pool = width > 1 ? ThreadPool::Shared(width) : nullptr;

  for (const Attribute& attribute : attributes) {
    AttributeModel& am = model.attributes_[attribute];

    std::vector<TrainShard> shards(pool != nullptr ? width : 1);
    if (pool == nullptr) {
      for (const EntityProfile& profile : profiles) {
        CountProfileTransitions(mapper, attribute, profile, &shards[0]);
      }
    } else {
      pool->ParallelFor(profiles.size(), width, [&](int strand, size_t i) {
        obs::PoolTaskScope task("pool.train_profile");
        CountProfileTransitions(mapper, attribute, profiles[i],
                                &shards[strand]);
      });
    }

    // Serial merge in strand order; see TrainShard on why this is exact.
    for (TrainShard& shard : shards) {
      am.max_lifespan = std::max(am.max_lifespan, shard.max_lifespan);
      for (const auto& [value, count] : shard.value_frequency) {
        am.value_frequency[value] += count;
      }
      for (auto& [delta, table] : shard.tables) {
        am.tables[delta].MergeFrom(table);
      }
      observations += shard.observations;
    }

    for (auto& [delta, table] : am.tables) table.Finalize();
    MAROON_COUNTER("maroon.transition.tables_built")
        ->Add(static_cast<int64_t>(am.tables.size()));
  }
  MAROON_COUNTER("maroon.transition.attributes_trained")
      ->Add(static_cast<int64_t>(attributes.size()));
  MAROON_COUNTER("maroon.transition.delta_observations")->Add(observations);
  if (model.options_.cache_probabilities) {
    model.cache_ = std::make_shared<TransitionProbabilityCache>();
  }
  return model;
}

Value TransitionModel::MapValue(const Attribute& attribute,
                                const Value& value) const {
  return options_.mapper ? options_.mapper->Map(attribute, value) : value;
}

const TransitionTable* TransitionModel::ResolveTable(
    const AttributeModel& model, int64_t delta) const {
  if (model.tables.empty()) return nullptr;
  // Eq. 2: Δt >= L uses the probability at L - 1.
  if (model.max_lifespan >= 2 && delta >= model.max_lifespan) {
    delta = model.max_lifespan - 1;
  }
  // Nearest table at or below `delta`; else the smallest one above.
  auto it = model.tables.upper_bound(delta);
  if (it != model.tables.begin()) return &std::prev(it)->second;
  return &it->second;
}

std::vector<TransitionModel::MappedValue> TransitionModel::MapSet(
    const AttributeModel& am, const Attribute& attribute,
    const ValueSet& values) const {
  std::vector<MappedValue> out;
  out.reserve(values.size());
  for (const Value& v : values) {
    MappedValue mv;
    mv.value = MapValue(attribute, v);
    auto it = am.value_frequency.find(mv.value);
    const int64_t frequency =
        it != am.value_frequency.end() ? it->second : 0;
    mv.frequent = frequency >= options_.min_value_frequency;
    out.push_back(std::move(mv));
  }
  return out;
}

double TransitionModel::PairProbability(const TransitionTable& table,
                                        const MappedValue& from,
                                        const MappedValue& to) const {
  const bool from_seen = from.frequent && table.HasOrigin(from.value);
  const bool to_seen = to.frequent && table.HasDestination(to.value);

  // Smoothing-case hit rates (Eq. 1 and Eq. 3-8): one relaxed atomic add per
  // lookup, dominated by the table probes above.
  static obs::Counter* hits_exact =
      MAROON_COUNTER("maroon.transition.case_exact");
  static obs::Counter* hits_case1 =
      MAROON_COUNTER("maroon.transition.case1_unseen_pair");
  static obs::Counter* hits_case2 =
      MAROON_COUNTER("maroon.transition.case2_unseen_destination");
  static obs::Counter* hits_case3 =
      MAROON_COUNTER("maroon.transition.case3_unseen_origin");
  static obs::Counter* hits_case4 =
      MAROON_COUNTER("maroon.transition.case4_both_unseen");

  // "Unseen transitions are rare": optionally bound smoothed probabilities
  // by the evidence mass that failed to produce the transition.
  const auto rare = [&](double probability, int64_t support) {
    if (!options_.cap_unseen_by_support) return probability;
    return std::min(probability,
                    1.0 / (static_cast<double>(support) + 1.0));
  };

  if (from_seen && to_seen) {
    const int64_t count = table.Count(from.value, to.value);
    if (count > 0) {
      hits_exact->Add();
      return table.ConditionalProbability(from.value, to.value);  // Eq. 1.
    }
    // Case 1 (Eq. 3).
    hits_case1->Add();
    return rare(table.MinRowProbability(from.value), table.RowSum(from.value));
  }
  if (from_seen) {
    // Case 2 (Eq. 4).
    hits_case2->Add();
    return rare(table.MinRowProbability(from.value), table.RowSum(from.value));
  }
  if (to_seen) {
    hits_case3->Add();
    return table.PriorProbability(to.value);  // Case 3 (Eq. 5).
  }
  // Case 4 (Eq. 6-8).
  hits_case4->Add();
  if (from.value == to.value) return table.RecurrenceProbability();
  return rare(table.ExpectedChangeProbability(), table.DiffTotal());
}

double TransitionModel::Probability(const Attribute& attribute, const Value& v,
                                    const Value& v_next, int64_t delta) const {
  MAROON_DCHECK(delta >= 0);
  if (delta == 0) return 1.0;  // Eq. 2.
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return 0.0;
  const AttributeModel& am = attr_it->second;
  const TransitionTable* table = ResolveTable(am, delta);
  if (table == nullptr || table->empty()) return 0.0;
  const std::vector<MappedValue> from = MapSet(am, attribute, {v});
  const std::vector<MappedValue> to = MapSet(am, attribute, {v_next});
  return PairProbability(*table, from[0], to[0]);
}

double TransitionModel::SetProbabilityImpl(
    const TransitionTable* table, const std::vector<MappedValue>& from,
    const std::vector<MappedValue>& to) const {
  if (to.empty() || from.empty()) return 0.0;
  if (table == nullptr || table->empty()) return 0.0;
  double total = 0.0;
  for (const MappedValue& w : to) {
    double best = 0.0;
    for (const MappedValue& v : from) {
      best = std::max(best, PairProbability(*table, v, w));
    }
    total += best;
  }
  return total / static_cast<double>(to.size());
}

SetFingerprint TransitionModel::FingerprintOf(
    const std::vector<MappedValue>& set) {
  SetFingerprintBuilder fp;
  for (const MappedValue& mv : set) fp.Add(mv.value, mv.frequent);
  return fp.fingerprint();
}

double TransitionModel::CachedSetProbability(
    const TransitionTable* table, const std::vector<MappedValue>& from,
    const std::vector<MappedValue>& to, const SetFingerprint& from_fp,
    const SetFingerprint& to_fp) const {
  if (cache_ == nullptr || table == nullptr || table->empty()) {
    return SetProbabilityImpl(table, from, to);
  }
  static obs::Counter* hits = MAROON_COUNTER("maroon.transition.cache_hits");
  static obs::Counter* misses =
      MAROON_COUNTER("maroon.transition.cache_misses");
  double value = 0.0;
  if (cache_->Lookup(table->cache_salt(), from_fp, to_fp, &value)) {
    hits->Add();
    return value;
  }
  misses->Add();
  value = SetProbabilityImpl(table, from, to);
  cache_->Put(table->cache_salt(), from_fp, to_fp, value);
  return value;
}

double TransitionModel::SetProbability(const Attribute& attribute,
                                       const ValueSet& from,
                                       const ValueSet& to,
                                       int64_t delta) const {
  if (to.empty() || from.empty()) return 0.0;
  MAROON_DCHECK(delta >= 0);
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return 0.0;
  const AttributeModel& am = attr_it->second;
  if (delta == 0) return 1.0;  // Eq. 2 lifts to sets: every max term is 1.
  const std::vector<MappedValue> mapped_from = MapSet(am, attribute, from);
  const std::vector<MappedValue> mapped_to = MapSet(am, attribute, to);
  if (cache_ == nullptr) {
    return SetProbabilityImpl(ResolveTable(am, delta), mapped_from, mapped_to);
  }
  return CachedSetProbability(ResolveTable(am, delta), mapped_from, mapped_to,
                              FingerprintOf(mapped_from),
                              FingerprintOf(mapped_to));
}

double TransitionModel::IntervalProbability(const Attribute& attribute,
                                            const ValueSet& from,
                                            const ValueSet& to,
                                            const Interval& from_interval,
                                            const Interval& to_interval) const {
  if (!from_interval.IsValid() || !to_interval.IsValid()) return 0.0;
  if (from.empty() || to.empty()) return 0.0;
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return 0.0;
  const AttributeModel& am = attr_it->second;
  // Resolve the attribute state once; the delta loops below only pick the
  // per-delta table. Fingerprints are likewise computed once and reused for
  // every delta (the backward terms swap them along with the sets).
  const std::vector<MappedValue> mapped_from = MapSet(am, attribute, from);
  const std::vector<MappedValue> mapped_to = MapSet(am, attribute, to);
  SetFingerprint from_fp, to_fp;
  if (cache_ != nullptr) {
    from_fp = FingerprintOf(mapped_from);
    to_fp = FingerprintOf(mapped_to);
  }

  const int64_t pair_count = from_interval.Length() * to_interval.Length();
  double total = 0.0;

  // Forward terms: t in from_interval, t' in to_interval, t' - t = d > 0.
  {
    const int64_t d_min = std::max<int64_t>(
        1, static_cast<int64_t>(to_interval.begin) - from_interval.end);
    const int64_t d_max =
        static_cast<int64_t>(to_interval.end) - from_interval.begin;
    for (int64_t d = d_min; d <= d_max; ++d) {
      const int64_t lo = std::max<int64_t>(
          from_interval.begin, static_cast<int64_t>(to_interval.begin) - d);
      const int64_t hi = std::min<int64_t>(
          from_interval.end, static_cast<int64_t>(to_interval.end) - d);
      const int64_t multiplicity = hi - lo + 1;
      if (multiplicity <= 0) continue;
      total += static_cast<double>(multiplicity) *
               CachedSetProbability(ResolveTable(am, d), mapped_from,
                                    mapped_to, from_fp, to_fp);
    }
  }
  // Backward terms: t' < t with gap g, contributing Pr(V', V, g) per Eq. 13.
  {
    const int64_t g_min = std::max<int64_t>(
        1, static_cast<int64_t>(from_interval.begin) - to_interval.end);
    const int64_t g_max =
        static_cast<int64_t>(from_interval.end) - to_interval.begin;
    for (int64_t g = g_min; g <= g_max; ++g) {
      const int64_t lo = std::max<int64_t>(
          to_interval.begin, static_cast<int64_t>(from_interval.begin) - g);
      const int64_t hi = std::min<int64_t>(
          to_interval.end, static_cast<int64_t>(from_interval.end) - g);
      const int64_t multiplicity = hi - lo + 1;
      if (multiplicity <= 0) continue;
      total += static_cast<double>(multiplicity) *
               CachedSetProbability(ResolveTable(am, g), mapped_to,
                                    mapped_from, to_fp, from_fp);
    }
  }
  if (options_.include_zero_delta_terms && from_interval.Overlaps(to_interval)) {
    // Eq. 2: Pr(..., 0) = 1 for each t = t' pair.
    total += static_cast<double>(
        from_interval.Intersect(to_interval).Length());
  }
  return total / static_cast<double>(pair_count);
}

double TransitionModel::SequenceToStateProbability(
    const Attribute& attribute, const TemporalSequence& sequence,
    const ValueSet& to, const Interval& to_interval) const {
  if (sequence.empty()) return 0.0;
  double total = 0.0;
  for (const Triple& tr : sequence.triples()) {
    total += IntervalProbability(attribute, tr.values, to, tr.interval,
                                 to_interval);
  }
  return total / static_cast<double>(sequence.size());
}

int64_t TransitionModel::MaxLifespan(const Attribute& attribute) const {
  auto it = attributes_.find(attribute);
  return it != attributes_.end() ? it->second.max_lifespan : 0;
}

const TransitionTable* TransitionModel::table(const Attribute& attribute,
                                              int64_t delta) const {
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return nullptr;
  auto it = attr_it->second.tables.find(delta);
  return it != attr_it->second.tables.end() ? &it->second : nullptr;
}

std::vector<int64_t> TransitionModel::DeltasFor(
    const Attribute& attribute) const {
  std::vector<int64_t> out;
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return out;
  out.reserve(attr_it->second.tables.size());
  for (const auto& [delta, table] : attr_it->second.tables) {
    out.push_back(delta);
  }
  return out;
}

int64_t TransitionModel::ValueFrequency(const Attribute& attribute,
                                        const Value& value) const {
  auto attr_it = attributes_.find(attribute);
  if (attr_it == attributes_.end()) return 0;
  const Value mapped = MapValue(attribute, value);
  auto it = attr_it->second.value_frequency.find(mapped);
  return it != attr_it->second.value_frequency.end() ? it->second : 0;
}

namespace {

Status ParseInt64(const std::string& cell, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), *out);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    return Status::InvalidArgument("cannot parse integer '" + cell + "'");
  }
  return Status::OK();
}

constexpr char kFormatVersion[] = "maroon_transition_model_v1";

}  // namespace

std::string TransitionModel::Serialize() const {
  CsvWriter writer;
  writer.AppendRow({"format", kFormatVersion});
  writer.AppendRow({"option", "min_value_frequency",
                    std::to_string(options_.min_value_frequency)});
  writer.AppendRow({"option", "include_zero_delta_terms",
                    options_.include_zero_delta_terms ? "1" : "0"});
  writer.AppendRow({"option", "cap_unseen_by_support",
                    options_.cap_unseen_by_support ? "1" : "0"});
  for (const auto& [attribute, am] : attributes_) {
    writer.AppendRow({"lifespan", attribute,
                      std::to_string(am.max_lifespan)});
    for (const auto& [value, count] : am.value_frequency) {
      writer.AppendRow({"frequency", attribute, value,
                        std::to_string(count)});
    }
    for (const auto& [delta, table] : am.tables) {
      for (const auto& [from, to, count] : table.Entries()) {
        writer.AppendRow({"entry", attribute, std::to_string(delta), from,
                          to, std::to_string(count)});
      }
    }
  }
  return writer.text();
}

Result<TransitionModel> TransitionModel::Deserialize(
    const std::string& text, TransitionModelOptions options) {
  MAROON_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "format" ||
      rows[0][1] != kFormatVersion) {
    return Status::InvalidArgument(
        "not a serialized transition model (missing format header)");
  }

  TransitionModel model;
  model.options_ = std::move(options);
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.empty()) continue;
    const std::string& kind = row[0];
    if (kind == "option") {
      if (row.size() != 3) {
        return Status::InvalidArgument("malformed option row " +
                                       std::to_string(i));
      }
      int64_t value = 0;
      MAROON_RETURN_IF_ERROR(ParseInt64(row[2], &value));
      if (row[1] == "min_value_frequency") {
        model.options_.min_value_frequency = value;
      } else if (row[1] == "include_zero_delta_terms") {
        model.options_.include_zero_delta_terms = value != 0;
      } else if (row[1] == "cap_unseen_by_support") {
        model.options_.cap_unseen_by_support = value != 0;
      }
      // Unknown options are ignored for forward compatibility.
    } else if (kind == "lifespan") {
      if (row.size() != 3) {
        return Status::InvalidArgument("malformed lifespan row " +
                                       std::to_string(i));
      }
      int64_t lifespan = 0;
      MAROON_RETURN_IF_ERROR(ParseInt64(row[2], &lifespan));
      model.attributes_[row[1]].max_lifespan = lifespan;
    } else if (kind == "frequency") {
      if (row.size() != 4) {
        return Status::InvalidArgument("malformed frequency row " +
                                       std::to_string(i));
      }
      int64_t count = 0;
      MAROON_RETURN_IF_ERROR(ParseInt64(row[3], &count));
      model.attributes_[row[1]].value_frequency[row[2]] = count;
    } else if (kind == "entry") {
      if (row.size() != 6) {
        return Status::InvalidArgument("malformed entry row " +
                                       std::to_string(i));
      }
      int64_t delta = 0, count = 0;
      MAROON_RETURN_IF_ERROR(ParseInt64(row[2], &delta));
      MAROON_RETURN_IF_ERROR(ParseInt64(row[5], &count));
      if (count <= 0) {
        return Status::InvalidArgument("non-positive count in row " +
                                       std::to_string(i));
      }
      model.attributes_[row[1]].tables[delta].Add(row[3], row[4], count);
    } else {
      return Status::InvalidArgument("unknown row kind '" + kind + "'");
    }
  }
  for (auto& [attribute, am] : model.attributes_) {
    for (auto& [delta, table] : am.tables) table.Finalize();
  }
  if (model.options_.cache_probabilities) {
    model.cache_ = std::make_shared<TransitionProbabilityCache>();
  }
  return model;
}

}  // namespace maroon
