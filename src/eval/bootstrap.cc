#include "eval/bootstrap.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace maroon {

namespace {
double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}
}  // namespace

BootstrapInterval BootstrapMeanInterval(const std::vector<double>& values,
                                        double confidence, size_t resamples,
                                        uint64_t seed) {
  MAROON_DCHECK(confidence > 0.0 && confidence < 1.0);
  BootstrapInterval interval;
  interval.samples = values.size();
  interval.mean = MeanOf(values);
  if (values.size() < 2 || resamples == 0) {
    interval.lower = interval.upper = interval.mean;
    return interval;
  }

  Random rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  std::vector<double> resample(values.size());
  for (size_t r = 0; r < resamples; ++r) {
    for (size_t i = 0; i < values.size(); ++i) {
      resample[i] = values[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(values.size()) - 1))];
    }
    means.push_back(MeanOf(resample));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at_quantile = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, means.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };
  interval.lower = at_quantile(alpha);
  interval.upper = at_quantile(1.0 - alpha);
  return interval;
}

}  // namespace maroon
