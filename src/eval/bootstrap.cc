#include "eval/bootstrap.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace maroon {

namespace {
double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}
}  // namespace

BootstrapInterval BootstrapMeanInterval(const std::vector<double>& values,
                                        double confidence, size_t resamples,
                                        uint64_t seed) {
  MAROON_DCHECK(confidence > 0.0 && confidence < 1.0);
  BootstrapInterval interval;
  interval.samples = values.size();
  interval.mean = MeanOf(values);
  if (values.size() < 2 || resamples == 0) {
    interval.lower = interval.upper = interval.mean;
    return interval;
  }

  Random rng(seed);
  const size_t n = values.size();
  std::vector<double> means;
  const int width = ThreadPool::ResolveThreadCount(0);
  // The parallel path keeps bit-identical output: the single RNG draws
  // every resample index serially in the exact (replicate, position) order
  // of the serial loop, and each replicate's mean is the same ascending
  // left-fold MeanOf computes. Only the embarrassingly parallel summing
  // fans out. Huge index sets fall back to the serial loop rather than
  // materializing them.
  if (width <= 1 || resamples * n > (size_t{1} << 26)) {
    means.reserve(resamples);
    std::vector<double> resample(n);
    for (size_t r = 0; r < resamples; ++r) {
      for (size_t i = 0; i < n; ++i) {
        resample[i] = values[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1))];
      }
      means.push_back(MeanOf(resample));
    }
  } else {
    std::vector<uint32_t> indices(resamples * n);
    for (size_t r = 0; r < resamples; ++r) {
      for (size_t i = 0; i < n; ++i) {
        indices[r * n + i] = static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      }
    }
    means.resize(resamples);
    ThreadPool::Shared(width)->ParallelFor(
        resamples, width, [&](int /*strand*/, size_t r) {
          obs::PoolTaskScope task("pool.bootstrap_replicate");
          double sum = 0.0;
          for (size_t i = 0; i < n; ++i) {
            sum += values[indices[r * n + i]];
          }
          means[r] = sum / static_cast<double>(n);
        });
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at_quantile = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, means.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };
  interval.lower = at_quantile(alpha);
  interval.upper = at_quantile(1.0 - alpha);
  return interval;
}

}  // namespace maroon
