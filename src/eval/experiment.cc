#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "baselines/temporal_model.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/bootstrap.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

std::string MethodName(Method method) {
  switch (method) {
    case Method::kMaroon:
      return "MAROON";
    case Method::kAfdsTransition:
      return "AFDS+Transition";
    case Method::kAfdsMuta:
      return "MUTA+AFDS";
    case Method::kAfdsDecay:
      return "DECAY+AFDS";
    case Method::kStatic:
      return "Static";
  }
  return "Unknown";
}

std::string ExperimentResult::ToString() const {
  std::ostringstream os;
  os << MethodName(method) << ": P=" << FormatDouble(precision, 3)
     << " R=" << FormatDouble(recall, 3) << " F1=" << FormatDouble(f1, 3)
     << " Acc=" << FormatDouble(accuracy, 3)
     << " Comp=" << FormatDouble(completeness, 3)
     << " t1=" << FormatDouble(phase1_seconds, 3) << "s"
     << " t2=" << FormatDouble(phase2_seconds, 3) << "s"
     << " (n=" << entities_evaluated << ")";
  return os.str();
}

std::string ExperimentResult::ToStringWithCi() const {
  const auto with_ci = [](double mean, const std::vector<double>& values) {
    const BootstrapInterval ci = BootstrapMeanInterval(values);
    return FormatDouble(mean, 3) + "±" + FormatDouble(ci.HalfWidth(), 3);
  };
  std::ostringstream os;
  os << MethodName(method) << ": P=" << with_ci(precision, per_entity_precision)
     << " R=" << with_ci(recall, per_entity_recall)
     << " F1=" << with_ci(f1, per_entity_f1)
     << " Acc=" << with_ci(accuracy, per_entity_accuracy)
     << " Comp=" << with_ci(completeness, per_entity_completeness)
     << " (n=" << entities_evaluated << ")";
  return os.str();
}

Experiment::Experiment(const Dataset* dataset, ExperimentOptions options)
    : dataset_(dataset), options_(std::move(options)) {}

void Experiment::Prepare() {
  MAROON_TRACE_SPAN("experiment.prepare");
  // Deterministic train/test split over target entities.
  std::vector<EntityId> ids;
  ids.reserve(dataset_->targets().size());
  for (const auto& [id, target] : dataset_->targets()) ids.push_back(id);
  Random rng(options_.split_seed);
  rng.Shuffle(ids);
  const size_t train_count = static_cast<size_t>(
      static_cast<double>(ids.size()) * options_.train_fraction);
  training_entities_.assign(ids.begin(), ids.begin() + train_count);
  test_entities_.assign(ids.begin() + train_count, ids.end());

  // Training profiles: the ground-truth histories of the training entities
  // (the paper's clean & complete profiles).
  ProfileSet training_profiles;
  training_profiles.reserve(training_entities_.size());
  for (const EntityId& id : training_entities_) {
    auto target = dataset_->target(id);
    if (target.ok()) training_profiles.push_back((*target)->ground_truth);
  }

  const std::vector<Attribute>& attributes = dataset_->attributes();
  transition_ =
      TransitionModel::Train(training_profiles, attributes,
                             options_.transition);
  freshness_ = FreshnessModel::Train(*dataset_, training_entities_);
  reliability_model_ = ReliabilityModel::Train(*dataset_, training_entities_);
  muta_ = MutaModel::Train(training_profiles, attributes);
  decay_ = DecayModel::Train(training_profiles, attributes);

  // TF-IDF over every record's token bag (set-valued attribute similarity).
  tfidf_ = TfIdfModel();
  for (const TemporalRecord& r : dataset_->records()) {
    std::vector<std::string> tokens;
    for (const auto& [attr, values] : r.values()) {
      std::vector<std::string> vt = ValueSetTokens(values);
      tokens.insert(tokens.end(), vt.begin(), vt.end());
    }
    tfidf_.AddDocument(tokens);
  }
  similarity_calc_ = SimilarityCalculator(options_.similarity);
  similarity_calc_.SetTfIdfModel(&tfidf_);

  BlockerOptions blocker_options;
  blocker_options.fuzzy = options_.use_fuzzy_blocking;
  blocker_ = NameBlocker(blocker_options);
  blocker_.Index(*dataset_);
  prepared_ = true;
}

Experiment::PerEntityOutcome Experiment::RunOne(
    Method method, const EntityId& /*id*/, const TargetEntity& target,
    const std::vector<const TemporalRecord*>& candidates) const {
  PerEntityOutcome outcome;
  const std::vector<Attribute>& attributes = dataset_->attributes();

  switch (method) {
    case Method::kMaroon: {
      MaroonOptions mo = options_.maroon;
      if (mo.matcher.single_valued_attributes.empty()) {
        mo.matcher.single_valued_attributes = attributes;
      }
      Maroon maroon(&transition_, &freshness_, &similarity_calc_, attributes,
                    mo);
      if (options_.use_source_reliability) {
        maroon.SetReliabilityModel(&reliability_model_);
      }
      LinkResult link = maroon.Link(target.clean_profile, candidates);
      outcome.matched = std::move(link.match.matched_records);
      outcome.augmented = std::move(link.match.augmented_profile);
      outcome.phase1_seconds = link.timings.phase1_seconds;
      outcome.phase2_seconds = link.timings.phase2_seconds;
      return outcome;
    }
    case Method::kAfdsTransition:
    case Method::kAfdsMuta:
    case Method::kAfdsDecay: {
      const TransitionTemporalModel transition_adapter(&transition_);
      const TemporalModel* model = nullptr;
      if (method == Method::kAfdsTransition) {
        model = &transition_adapter;
      } else if (method == Method::kAfdsMuta) {
        model = &muta_;
      } else {
        model = &decay_;
      }
      AfdsLinker linker(&similarity_calc_, model, attributes, options_.afds);
      AfdsResult result = linker.Link(target.clean_profile, candidates);
      outcome.matched = std::move(result.matched_records);
      outcome.augmented = std::move(result.augmented_profile);
      outcome.phase1_seconds = result.phase1_seconds;
      outcome.phase2_seconds = result.phase2_seconds;
      return outcome;
    }
    case Method::kStatic: {
      auto start = std::chrono::steady_clock::now();
      StaticLinkage linkage(&similarity_calc_, options_.static_linkage);
      outcome.matched = linkage.Link(target.clean_profile, candidates);
      outcome.phase1_seconds = SecondsSince(start);
      start = std::chrono::steady_clock::now();
      std::vector<const TemporalRecord*> matched_records;
      for (const TemporalRecord* r : candidates) {
        if (std::binary_search(outcome.matched.begin(), outcome.matched.end(),
                               r->id())) {
          matched_records.push_back(r);
        }
      }
      outcome.augmented =
          BuildProfileFromRecords(target.clean_profile, matched_records);
      outcome.phase2_seconds = SecondsSince(start);
      return outcome;
    }
  }
  return outcome;
}

ExperimentResult Experiment::Run(Method method) const {
  MAROON_TRACE_SPAN("experiment.run");
  ExperimentResult result;
  result.method = method;
  if (!prepared_) return result;

  MeanAccumulator precision, recall, f1, accuracy, completeness;
  double phase1 = 0.0, phase2 = 0.0;

  // Serial prepass: select the evaluated entities exactly as the serial
  // loop would (same skip conditions, same max_eval_entities cutoff).
  struct EvalEntry {
    const EntityId* id;
    const TargetEntity* target;
    std::vector<const TemporalRecord*> candidates;
  };
  std::vector<EvalEntry> entries;
  for (const EntityId& id : test_entities_) {
    if (options_.max_eval_entities != 0 &&
        entries.size() >= options_.max_eval_entities) {
      break;
    }
    auto target_or = dataset_->target(id);
    if (!target_or.ok()) continue;
    const TargetEntity& target = **target_or;

    std::vector<RecordId> candidate_ids =
        blocker_.Candidates(target.clean_profile.name());
    std::vector<const TemporalRecord*> candidates;
    candidates.reserve(candidate_ids.size());
    for (RecordId rid : candidate_ids) {
      candidates.push_back(&dataset_->record(rid));
    }
    if (candidates.empty()) continue;
    entries.push_back(EvalEntry{&id, &target, std::move(candidates)});
  }

  // Independent per-entity linkage, fanned out; outcomes land in their
  // entry's slot, so the accumulation below is order-identical to the
  // serial loop at any thread width.
  std::vector<PerEntityOutcome> outcomes(entries.size());
  const int width = ThreadPool::ResolveThreadCount(options_.threads);
  const auto run_one = [&](size_t i) {
    outcomes[i] =
        RunOne(method, *entries[i].id, *entries[i].target,
               entries[i].candidates);
  };
  if (width <= 1) {
    for (size_t i = 0; i < entries.size(); ++i) run_one(i);
  } else {
    ThreadPool::Shared(width)->ParallelFor(
        entries.size(), width, [&](int /*strand*/, size_t i) {
          obs::PoolTaskScope task("pool.eval_entity");
          run_one(i);
        });
  }

  size_t evaluated = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const EntityId& id = *entries[i].id;
    const TargetEntity& target = *entries[i].target;
    PerEntityOutcome& outcome = outcomes[i];

    const PrecisionRecall pr = ComputePrecisionRecall(
        outcome.matched, dataset_->TrueMatchesOf(id));
    precision.Add(pr.precision);
    recall.Add(pr.recall);
    f1.Add(pr.F1());
    result.per_entity_precision.push_back(pr.precision);
    result.per_entity_recall.push_back(pr.recall);
    result.per_entity_f1.push_back(pr.F1());

    const ProfileQuality quality = CompareProfiles(
        outcome.augmented, target.ground_truth, dataset_->attributes());
    accuracy.Add(quality.accuracy);
    completeness.Add(quality.completeness);
    result.per_entity_accuracy.push_back(quality.accuracy);
    result.per_entity_completeness.push_back(quality.completeness);

    phase1 += outcome.phase1_seconds;
    phase2 += outcome.phase2_seconds;
    // Tail-latency sample per entity, from timings the methods already
    // measured — no extra clock reads on this path.
    const double link_seconds =
        outcome.phase1_seconds + outcome.phase2_seconds;
    result.per_entity_link_seconds.push_back(link_seconds);
    MAROON_LATENCY("maroon.experiment.entity_link_seconds")
        ->Record(link_seconds);
    ++evaluated;
  }

  result.precision = precision.Mean();
  result.recall = recall.Mean();
  result.f1 = f1.Mean();
  result.accuracy = accuracy.Mean();
  result.completeness = completeness.Mean();
  result.phase1_seconds = phase1;
  result.phase2_seconds = phase2;
  result.entities_evaluated = evaluated;
  MAROON_COUNTER("maroon.experiment.entities_evaluated")
      ->Add(static_cast<int64_t>(evaluated));
  return result;
}

}  // namespace maroon
