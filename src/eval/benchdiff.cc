#include "eval/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/string_util.h"

namespace maroon {

namespace {

constexpr const char* kSchema = "maroon_bench_runtime_v1";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Fields that identify a row rather than measure it.
bool IsIdentityField(const std::string& key) {
  return key == "bench" || key == "threads" || key == "entities" ||
         key == "records";
}

/// Timing metrics are the gated ones.
bool IsTimingField(const std::string& key) {
  return EndsWith(key, "_s") || EndsWith(key, "_ms");
}

std::string FormatIdentityNumber(double value) {
  // Identity numerics (threads, entities, records) are integral.
  return std::to_string(static_cast<int64_t>(value));
}

/// The stable identity of one row: bench name, then every string label and
/// identity numeric in key order (JsonValue objects are sorted maps).
std::string RowKey(const obs::JsonValue& row) {
  std::string key;
  if (const obs::JsonValue* bench = row.Find("bench")) {
    key = bench->string_value;
  }
  for (const auto& [name, value] : row.object) {
    // "schema" tags the row format, it does not identify the measurement —
    // keys must line up across baselines that predate the per-row tag.
    if (name == "bench" || name == "schema") continue;
    if (value.is_string()) {
      key += " " + name + "=" + value.string_value;
    } else if (value.is_number() && IsIdentityField(name)) {
      key += " " + name + "=" + FormatIdentityNumber(value.number_value);
    }
  }
  return key.empty() ? "(unidentified row)" : key;
}

/// The comparable metrics of one row: every numeric field that is neither
/// identity nor the assignment fingerprint.
std::map<std::string, double> RowMetrics(const obs::JsonValue& row) {
  std::map<std::string, double> metrics;
  for (const auto& [name, value] : row.object) {
    if (!value.is_number()) continue;
    if (IsIdentityField(name) || name == "result_hash") continue;
    metrics[name] = value.number_value;
  }
  return metrics;
}

/// Collects the document's comparable rows keyed by identity: the "rows"
/// array plus the derived "overhead" and "thread_sweep" summary objects.
/// Duplicate keys get a " #n" suffix so no row is silently shadowed.
std::map<std::string, const obs::JsonValue*> CollectRows(
    const obs::JsonValue& doc, std::vector<std::string>* errors,
    const char* which) {
  std::map<std::string, const obs::JsonValue*> rows;
  const obs::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kSchema) {
    errors->push_back(std::string(which) + " file: schema is not \"" +
                      kSchema + "\"");
    return rows;
  }
  const auto insert = [&rows](const obs::JsonValue& row) {
    std::string key = RowKey(row);
    int n = 2;
    while (rows.count(key) != 0) {
      key = RowKey(row) + " #" + std::to_string(n++);
    }
    rows[key] = &row;
  };
  const obs::JsonValue* array = doc.Find("rows");
  if (array == nullptr || !array->is_array()) {
    errors->push_back(std::string(which) + " file: missing \"rows\" array");
  } else {
    for (const obs::JsonValue& row : array->array) {
      if (row.is_object()) insert(row);
    }
  }
  for (const char* summary : {"overhead", "thread_sweep"}) {
    const obs::JsonValue* object = doc.Find(summary);
    if (object != nullptr && object->is_object()) insert(*object);
  }
  return rows;
}

}  // namespace

std::string BenchDiffReport::ToText() const {
  std::ostringstream os;
  os << "benchdiff: " << entries.size() << " metric(s) compared\n";
  for (const BenchDiffEntry& e : entries) {
    os << "  [" << e.row_key << "] " << e.metric << ": "
       << FormatDouble(e.baseline, 6) << " -> " << FormatDouble(e.current, 6)
       << " (" << (e.delta_pct >= 0 ? "+" : "")
       << FormatDouble(e.delta_pct, 2) << "%"
       << (e.regressed ? ", REGRESSED" : (e.gated ? "" : ", not gated"))
       << ")\n";
  }
  for (const std::string& addition : additions) {
    os << "  new: " << addition << "\n";
  }
  for (const std::string& error : errors) {
    os << "  ERROR: " << error << "\n";
  }
  os << (ok() ? "benchdiff: OK"
              : "benchdiff: FAIL (" + std::to_string(regressions) +
                    " regression(s), " + std::to_string(errors.size()) +
                    " error(s))")
     << "\n";
  return os.str();
}

std::string BenchDiffReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("maroon_benchdiff_v1");
  w.Key("ok").Bool(ok());
  w.Key("regressions").Int(regressions);
  w.Key("entries").BeginArray();
  for (const BenchDiffEntry& e : entries) {
    w.BeginObject();
    w.Key("row").String(e.row_key);
    w.Key("metric").String(e.metric);
    w.Key("baseline").Number(e.baseline);
    w.Key("current").Number(e.current);
    w.Key("delta_pct").Number(e.delta_pct);
    w.Key("gated").Bool(e.gated);
    w.Key("regressed").Bool(e.regressed);
    w.EndObject();
  }
  w.EndArray();
  w.Key("additions").BeginArray();
  for (const std::string& addition : additions) w.String(addition);
  w.EndArray();
  w.Key("errors").BeginArray();
  for (const std::string& error : errors) w.String(error);
  w.EndArray();
  w.EndObject();
  return w.text();
}

BenchDiffReport DiffBenchDocuments(const obs::JsonValue& baseline,
                                   const obs::JsonValue& current,
                                   const BenchDiffOptions& options) {
  BenchDiffReport report;
  const std::map<std::string, const obs::JsonValue*> base_rows =
      CollectRows(baseline, &report.errors, "baseline");
  const std::map<std::string, const obs::JsonValue*> cur_rows =
      CollectRows(current, &report.errors, "current");
  if (!report.errors.empty()) return report;

  for (const auto& [key, base_row] : base_rows) {
    const auto found = cur_rows.find(key);
    if (found == cur_rows.end()) {
      report.errors.push_back("row missing from current file: " + key);
      continue;
    }
    const std::map<std::string, double> base_metrics = RowMetrics(*base_row);
    const std::map<std::string, double> cur_metrics =
        RowMetrics(*found->second);
    for (const auto& [metric, base_value] : base_metrics) {
      const auto cur_it = cur_metrics.find(metric);
      if (cur_it == cur_metrics.end()) {
        report.errors.push_back("metric missing from current file: [" + key +
                                "] " + metric);
        continue;
      }
      BenchDiffEntry entry;
      entry.row_key = key;
      entry.metric = metric;
      entry.baseline = base_value;
      entry.current = cur_it->second;
      // Exact-zero guard (not ApproxZero): a denormal-but-nonzero baseline
      // still yields a meaningful ratio, only a true 0 divides by zero.
      entry.delta_pct =
          std::abs(base_value) > 0.0
              ? 100.0 * (entry.current - base_value) / base_value
              : 0.0;
      entry.delta_pct += 0.0;  // normalize -0.0 so the sign prints cleanly
      if (IsTimingField(metric)) {
        const double to_seconds = EndsWith(metric, "_ms") ? 1e-3 : 1.0;
        const double larger_s =
            std::max(entry.baseline, entry.current) * to_seconds;
        entry.gated = larger_s >= options.min_seconds;
        entry.regressed =
            entry.gated && entry.delta_pct > options.threshold_pct;
      }
      if (entry.regressed) ++report.regressions;
      report.entries.push_back(std::move(entry));
    }
    for (const auto& [metric, value] : cur_metrics) {
      if (base_metrics.count(metric) == 0) {
        report.additions.push_back("[" + key + "] " + metric);
      }
    }
  }
  for (const auto& [key, row] : cur_rows) {
    if (base_rows.count(key) == 0) report.additions.push_back(key);
  }
  return report;
}

Result<BenchDiffReport> DiffBenchFiles(const std::string& baseline_path,
                                       const std::string& current_path,
                                       const BenchDiffOptions& options) {
  const auto load = [](const std::string& path) -> Result<obs::JsonValue> {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<obs::JsonValue> parsed = obs::ParseJson(buffer.str());
    if (!parsed.ok()) {
      return Status::InvalidArgument(path + ": " +
                                     parsed.status().message());
    }
    return parsed;
  };
  MAROON_ASSIGN_OR_RETURN(const obs::JsonValue baseline, load(baseline_path));
  MAROON_ASSIGN_OR_RETURN(const obs::JsonValue current, load(current_path));
  return DiffBenchDocuments(baseline, current, options);
}

}  // namespace maroon
