#ifndef MAROON_EVAL_SWEEP_H_
#define MAROON_EVAL_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace maroon {

/// One point of a parameter sweep.
struct SweepPoint {
  double parameter = 0.0;
  ExperimentResult result;
};

/// A labelled precision/recall (plus quality) curve.
struct SweepCurve {
  std::string parameter_name;
  Method method = Method::kMaroon;
  std::vector<SweepPoint> points;

  /// "param,precision,recall,f1,accuracy,completeness" CSV.
  std::string ToCsv() const;

  /// The point with the best F1.
  const SweepPoint* BestByF1() const;
};

/// Runs `method` once per parameter value, calling `configure` to apply the
/// value to a fresh copy of `base_options` (e.g., setting theta). Each run
/// prepares its own Experiment over `dataset`.
SweepCurve RunParameterSweep(
    const Dataset& dataset, const ExperimentOptions& base_options,
    Method method, const std::string& parameter_name,
    const std::vector<double>& values,
    const std::function<void(ExperimentOptions&, double)>& configure);

/// Convenience: sweeps the Phase-II match threshold θ, producing the
/// precision/recall trade-off curve of Algorithm 3.
SweepCurve SweepTheta(const Dataset& dataset,
                      const ExperimentOptions& base_options,
                      const std::vector<double>& thetas);

}  // namespace maroon

#endif  // MAROON_EVAL_SWEEP_H_
