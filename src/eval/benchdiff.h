#ifndef MAROON_EVAL_BENCHDIFF_H_
#define MAROON_EVAL_BENCHDIFF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace maroon {

/// Perf-regression gate over two `maroon_bench_runtime_v1` baselines (the
/// documents tools/run_bench.sh writes). Rows are matched by identity —
/// bench name, string labels, and the identity numerics (threads, entities,
/// records) — then every timing metric (fields ending `_s` or `_ms`) is
/// compared; `tools/maroon_benchdiff` turns the report into an exit code so
/// run_bench.sh and CI can fail on a slowdown instead of eyeballing JSON.
///
/// Gate semantics:
///  - a timing metric regresses when it grew more than `threshold_pct`
///    percent over baseline AND either side is at or above the
///    `min_seconds` noise floor (sub-floor timings jitter too much on
///    shared CI runners to gate);
///  - non-timing numerics (`overhead_pct`, `speedup_8v1`, counts) are
///    reported with their deltas but never gated;
///  - `result_hash` is skipped entirely: it fingerprints the computed
///    assignment, which legitimately changes when the algorithm does
///    (run_bench.sh separately enforces hash equality *across thread
///    widths within one run*, which is the invariant that matters);
///  - a baseline row or metric missing from the current file is an error
///    (coverage shrank); rows or metrics only in the current file are
///    listed as additions and pass.
struct BenchDiffOptions {
  /// Allowed growth, percent, before a timing metric counts as a
  /// regression (25 = current may be up to 1.25x baseline).
  double threshold_pct = 25.0;
  /// Noise floor in seconds; `_ms` metrics are converted before the check.
  double min_seconds = 0.005;
};

/// One compared metric.
struct BenchDiffEntry {
  std::string row_key;  // e.g. "fig7_runtime corpus=dblp method=MAROON"
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// 100 * (current - baseline) / baseline; 0 when baseline is 0.
  double delta_pct = 0.0;
  bool gated = false;      // timing metric above the noise floor
  bool regressed = false;  // gated and past threshold_pct
};

struct BenchDiffReport {
  std::vector<BenchDiffEntry> entries;
  /// Rows/metrics present only in the current file (informational).
  std::vector<std::string> additions;
  /// Missing rows/metrics, schema drift, result_hash mismatches.
  std::vector<std::string> errors;
  int regressions = 0;

  bool ok() const { return errors.empty() && regressions == 0; }
  /// Human-readable table: one line per metric, then errors and the verdict.
  std::string ToText() const;
  /// Machine-readable report, schema `maroon_benchdiff_v1`.
  std::string ToJson() const;
};

/// Diffs two parsed baseline documents. Schema problems (wrong or missing
/// "schema", "rows" not an array) land in `errors`.
BenchDiffReport DiffBenchDocuments(const obs::JsonValue& baseline,
                                   const obs::JsonValue& current,
                                   const BenchDiffOptions& options = {});

/// Loads, parses, and diffs two baseline files; IOError/ParseError when a
/// file cannot be read or is not JSON.
Result<BenchDiffReport> DiffBenchFiles(const std::string& baseline_path,
                                       const std::string& current_path,
                                       const BenchDiffOptions& options = {});

}  // namespace maroon

#endif  // MAROON_EVAL_BENCHDIFF_H_
