#include "eval/metrics.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace maroon {

PrecisionRecall ComputePrecisionRecall(std::vector<RecordId> result,
                                       std::vector<RecordId> match) {
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  std::sort(match.begin(), match.end());
  match.erase(std::unique(match.begin(), match.end()), match.end());

  PrecisionRecall pr;
  pr.result_size = result.size();
  pr.match_size = match.size();
  std::vector<RecordId> shared;
  std::set_intersection(result.begin(), result.end(), match.begin(),
                        match.end(), std::back_inserter(shared));
  pr.true_positives = shared.size();
  pr.precision = result.empty()
                     ? 1.0
                     : static_cast<double>(pr.true_positives) /
                           static_cast<double>(result.size());
  pr.recall = match.empty() ? 1.0
                            : static_cast<double>(pr.true_positives) /
                                  static_cast<double>(match.size());
  return pr;
}

namespace {

using Fact = std::tuple<Attribute, TimePoint, Value>;

std::set<Fact> EnumerateFacts(const EntityProfile& profile,
                              const std::vector<Attribute>& attributes) {
  std::set<Fact> facts;
  for (const Attribute& attribute : attributes) {
    const TemporalSequence& seq = profile.sequence(attribute);
    for (const Triple& tr : seq.triples()) {
      for (TimePoint t = tr.interval.begin; t <= tr.interval.end; ++t) {
        for (const Value& v : tr.values) {
          facts.emplace(attribute, t, v);
        }
      }
    }
  }
  return facts;
}

}  // namespace

ProfileQuality CompareProfiles(const EntityProfile& result,
                               const EntityProfile& ground_truth,
                               const std::vector<Attribute>& attributes) {
  const std::set<Fact> result_facts = EnumerateFacts(result, attributes);
  const std::set<Fact> truth_facts = EnumerateFacts(ground_truth, attributes);

  ProfileQuality quality;
  quality.result_facts = result_facts.size();
  quality.truth_facts = truth_facts.size();
  for (const Fact& f : result_facts) {
    if (truth_facts.count(f) > 0) ++quality.shared_facts;
  }
  quality.accuracy = result_facts.empty()
                         ? 0.0
                         : static_cast<double>(quality.shared_facts) /
                               static_cast<double>(result_facts.size());
  quality.completeness = truth_facts.empty()
                             ? 0.0
                             : static_cast<double>(quality.shared_facts) /
                                   static_cast<double>(truth_facts.size());
  return quality;
}

std::map<Attribute, ProfileQuality> CompareProfilesPerAttribute(
    const EntityProfile& result, const EntityProfile& ground_truth,
    const std::vector<Attribute>& attributes) {
  std::map<Attribute, ProfileQuality> out;
  for (const Attribute& attribute : attributes) {
    out[attribute] = CompareProfiles(result, ground_truth, {attribute});
  }
  return out;
}

}  // namespace maroon
