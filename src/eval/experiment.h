#ifndef MAROON_EVAL_EXPERIMENT_H_
#define MAROON_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/afds_linker.h"
#include "baselines/decay_model.h"
#include "baselines/muta_model.h"
#include "baselines/static_linkage.h"
#include "core/dataset.h"
#include "eval/metrics.h"
#include "freshness/freshness_model.h"
#include "freshness/reliability_model.h"
#include "matching/blocker.h"
#include "matching/maroon.h"
#include "similarity/record_similarity.h"
#include "transition/transition_model.h"

namespace maroon {

/// The linkage methods the evaluation compares (paper §5.3-§5.6):
///  - kMaroon            — full MAROON: source-aware clustering + transition
///                         model (the paper's MAROON and MAROON_SC);
///  - kAfdsTransition    — AFDS clustering, transition-model weights (the
///                         paper's MAROON_TR configuration of Fig. 4, and
///                         the "AFDS" side of Fig. 5);
///  - kAfdsMuta          — AFDS clustering, MUTA recurrence weights (the
///                         paper's MUTA and MUTA+AFDS);
///  - kAfdsDecay         — AFDS clustering, time-decay weights (extra
///                         baseline from ref. [18]);
///  - kStatic            — traditional non-temporal record linkage.
enum class Method {
  kMaroon,
  kAfdsTransition,
  kAfdsMuta,
  kAfdsDecay,
  kStatic,
};

std::string MethodName(Method method);

/// Experiment configuration.
struct ExperimentOptions {
  /// Fraction of target entities whose clean profiles train the models
  /// (the paper uses 50%); the rest are evaluated.
  double train_fraction = 0.5;
  uint64_t split_seed = 123;
  /// Cap on evaluated entities (0 = all test entities).
  size_t max_eval_entities = 0;
  /// Attach the trained reliability model to MAROON (the §6 extension for
  /// erroneous sources). Off by default to match the paper's setup.
  bool use_source_reliability = false;
  /// Candidate blocking: exact normalized names (paper protocol) when
  /// false; fuzzy Jaro-Winkler name matching when true (recovers records
  /// whose mentions carry typos).
  bool use_fuzzy_blocking = false;

  /// Worker threads for the per-entity evaluation loop of Run() (and the
  /// parameter sweeps built on it). <= 0 uses the process default
  /// (--threads / MAROON_THREADS, else 1). Results are identical at every
  /// width: entity selection and metric accumulation stay serial in test
  /// order; only the independent per-entity linkage fans out.
  int threads = 0;

  TransitionModelOptions transition;
  MaroonOptions maroon;
  AfdsOptions afds;
  StaticLinkageOptions static_linkage;
  SimilarityOptions similarity;
};

/// Aggregated results of one method over the test entities.
struct ExperimentResult {
  Method method = Method::kMaroon;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  double completeness = 0.0;
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
  size_t entities_evaluated = 0;

  /// Per-entity metric values (parallel, one entry per evaluated entity);
  /// feed these to BootstrapMeanInterval for confidence intervals.
  std::vector<double> per_entity_precision;
  std::vector<double> per_entity_recall;
  std::vector<double> per_entity_f1;
  std::vector<double> per_entity_accuracy;
  std::vector<double> per_entity_completeness;
  /// Per-entity linkage wall time (phase 1 + phase 2), same order as the
  /// metric vectors; feed to PercentileOfSorted for tail-latency rows.
  std::vector<double> per_entity_link_seconds;

  double total_seconds() const { return phase1_seconds + phase2_seconds; }
  std::string ToString() const;
  /// Like ToString() but with 95% bootstrap half-widths after each metric.
  std::string ToStringWithCi() const;
};

/// Drives one dataset through the full pipeline: train/test split, model
/// training (transition, freshness, MUTA, decay, TF-IDF), then per-method
/// evaluation over the test targets. Shared by the benchmark binaries and
/// the examples.
class Experiment {
 public:
  /// `dataset` must outlive the experiment.
  Experiment(const Dataset* dataset, ExperimentOptions options = {});

  /// Splits entities and trains every model. Must be called before Run().
  void Prepare();

  /// Evaluates one method over the test entities.
  ExperimentResult Run(Method method) const;

  const TransitionModel& transition_model() const { return transition_; }
  const FreshnessModel& freshness_model() const { return freshness_; }
  const ReliabilityModel& reliability_model() const { return reliability_model_; }
  const MutaModel& muta_model() const { return muta_; }
  const DecayModel& decay_model() const { return decay_; }
  const SimilarityCalculator& similarity() const { return similarity_calc_; }
  const std::vector<EntityId>& training_entities() const {
    return training_entities_;
  }
  const std::vector<EntityId>& test_entities() const { return test_entities_; }

 private:
  struct PerEntityOutcome {
    std::vector<RecordId> matched;
    EntityProfile augmented;
    double phase1_seconds = 0.0;
    double phase2_seconds = 0.0;
  };

  PerEntityOutcome RunOne(Method method, const EntityId& id,
                          const TargetEntity& target,
                          const std::vector<const TemporalRecord*>& candidates)
      const;

  const Dataset* dataset_;
  ExperimentOptions options_;
  bool prepared_ = false;

  std::vector<EntityId> training_entities_;
  std::vector<EntityId> test_entities_;

  NameBlocker blocker_;
  TfIdfModel tfidf_;
  SimilarityCalculator similarity_calc_;
  TransitionModel transition_;
  FreshnessModel freshness_;
  ReliabilityModel reliability_model_;
  MutaModel muta_;
  DecayModel decay_;
};

}  // namespace maroon

#endif  // MAROON_EVAL_EXPERIMENT_H_
