#ifndef MAROON_EVAL_METRICS_H_
#define MAROON_EVAL_METRICS_H_

#include <cstddef>
#include <map>
#include <vector>

#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"

namespace maroon {

/// Record-linkage quality for one target entity (paper §5.3):
///   Precision = |Match ∩ Result| / |Result|,
///   Recall    = |Match ∩ Result| / |Match|.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  size_t true_positives = 0;
  size_t result_size = 0;
  size_t match_size = 0;

  double F1() const {
    return (precision + recall) > 0.0
               ? 2.0 * precision * recall / (precision + recall)
               : 0.0;
  }
};

/// Computes precision/recall of `result` against ground truth `match`.
/// Both are record-id sets (unsorted input accepted). By convention an empty
/// result has precision 1 (no wrong links) and an empty match set recall 1.
PrecisionRecall ComputePrecisionRecall(std::vector<RecordId> result,
                                       std::vector<RecordId> match);

/// Profile quality for one target entity (paper §5.5):
///   Accuracy     = |GT ∩ Result| / |Result|,
///   Completeness = |GT ∩ Result| / |GT|,
/// where profiles are compared as sets of (attribute, instant, value) facts
/// over the given schema attributes.
struct ProfileQuality {
  double accuracy = 0.0;
  double completeness = 0.0;
  size_t shared_facts = 0;
  size_t result_facts = 0;
  size_t truth_facts = 0;
};

/// Enumerates the (attribute, instant, value) facts of `profile` restricted
/// to `attributes` and counts overlaps.
ProfileQuality CompareProfiles(const EntityProfile& result,
                               const EntityProfile& ground_truth,
                               const std::vector<Attribute>& attributes);

/// Per-attribute breakdown of CompareProfiles — which attributes drive the
/// aggregate accuracy/completeness.
std::map<Attribute, ProfileQuality> CompareProfilesPerAttribute(
    const EntityProfile& result, const EntityProfile& ground_truth,
    const std::vector<Attribute>& attributes);

/// Aggregates per-entity numbers into macro averages.
class MeanAccumulator {
 public:
  void Add(double value) {
    sum_ += value;
    ++count_;
  }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  size_t count_ = 0;
};

}  // namespace maroon

#endif  // MAROON_EVAL_METRICS_H_
