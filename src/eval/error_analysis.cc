#include "eval/error_analysis.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace maroon {

ErrorBreakdown& ErrorBreakdown::operator+=(const ErrorBreakdown& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  missed_future_states += other.missed_future_states;
  missed_in_history += other.missed_in_history;
  decoy_links += other.decoy_links;
  unlabeled_links += other.unlabeled_links;
  return *this;
}

std::string ErrorBreakdown::ToString() const {
  return "TP=" + std::to_string(true_positives) +
         " FP=" + std::to_string(false_positives) + " (decoys " +
         std::to_string(decoy_links) + ", unlabeled " +
         std::to_string(unlabeled_links) + ") FN=" +
         std::to_string(false_negatives) + " (future " +
         std::to_string(missed_future_states) + ", in-history " +
         std::to_string(missed_in_history) + ") P=" +
         FormatDouble(precision(), 3) + " R=" + FormatDouble(recall(), 3);
}

ErrorBreakdown AnalyzeLinkageErrors(const Dataset& dataset,
                                    const EntityId& entity,
                                    const std::vector<RecordId>& matched) {
  ErrorBreakdown breakdown;
  const std::set<RecordId> matched_set(matched.begin(), matched.end());
  const std::vector<RecordId> truth_list = dataset.TrueMatchesOf(entity);
  const std::set<RecordId> truth(truth_list.begin(), truth_list.end());

  // The clean profile's coverage boundary.
  std::optional<TimePoint> clean_end;
  auto target = dataset.target(entity);
  if (target.ok()) clean_end = (*target)->clean_profile.LatestTime();

  for (RecordId id : matched_set) {
    if (truth.count(id) > 0) {
      ++breakdown.true_positives;
      continue;
    }
    ++breakdown.false_positives;
    const EntityId& label = dataset.LabelOf(id);
    if (label.empty()) {
      ++breakdown.unlabeled_links;
    } else {
      ++breakdown.decoy_links;
    }
  }
  for (RecordId id : truth) {
    if (matched_set.count(id) > 0) continue;
    ++breakdown.false_negatives;
    if (clean_end && dataset.record(id).timestamp() > *clean_end) {
      ++breakdown.missed_future_states;
    } else {
      ++breakdown.missed_in_history;
    }
  }
  return breakdown;
}

}  // namespace maroon
