#include "eval/report.h"

#include <sstream>

#include "common/string_util.h"
#include "eval/bootstrap.h"

namespace maroon {

namespace {

std::string WithCi(double mean, const std::vector<double>& values,
                   double confidence) {
  const BootstrapInterval ci = BootstrapMeanInterval(values, confidence);
  return FormatDouble(mean, 3) + " ± " + FormatDouble(ci.HalfWidth(), 3);
}

}  // namespace

std::string GenerateComparisonReport(const Dataset& dataset,
                                     const ExperimentOptions& options,
                                     const ReportOptions& report_options) {
  std::ostringstream os;
  os << "# " << report_options.title << "\n\n";

  os << "## Corpus\n\n```\n" << dataset.StatisticsString() << "```\n\n";

  Experiment experiment(&dataset, options);
  experiment.Prepare();
  os << "Training entities: " << experiment.training_entities().size()
     << "; test entities: " << experiment.test_entities().size();
  if (options.max_eval_entities > 0) {
    os << " (evaluating up to " << options.max_eval_entities << ")";
  }
  os << ".\n\n";

  os << "## Method comparison\n\n";
  os << "| Method | Precision | Recall | F1 | Accuracy | Completeness |\n";
  os << "|---|---|---|---|---|---|\n";
  std::vector<ExperimentResult> results;
  for (Method m : report_options.methods) {
    results.push_back(experiment.Run(m));
    const ExperimentResult& r = results.back();
    os << "| " << MethodName(m) << " | "
       << WithCi(r.precision, r.per_entity_precision,
                 report_options.confidence)
       << " | "
       << WithCi(r.recall, r.per_entity_recall, report_options.confidence)
       << " | " << WithCi(r.f1, r.per_entity_f1, report_options.confidence)
       << " | "
       << WithCi(r.accuracy, r.per_entity_accuracy,
                 report_options.confidence)
       << " | "
       << WithCi(r.completeness, r.per_entity_completeness,
                 report_options.confidence)
       << " |\n";
  }

  os << "\n## Runtime\n\n";
  os << "| Method | Phase I (s) | Phase II (s) | Total (s) | Entities |\n";
  os << "|---|---|---|---|---|\n";
  for (const ExperimentResult& r : results) {
    os << "| " << MethodName(r.method) << " | "
       << FormatDouble(r.phase1_seconds, 3) << " | "
       << FormatDouble(r.phase2_seconds, 3) << " | "
       << FormatDouble(r.total_seconds(), 3) << " | " << r.entities_evaluated
       << " |\n";
  }

  if (!report_options.theta_sweep.empty()) {
    os << "\n## θ sweep (MAROON)\n\n```\n";
    const SweepCurve curve =
        SweepTheta(dataset, options, report_options.theta_sweep);
    os << curve.ToCsv();
    if (const SweepPoint* best = curve.BestByF1()) {
      os << "# best theta by F1: " << FormatDouble(best->parameter, 3)
         << "\n";
    }
    os << "```\n";
  }
  return os.str();
}

}  // namespace maroon
