#include "eval/sweep.h"

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace maroon {

std::string SweepCurve::ToCsv() const {
  std::string out =
      parameter_name + ",precision,recall,f1,accuracy,completeness\n";
  for (const SweepPoint& p : points) {
    out += FormatDouble(p.parameter, 4) + "," +
           FormatDouble(p.result.precision, 4) + "," +
           FormatDouble(p.result.recall, 4) + "," +
           FormatDouble(p.result.f1, 4) + "," +
           FormatDouble(p.result.accuracy, 4) + "," +
           FormatDouble(p.result.completeness, 4) + "\n";
  }
  return out;
}

const SweepPoint* SweepCurve::BestByF1() const {
  const SweepPoint* best = nullptr;
  for (const SweepPoint& p : points) {
    if (best == nullptr || p.result.f1 > best->result.f1) best = &p;
  }
  return best;
}

SweepCurve RunParameterSweep(
    const Dataset& dataset, const ExperimentOptions& base_options,
    Method method, const std::string& parameter_name,
    const std::vector<double>& values,
    const std::function<void(ExperimentOptions&, double)>& configure) {
  SweepCurve curve;
  curve.parameter_name = parameter_name;
  curve.method = method;
  // Sweep points are independent experiments over the same immutable
  // dataset; fan them out and store each by index, so the curve is ordered
  // exactly as the serial loop would produce it at any width. Nested
  // parallelism is harmless: Experiment::Run on a pool strand falls back to
  // its serial loop (ThreadPool never nests).
  curve.points.resize(values.size());
  const auto run_point = [&](size_t i) {
    ExperimentOptions options = base_options;
    configure(options, values[i]);
    Experiment experiment(&dataset, options);
    experiment.Prepare();
    curve.points[i].parameter = values[i];
    curve.points[i].result = experiment.Run(method);
  };
  const int width = ThreadPool::ResolveThreadCount(base_options.threads);
  if (width <= 1) {
    for (size_t i = 0; i < values.size(); ++i) run_point(i);
  } else {
    ThreadPool::Shared(width)->ParallelFor(
        values.size(), width, [&](int /*strand*/, size_t i) {
          obs::PoolTaskScope task("pool.sweep_point");
          run_point(i);
        });
  }
  return curve;
}

SweepCurve SweepTheta(const Dataset& dataset,
                      const ExperimentOptions& base_options,
                      const std::vector<double>& thetas) {
  return RunParameterSweep(
      dataset, base_options, Method::kMaroon, "theta", thetas,
      [](ExperimentOptions& options, double theta) {
        options.maroon.matcher.theta = theta;
      });
}

}  // namespace maroon
