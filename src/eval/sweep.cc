#include "eval/sweep.h"

#include "common/string_util.h"

namespace maroon {

std::string SweepCurve::ToCsv() const {
  std::string out =
      parameter_name + ",precision,recall,f1,accuracy,completeness\n";
  for (const SweepPoint& p : points) {
    out += FormatDouble(p.parameter, 4) + "," +
           FormatDouble(p.result.precision, 4) + "," +
           FormatDouble(p.result.recall, 4) + "," +
           FormatDouble(p.result.f1, 4) + "," +
           FormatDouble(p.result.accuracy, 4) + "," +
           FormatDouble(p.result.completeness, 4) + "\n";
  }
  return out;
}

const SweepPoint* SweepCurve::BestByF1() const {
  const SweepPoint* best = nullptr;
  for (const SweepPoint& p : points) {
    if (best == nullptr || p.result.f1 > best->result.f1) best = &p;
  }
  return best;
}

SweepCurve RunParameterSweep(
    const Dataset& dataset, const ExperimentOptions& base_options,
    Method method, const std::string& parameter_name,
    const std::vector<double>& values,
    const std::function<void(ExperimentOptions&, double)>& configure) {
  SweepCurve curve;
  curve.parameter_name = parameter_name;
  curve.method = method;
  for (double value : values) {
    ExperimentOptions options = base_options;
    configure(options, value);
    Experiment experiment(&dataset, options);
    experiment.Prepare();
    SweepPoint point;
    point.parameter = value;
    point.result = experiment.Run(method);
    curve.points.push_back(std::move(point));
  }
  return curve;
}

SweepCurve SweepTheta(const Dataset& dataset,
                      const ExperimentOptions& base_options,
                      const std::vector<double>& thetas) {
  return RunParameterSweep(
      dataset, base_options, Method::kMaroon, "theta", thetas,
      [](ExperimentOptions& options, double theta) {
        options.maroon.matcher.theta = theta;
      });
}

}  // namespace maroon
