#ifndef MAROON_EVAL_REPORT_H_
#define MAROON_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/sweep.h"

namespace maroon {

/// Options for the comparison report.
struct ReportOptions {
  /// Methods to compare, in table order.
  std::vector<Method> methods = {Method::kMaroon, Method::kAfdsTransition,
                                 Method::kAfdsMuta, Method::kAfdsDecay,
                                 Method::kStatic};
  /// Title printed at the top.
  std::string title = "MAROON evaluation report";
  /// Include a θ sweep section (adds one experiment run per value).
  std::vector<double> theta_sweep;
  /// Bootstrap confidence level for the ± half-widths.
  double confidence = 0.95;
};

/// Runs every requested method over `dataset` and renders a self-contained
/// Markdown report: corpus statistics, the method comparison table with
/// bootstrap confidence half-widths, runtimes, and (optionally) a θ sweep.
/// This is what `maroon_cli evaluate --report=FILE` writes.
std::string GenerateComparisonReport(const Dataset& dataset,
                                     const ExperimentOptions& options,
                                     const ReportOptions& report_options = {});

}  // namespace maroon

#endif  // MAROON_EVAL_REPORT_H_
