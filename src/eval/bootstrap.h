#ifndef MAROON_EVAL_BOOTSTRAP_H_
#define MAROON_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace maroon {

/// A bootstrap confidence interval for the mean of per-entity metric values.
struct BootstrapInterval {
  double mean = 0.0;
  double lower = 0.0;   // e.g. 2.5th percentile of resampled means
  double upper = 0.0;   // e.g. 97.5th percentile
  size_t samples = 0;   // number of per-entity values

  double HalfWidth() const { return (upper - lower) / 2.0; }
};

/// Percentile-bootstrap CI for the mean of `values`.
///
/// Macro-averaged linkage metrics vary a lot across target entities
/// (candidate-set sizes differ by an order of magnitude), so point means
/// alone overstate differences between methods; EXPERIMENTS.md reports these
/// intervals alongside the means.
///
/// `confidence` in (0, 1); `resamples` bootstrap iterations; deterministic
/// for a fixed seed. Degenerate inputs (empty, single value) collapse the
/// interval onto the mean.
BootstrapInterval BootstrapMeanInterval(const std::vector<double>& values,
                                        double confidence = 0.95,
                                        size_t resamples = 2000,
                                        uint64_t seed = 17);

}  // namespace maroon

#endif  // MAROON_EVAL_BOOTSTRAP_H_
