#ifndef MAROON_EVAL_ERROR_ANALYSIS_H_
#define MAROON_EVAL_ERROR_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/dataset.h"

namespace maroon {

/// A categorized breakdown of one entity's linkage errors.
///
/// The categories follow the paper's narrative: traditional linkage "may
/// miss the opportunity to augment the profiles ... with more up-to-date
/// information" (missed *future* states, §1 Example 1), while ambiguous
/// names make records of same-named entities the main false-positive risk
/// (decoy links).
struct ErrorBreakdown {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  /// False negatives whose timestamp lies after the clean profile's last
  /// covered instant — the future states temporal linkage exists to catch.
  size_t missed_future_states = 0;
  /// False negatives timestamped within (or before) the clean profile's
  /// covered period.
  size_t missed_in_history = 0;

  /// False positives labelled with a *different* entity (same-name decoys).
  size_t decoy_links = 0;
  /// False positives with no ground-truth label at all.
  size_t unlabeled_links = 0;

  double precision() const {
    const size_t returned = true_positives + false_positives;
    return returned == 0 ? 1.0
                         : static_cast<double>(true_positives) /
                               static_cast<double>(returned);
  }
  double recall() const {
    const size_t truth = true_positives + false_negatives;
    return truth == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(truth);
  }

  ErrorBreakdown& operator+=(const ErrorBreakdown& other);

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Categorizes the errors of `matched` (a linkage result for `entity`)
/// against the dataset's ground truth. The clean profile's coverage
/// boundary separates "missed future state" from "missed in history".
ErrorBreakdown AnalyzeLinkageErrors(const Dataset& dataset,
                                    const EntityId& entity,
                                    const std::vector<RecordId>& matched);

}  // namespace maroon

#endif  // MAROON_EVAL_ERROR_ANALYSIS_H_
