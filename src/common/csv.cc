#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace maroon {

namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\r\n") != std::string_view::npos;
}

std::string EscapeField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::AppendRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) text_ += ',';
    text_ += EscapeField(fields[i]);
  }
  text_ += '\n';
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << text_;
  // Flush before checking: the final write may sit in the stream buffer and
  // only fail (e.g. on a full disk) when pushed to the OS.
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  // close() can still fail (NFS flush-on-close, quota enforcement); the
  // destructor would swallow that, so close explicitly and check.
  out.close();
  if (out.fail()) return Status::IOError("close failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "quote character inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        field_started = false;
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

}  // namespace maroon
