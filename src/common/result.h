#ifndef MAROON_COMMON_RESULT_H_
#define MAROON_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace maroon {

/// A value-or-error container: either holds a `T` or a non-OK `Status`.
///
/// Analogous to `absl::StatusOr<T>` / `arrow::Result<T>`. Accessing the value
/// of an errored result is a programmer error and aborts loudly with the
/// carried status in every build mode (MAROON_CHECK) — never undefined
/// behavior on an empty optional.
///
/// ```cpp
/// maroon::Result<TemporalSequence> r = ParseSequence(text);
/// if (!r.ok()) return r.status();
/// UseSequence(*r);
/// ```
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit by design, mirroring StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an errored result. `status` must be non-OK: wrapping an OK
  /// status in an error-shaped Result means the caller lost an error (or
  /// fabricated one), so it aborts loudly in every build mode.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    MAROON_CHECK(!status_.ok())
        << "Result error constructor requires a non-OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHoldsValue();
    return *value_;
  }
  T& value() & {
    CheckHoldsValue();
    return *value_;
  }
  T&& value() && {
    CheckHoldsValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHoldsValue() const {
    MAROON_CHECK(ok()) << "Result value accessed while holding error: "
                       << status_.ToString();
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

}  // namespace maroon

/// Assigns the value of a `Result<T>` expression to `lhs`, or propagates the
/// error. Usable in functions returning `Status` or `Result<U>`.
#define MAROON_ASSIGN_OR_RETURN(lhs, expr)                \
  MAROON_ASSIGN_OR_RETURN_IMPL_(                          \
      MAROON_CONCAT_(_maroon_result_, __LINE__), lhs, expr)
#define MAROON_CONCAT_INNER_(a, b) a##b
#define MAROON_CONCAT_(a, b) MAROON_CONCAT_INNER_(a, b)
#define MAROON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // MAROON_COMMON_RESULT_H_
