#ifndef MAROON_COMMON_CODING_H_
#define MAROON_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace maroon {

/// Little-endian integer coding shared by the WAL frame writer, the
/// TemporalRecord payload codec, and the snapshot serializer. Fixed-width
/// little-endian (not varint) keeps torn-tail arithmetic trivial: every
/// field has a known size, so a reader can always tell "short" from
/// "corrupt".

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Length-prefixed bytes: u32 size + raw contents.
inline void PutLengthPrefixed(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

/// A bounds-checked cursor over an encoded byte string. Every Read* returns
/// false instead of reading past the end, and a length prefix is validated
/// against the remaining bytes *before* any allocation, so a corrupted
/// length field can never trigger a multi-gigabyte reserve.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = GetU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = GetU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadLengthPrefixed(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace maroon

#endif  // MAROON_COMMON_CODING_H_
