#ifndef MAROON_COMMON_LOGGING_H_
#define MAROON_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace maroon {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();

/// Sets the process-wide minimum log level.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Collects one log statement and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace maroon

/// Streams a log statement: `MAROON_LOG(Info) << "built " << n << " tables";`
/// Statements below the process log level are formatted but not emitted.
#define MAROON_LOG(level)                        \
  ::maroon::internal_logging::LogMessage(        \
      ::maroon::LogLevel::k##level, __FILE__, __LINE__)

#endif  // MAROON_COMMON_LOGGING_H_
