#ifndef MAROON_COMMON_LOGGING_H_
#define MAROON_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string_view>

namespace maroon {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();

/// Sets the process-wide minimum log level.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// True on the 1st, (n+1)th, (2n+1)th ... call for `counter` (each
/// MAROON_LOG_EVERY_N site owns one). n <= 1 logs every time.
bool ShouldLogEveryN(std::atomic<uint64_t>& counter, uint64_t n);

/// Collects one log statement and emits it to stderr on destruction.
/// The emission is a single mutex-guarded write, so concurrent log lines
/// from different threads never interleave mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Collects a fatal check-failure message and aborts the process on
/// destruction. Never returns; not suppressible by the log level.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace maroon

/// Streams a log statement: `MAROON_LOG(Info) << "built " << n << " tables";`
/// Statements below the process log level are formatted but not emitted.
/// Lines carry an ISO-8601 UTC timestamp and a severity tag:
/// `[I 2026-08-06T12:00:00Z transition_model.cc:87] built 102 tables`.
#define MAROON_LOG(level)                        \
  ::maroon::internal_logging::LogMessage(        \
      ::maroon::LogLevel::k##level, __FILE__, __LINE__)

/// Rate-limited MAROON_LOG: emits the 1st, (n+1)th, (2n+1)th ... execution
/// of this statement (counted per call site, thread-safe):
/// `MAROON_LOG_EVERY_N(Warning, 100) << "slow path taken";`
/// The for-loop runs at most once; the immediately-invoked lambda gives each
/// expansion site its own static counter.
#define MAROON_LOG_EVERY_N(level, n)                                     \
  for (bool maroon_log_every_n_flag =                                    \
           ::maroon::internal_logging::ShouldLogEveryN(                  \
               []() -> ::std::atomic<::std::uint64_t>& {                 \
                 static ::std::atomic<::std::uint64_t> counter{0};       \
                 return counter;                                         \
               }(),                                                      \
               static_cast<::std::uint64_t>(n));                        \
       maroon_log_every_n_flag; maroon_log_every_n_flag = false)         \
  MAROON_LOG(level)

/// Aborts the process with a message when `condition` is false — in every
/// build mode, unlike assert(). Streams extra context:
/// `MAROON_CHECK(r.ok()) << "while loading " << path;`
/// The `while` never loops: the FatalMessage temporary aborts in its
/// destructor at the end of the first iteration.
#define MAROON_CHECK(condition)                                      \
  while (!(condition))                                               \
  ::maroon::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)

/// Debug-only MAROON_CHECK: compiled out under NDEBUG (like assert) but with
/// the same streaming interface, so hot-path invariants cost nothing in
/// release builds. The condition stays ODR-used in release so variables
/// referenced only by the check do not trigger -Wunused warnings.
#ifdef NDEBUG
#define MAROON_DCHECK(condition)                                     \
  while (false && !(condition))                                      \
  ::maroon::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)
#else
#define MAROON_DCHECK(condition) MAROON_CHECK(condition)
#endif

#endif  // MAROON_COMMON_LOGGING_H_
