#ifndef MAROON_COMMON_LOGGING_H_
#define MAROON_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string_view>

namespace maroon {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();

/// Sets the process-wide minimum log level.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Collects one log statement and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Collects a fatal check-failure message and aborts the process on
/// destruction. Never returns; not suppressible by the log level.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace maroon

/// Streams a log statement: `MAROON_LOG(Info) << "built " << n << " tables";`
/// Statements below the process log level are formatted but not emitted.
#define MAROON_LOG(level)                        \
  ::maroon::internal_logging::LogMessage(        \
      ::maroon::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts the process with a message when `condition` is false — in every
/// build mode, unlike assert(). Streams extra context:
/// `MAROON_CHECK(r.ok()) << "while loading " << path;`
/// The `while` never loops: the FatalMessage temporary aborts in its
/// destructor at the end of the first iteration.
#define MAROON_CHECK(condition)                                      \
  while (!(condition))                                               \
  ::maroon::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)

/// Debug-only MAROON_CHECK: compiled out under NDEBUG (like assert) but with
/// the same streaming interface, so hot-path invariants cost nothing in
/// release builds. The condition stays ODR-used in release so variables
/// referenced only by the check do not trigger -Wunused warnings.
#ifdef NDEBUG
#define MAROON_DCHECK(condition)                                     \
  while (false && !(condition))                                      \
  ::maroon::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)
#else
#define MAROON_DCHECK(condition) MAROON_CHECK(condition)
#endif

#endif  // MAROON_COMMON_LOGGING_H_
