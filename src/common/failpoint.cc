#include "common/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace maroon {
namespace failpoint {

namespace {

struct Spec {
  Action action = Action::kNone;
  uint64_t skip = 0;   // hits to pass through before firing
  uint64_t count = 1;  // times to fire after skip; 0 = unbounded
  uint64_t hits = 0;   // hits seen so far
};

struct State {
  Mutex mu;
  std::map<std::string, Spec> specs MAROON_GUARDED_BY(mu);
  std::map<std::string, std::string> registered MAROON_GUARDED_BY(mu);
};

State& GetState() {
  static State* state = new State();  // leaked: sites fire during shutdown
  return *state;
}

/// Any spec armed anywhere? Lets unarmed processes skip the map lock.
std::atomic<bool> g_armed{false};

Result<Action> ParseAction(std::string_view name) {
  if (name == "off") return Action::kNone;
  if (name == "fail") return Action::kFail;
  if (name == "enospc") return Action::kEnospc;
  if (name == "short") return Action::kShortWrite;
  if (name == "torn") return Action::kTornWrite;
  if (name == "kill") return Action::kKill;
  return Status::InvalidArgument("unknown failpoint action '" +
                                 std::string(name) + "'");
}

Status ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return Status::InvalidArgument("empty number in failpoint spec");
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number '" + std::string(text) +
                                     "' in failpoint spec");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

Result<Spec> ParseSpec(std::string_view text) {
  Spec spec;
  std::string_view action = text;
  const size_t at = text.find('@');
  if (at != std::string_view::npos) {
    action = text.substr(0, at);
    std::string_view trigger = text.substr(at + 1);
    std::string_view skip = trigger;
    const size_t colon = trigger.find(':');
    if (colon != std::string_view::npos) {
      skip = trigger.substr(0, colon);
      MAROON_RETURN_IF_ERROR(ParseUint(trigger.substr(colon + 1),
                                       &spec.count));
    }
    MAROON_RETURN_IF_ERROR(ParseUint(skip, &spec.skip));
  }
  MAROON_ASSIGN_OR_RETURN(spec.action, ParseAction(action));
  return spec;
}

/// Signal-safe stderr write for the death paths (no iostream, no locale).
void RawStderr(const char* text) {
  const ssize_t ignored = ::write(2, text, std::strlen(text));
  (void)ignored;
}

/// Loads MAROON_FAILPOINTS exactly once per process. Parse errors are fatal
/// on stderr: a harness that typos a spec must not silently run fault-free.
void ConfigureFromEnvOnce() {
  static const bool loaded = [] {
    const char* env = std::getenv("MAROON_FAILPOINTS");
    if (env == nullptr || *env == '\0') return true;
    const Status status = Configure(env);
    if (!status.ok()) {
      RawStderr("fatal: bad MAROON_FAILPOINTS: ");
      RawStderr(status.message().c_str());
      RawStderr("\n");
      _exit(kKillExitCode);
    }
    return true;
  }();
  (void)loaded;
}

}  // namespace

Action Hit(const char* point) {
  ConfigureFromEnvOnce();
  if (!g_armed.load(std::memory_order_acquire)) return Action::kNone;
  State& state = GetState();
  MutexLock lock(&state.mu);
  auto it = state.specs.find(point);
  if (it == state.specs.end()) return Action::kNone;
  Spec& spec = it->second;
  const uint64_t hit = spec.hits++;
  if (hit < spec.skip) return Action::kNone;
  if (spec.count != 0 && hit >= spec.skip + spec.count) return Action::kNone;
  return spec.action;
}

void Die(const char* point) {
  // A real crash leaves no destructors, no flushes, no atexit. Write a
  // breadcrumb for humans debugging the harness, then vanish.
  RawStderr("failpoint kill: ");
  RawStderr(point);
  RawStderr("\n");
  _exit(kKillExitCode);
}

Status Arm(const std::string& point, const std::string& spec_text) {
  MAROON_ASSIGN_OR_RETURN(Spec spec, ParseSpec(spec_text));
  State& state = GetState();
  MutexLock lock(&state.mu);
  if (spec.action == Action::kNone) {
    state.specs.erase(point);
  } else {
    state.specs[point] = spec;
  }
  g_armed.store(!state.specs.empty(), std::memory_order_release);
  return Status::OK();
}

Status Configure(const std::string& spec_list) {
  for (const std::string& part : Split(spec_list, ',')) {
    const std::string entry(StripWhitespace(part));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' lacks '='");
    }
    MAROON_RETURN_IF_ERROR(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void Clear(const std::string& point) {
  State& state = GetState();
  MutexLock lock(&state.mu);
  state.specs.erase(point);
  g_armed.store(!state.specs.empty(), std::memory_order_release);
}

void ClearAll() {
  State& state = GetState();
  MutexLock lock(&state.mu);
  state.specs.clear();
  g_armed.store(false, std::memory_order_release);
}

Registrar::Registrar(const char* point, const char* description) {
  State& state = GetState();
  MutexLock lock(&state.mu);
  state.registered[point] = description;
}

std::vector<std::pair<std::string, std::string>> RegisteredPoints() {
  State& state = GetState();
  MutexLock lock(&state.mu);
  return {state.registered.begin(), state.registered.end()};
}

}  // namespace failpoint
}  // namespace maroon
