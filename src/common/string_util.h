#ifndef MAROON_COMMON_STRING_UTIL_H_
#define MAROON_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace maroon {

/// Splits `input` on the single-character `delim`. Empty fields are kept, so
/// `Split("a,,b", ',')` yields {"a", "", "b"}. Splitting the empty string
/// yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Lower-cases ASCII characters; other bytes pass through untouched.
std::string ToLowerAscii(std::string_view input);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Tokenizes into lower-cased alphanumeric words; every other character is a
/// separator. Used by the TF-IDF vectorizer and set-valued similarity.
std::vector<std::string> TokenizeWords(std::string_view input);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace maroon

#endif  // MAROON_COMMON_STRING_UTIL_H_
