#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace maroon {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << BaseName(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  stream_ << "\n";
  std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[F " << BaseName(file) << ":" << line << "] check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str() << std::flush;
  std::abort();
}

}  // namespace internal_logging
}  // namespace maroon
