#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/mutex.h"

namespace maroon {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// "2026-08-06T12:00:00Z" — wall-clock UTC at second granularity.
std::string Iso8601Timestamp() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buffer;
}

/// One mutex-guarded write per log line: concurrent writers cannot
/// interleave characters inside a line. fwrite targets the same fd as
/// std::cerr, so stream redirection (tests, shells) keeps working.
void WriteLineToStderr(const std::string& text) {
  static Mutex mu;
  MutexLock lock(&mu);
  // Best-effort by design: a log line that cannot reach stderr has nowhere
  // else to go, and failing the caller over it would invert priorities.
  // The write MUST happen under mu — that is the whole point of this
  // function (atomic log lines) — so R013's no-I/O-under-lock rule is
  // deliberately waived here; stderr is unbuffered-ish and never the WAL.
  (void)std::fwrite(text.data(), 1, text.size(), stderr);  // maroon-lint: allow(R013)
  (void)std::fflush(stderr);  // maroon-lint: allow(R013)
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

bool ShouldLogEveryN(std::atomic<uint64_t>& counter, uint64_t n) {
  const uint64_t count = counter.fetch_add(1, std::memory_order_relaxed);
  return n <= 1 || count % n == 0;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Iso8601Timestamp() << " "
          << BaseName(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  stream_ << "\n";
  WriteLineToStderr(stream_.str());
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[F " << Iso8601Timestamp() << " " << BaseName(file) << ":"
          << line << "] check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  WriteLineToStderr(stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace maroon
