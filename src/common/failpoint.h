#ifndef MAROON_COMMON_FAILPOINT_H_
#define MAROON_COMMON_FAILPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace maroon {
namespace failpoint {

/// Fault injection for process- and IO-level failures (the structural fault
/// injector in datagen/ covers *input* corruption; this layer covers the
/// machine the pipeline runs on).
///
/// A failpoint is a named site in the durability code — a write, an fsync, a
/// rename, or a pure crash point between operations. Sites are inert (one
/// map lookup behind an atomic arm-check) until a spec is attached, either
/// programmatically (tests) or via the MAROON_FAILPOINTS environment
/// variable (the kill-and-recover harness drives child processes this way):
///
///   MAROON_FAILPOINTS="wal.append.write=short@3,snapshot.rename=kill"
///
/// Spec grammar:   <point>=<action>[@<skip>[:<count>]]
///   action   off | fail | enospc | short | torn | kill
///   skip     hits to let through before firing (default 0)
///   count    times to fire once reached (default 1; 0 = every hit after
///            skip)
///
/// Actions:
///   fail    the operation reports IOError without touching the file
///   enospc  IOError phrased as disk-full (retry classification treats it
///           like any transient IO error)
///   short   a prefix of the data is written, then IOError — models a torn
///           write the caller *notices* and must roll back
///   torn    a prefix of the data is written, then the process dies — models
///           a torn write nobody notices until recovery scans the log
///   kill    the process dies (_exit) before the operation runs
///
/// `short`/`torn` degrade to `fail`/`kill` at sites with no data to cut
/// (sync, rename, pure crash points).

enum class Action {
  kNone,   // site not armed this hit
  kFail,
  kEnospc,
  kShortWrite,
  kTornWrite,
  kKill,
};

/// The exit code used by the kill/torn actions (distinct from every normal
/// CLI exit so harnesses can assert the death was injected).
inline constexpr int kKillExitCode = 61;

/// Evaluates a site: counts the hit and returns the armed action, if any.
/// Reads MAROON_FAILPOINTS once (first call process-wide). Sites that never
/// appear in any spec cost one mutex-free atomic load after that.
Action Hit(const char* point);

/// Terminates the process immediately (no atexit, no flushing) — the `kill`
/// action, exposed so IO wrappers can die mid-operation for `torn`.
[[noreturn]] void Die(const char* point);

/// Attaches a spec ("kill", "short@3", "fail@0:0") to a point. Replaces any
/// existing spec and resets the hit counter.
Status Arm(const std::string& point, const std::string& spec);

/// Parses a full MAROON_FAILPOINTS-style list ("a=kill@2,b=fail").
Status Configure(const std::string& spec_list);

/// Removes one / every spec (hit counters reset). Tests call ClearAll in
/// teardown; points registered for enumeration stay registered.
void Clear(const std::string& point);
void ClearAll();

/// Registers a site for enumeration at static-init time:
///
///   namespace { const failpoint::Registrar kPt{"wal.append.write",
///       "frame write into the live WAL segment"}; }
///
/// Registration is what the kill-and-recover harness iterates, so every
/// crash-relevant site must have a registrar next to its Hit() call.
class Registrar {
 public:
  Registrar(const char* point, const char* description);
};

/// Every registered (point, description), sorted by point name.
std::vector<std::pair<std::string, std::string>> RegisteredPoints();

}  // namespace failpoint
}  // namespace maroon

/// A pure crash point: dies if armed with `kill` (other actions are
/// meaningless between operations and are ignored).
#define MAROON_CRASH_POINT(point)                                        \
  do {                                                                   \
    if (::maroon::failpoint::Hit(point) ==                               \
        ::maroon::failpoint::Action::kKill) {                            \
      ::maroon::failpoint::Die(point);                                   \
    }                                                                    \
  } while (false)

#endif  // MAROON_COMMON_FAILPOINT_H_
