#ifndef MAROON_COMMON_STATUS_H_
#define MAROON_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace maroon {

/// Error category carried by a `Status`.
///
/// The public MAROON API never throws exceptions; operations that can fail
/// return a `Status` (or a `Result<T>`, see result.h). This mirrors the
/// convention used by production storage engines (RocksDB, Arrow).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// A bounded resource (admission queue, memory budget) is full; the
  /// operation may succeed after the caller drains or sheds load.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// an explanatory message in the failure case. Typical use:
///
/// ```cpp
/// maroon::Status s = sequence.Append(triple);
/// if (!s.ok()) return s;
/// ```
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace maroon

/// Propagates a non-OK status to the caller. For internal use in functions
/// returning `Status`.
#define MAROON_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::maroon::Status _maroon_status = (expr);   \
    if (!_maroon_status.ok()) return _maroon_status; \
  } while (false)

#endif  // MAROON_COMMON_STATUS_H_
