#ifndef MAROON_COMMON_FLAGS_H_
#define MAROON_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace maroon {

/// Minimal command-line flag parser for the tools and examples.
///
/// Recognizes `--name=value` and bare `--name` (boolean true); everything
/// else is positional. `--` ends flag parsing. Unknown-flag validation is
/// the caller's job via `FlagNames()`.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);
  explicit FlagParser(const std::vector<std::string>& args);

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Raw string value; errors if the flag is absent.
  Result<std::string> GetString(const std::string& name) const;
  std::string GetStringOr(const std::string& name,
                          std::string fallback) const;

  /// Integer value; errors if absent or unparseable.
  Result<int64_t> GetInt(const std::string& name) const;
  int64_t GetIntOr(const std::string& name, int64_t fallback) const;

  /// Double value; errors if absent or unparseable.
  Result<double> GetDouble(const std::string& name) const;
  double GetDoubleOr(const std::string& name, double fallback) const;

  /// Boolean: bare `--name` and "true"/"1" are true; "false"/"0" false.
  bool GetBoolOr(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order, excluding argv[0].
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags present (sorted), for unknown-flag validation.
  std::vector<std::string> FlagNames() const;

 private:
  void Parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace maroon

#endif  // MAROON_COMMON_FLAGS_H_
