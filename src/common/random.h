#ifndef MAROON_COMMON_RANDOM_H_
#define MAROON_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace maroon {

/// Deterministic pseudo-random generator used by all data generators.
///
/// A thin wrapper over `std::mt19937_64` that offers the handful of sampling
/// primitives the generators need. Every experiment seeds this explicitly so
/// results are reproducible run-to-run.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Geometric number of failures before first success; support {0,1,2,...}.
  /// Requires p in (0, 1].
  int64_t Geometric(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    return std::geometric_distribution<int64_t>(p)(engine_);
  }

  /// Poisson-distributed count with the given mean (> 0).
  int64_t Poisson(double mean) {
    assert(mean > 0.0);
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 and at least one must be > 0.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; useful to give each entity its
  /// own stream so that changing one entity does not perturb the others.
  Random Fork() { return Random(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace maroon

#endif  // MAROON_COMMON_RANDOM_H_
