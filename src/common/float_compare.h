#ifndef MAROON_COMMON_FLOAT_COMPARE_H_
#define MAROON_COMMON_FLOAT_COMPARE_H_

#include <cmath>

namespace maroon {

/// Epsilon helpers for probability and score arithmetic.
///
/// Floating-point `==`/`!=` is banned in MAROON code (lint rule R003):
/// transition and freshness probabilities are products of many conditionals,
/// so exact comparison is both meaningless and a classic source of silent
/// linkage-quality bugs. Use these helpers instead.

/// Default tolerance for probability/score comparisons. Probabilities live in
/// [0, 1]; 1e-9 is far below any meaningful difference yet far above the
/// accumulated rounding error of the paper's Eq. 1-7 chains.
inline constexpr double kDefaultEpsilon = 1e-9;

/// True when `a` and `b` are within `eps` of each other.
inline bool ApproxEqual(double a, double b, double eps = kDefaultEpsilon) {
  return std::fabs(a - b) <= eps;
}

/// True when `x` is within `eps` of zero (e.g. a vector norm too small to
/// divide by).
inline bool ApproxZero(double x, double eps = kDefaultEpsilon) {
  return std::fabs(x) <= eps;
}

/// True when `p` is a valid probability, tolerating `eps` of rounding
/// overshoot on either side.
inline bool IsProbability(double p, double eps = kDefaultEpsilon) {
  return p >= -eps && p <= 1.0 + eps;
}

}  // namespace maroon

#endif  // MAROON_COMMON_FLOAT_COMPARE_H_
