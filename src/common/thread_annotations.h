#ifndef MAROON_COMMON_THREAD_ANNOTATIONS_H_
#define MAROON_COMMON_THREAD_ANNOTATIONS_H_

/// Thread-safety annotation macros for the MAROON concurrent tree.
///
/// Each macro expands to the corresponding Clang thread-safety attribute
/// under Clang and to nothing elsewhere, so one set of annotations feeds two
/// independent checkers:
///
///   - `maroon_lint` rules R011-R014 (src/lint/concurrency.*) parse the
///     macros straight out of the source text — no compiler needed — and
///     enforce them on every file in every build.
///   - Clang's `-Wthread-safety` analysis double-checks the same contracts
///     with full type information (the `thread-safety` CI job builds the
///     tree with `-Wthread-safety -Werror`).
///
/// Annotate with the *project* macros, never the raw attributes; see
/// docs/threading-model.md for the conventions and docs/static_analysis.md
/// for the worked MetricsRegistry example.
///
///   class MAROON_CAPABILITY("mutex") Mutex;        // a lockable type
///   Mutex mu_;
///   int hits_ MAROON_GUARDED_BY(mu_) = 0;          // data behind mu_
///   void Rotate() MAROON_REQUIRES(mu_);            // caller must hold mu_
///   void Stop() MAROON_EXCLUDES(mu_);              // caller must NOT hold
///
/// The analysis has deliberate escape hatches — MAROON_NO_THREAD_SAFETY_
/// ANALYSIS for functions whose safety argument is external to locks (e.g.
/// quiescence-protected accessors) — and every use of one needs a comment
/// saying what the real protection is.

#if defined(__clang__)
#define MAROON_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MAROON_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define MAROON_CAPABILITY(x) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MAROON_SCOPED_CAPABILITY \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define MAROON_GUARDED_BY(x) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`
/// (the pointer itself is unguarded).
#define MAROON_PT_GUARDED_BY(x) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function annotation: the caller must hold the named mutex(es) on entry
/// and still holds them on exit.
#define MAROON_REQUIRES(...) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the named mutex(es); held on return.
#define MAROON_ACQUIRE(...) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the named mutex(es); the caller held them
/// on entry.
#define MAROON_RELEASE(...) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function annotation: acquires on the `bool`-valued success result.
#define MAROON_TRY_ACQUIRE(...) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the named mutex(es) —
/// the function (or something it calls) acquires them itself.
#define MAROON_EXCLUDES(...) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define MAROON_RETURN_CAPABILITY(x) \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: skip analysis for this function. Every use needs a comment
/// naming the out-of-band protection (quiescence, single ownership, ...).
#define MAROON_NO_THREAD_SAFETY_ANALYSIS \
  MAROON_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MAROON_COMMON_THREAD_ANNOTATIONS_H_
