#ifndef MAROON_COMMON_CRC32C_H_
#define MAROON_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace maroon {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum used
/// by the write-ahead log and snapshot formats (the same polynomial RocksDB,
/// LevelDB, and ext4 use for frame integrity). Software table
/// implementation; one shared 256-entry table, thread-safe after first use.

/// Extends `crc` with `data`. Start from 0 for a fresh checksum.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// The CRC-32C of `data`.
inline uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

/// Masked CRC, stored on disk instead of the raw value: a CRC of bytes that
/// themselves contain CRCs is pathologically weak, so the stored form is
/// rotated and offset (the scheme LevelDB introduced).
uint32_t Crc32cMask(uint32_t crc);
uint32_t Crc32cUnmask(uint32_t masked);

}  // namespace maroon

#endif  // MAROON_COMMON_CRC32C_H_
