#ifndef MAROON_COMMON_WAL_H_
#define MAROON_COMMON_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"

namespace maroon {

/// A checksummed, versioned write-ahead log and the failpoint-aware file
/// primitives it is built on (the snapshot writer shares them).
///
/// File layout (all integers little-endian):
///
///   header   "MRWL" u32 version=1 u32 flags=0                (12 bytes)
///   frame*   u32 payload_len  u64 seq  u32 masked_crc32c     (16 bytes)
///            payload bytes
///
/// The CRC covers seq and payload, and is stored masked (see crc32c.h), so
/// a frame of zeros or a frame copied from another offset never validates.
/// Sequence numbers are assigned by the caller and must be strictly
/// ascending; replay rejects regressions as corruption.
///
/// Torn-tail contract: ReadWal replays frames up to the first invalid byte
/// (short header, impossible length, CRC mismatch, seq regression) and
/// reports the valid prefix length. A trailing partial frame is expected
/// after a crash and is *truncated, never replayed*; WalWriter::Open repairs
/// the file to the valid prefix before appending.

/// A failpoint-instrumented POSIX file for durable writes. Every mutating
/// call names a failpoint so faults (short write, fsync failure, ENOSPC,
/// process kill) can be injected at exact byte positions.
class DurableFile {
 public:
  DurableFile() = default;
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  /// Closing in the destructor is best-effort; call Close() on paths that
  /// must observe the error.
  ~DurableFile();

  /// Opens for appending; creates the file when absent. `size()` reflects
  /// the existing length.
  static Result<DurableFile> OpenForAppend(const std::string& path);
  /// Opens fresh for writing, truncating any existing file.
  static Result<DurableFile> Create(const std::string& path);

  /// Appends all of `data` (loops over partial writes). On failure the file
  /// offset and reported size are *not* rolled back — callers that need
  /// atomic frames truncate back to the last durable size (see TruncateTo).
  Status Append(std::string_view data, const char* point);
  /// fsync(2). `point` names the failpoint consulted first.
  Status Sync(const char* point);
  /// ftruncate(2) + seek to `size` — the torn-write repair primitive.
  Status TruncateTo(uint64_t size);
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

/// rename(2) with a crash point before and after — the atomic-publish step
/// of snapshot writes. `point` is the base name; "<point>.before" fires
/// ahead of the rename, "<point>.after" once the new name is durable.
Status AtomicRename(const std::string& from, const std::string& to,
                    const char* point);

/// Reads a whole file into a string (IOError when unreadable).
Result<std::string> ReadFileToString(const std::string& path);

/// One replayed WAL frame.
struct WalFrame {
  uint64_t seq = 0;
  std::string payload;
};

/// The outcome of scanning a WAL file.
struct WalReadResult {
  std::vector<WalFrame> frames;
  /// Offset of the first byte that failed validation (== file size when the
  /// log is clean). Everything past it is a torn tail.
  uint64_t valid_size = 0;
  /// Bytes past valid_size that a repair would drop.
  uint64_t torn_bytes = 0;
  /// Why the scan stopped early (empty when the log is clean) — e.g.
  /// "short frame header", "payload crc mismatch".
  std::string truncation_reason;
};

/// Scans `path`, validating every frame. Fails with IOError when the file
/// cannot be read and InvalidArgument when the *header* is wrong (a missing
/// or foreign file is not a torn log); frame-level damage is not an error —
/// it ends the valid prefix and is reported in the result.
Result<WalReadResult> ReadWal(const std::string& path);

/// Options for WalWriter.
struct WalWriterOptions {
  /// fsync cadence: 0 never (OS decides), 1 after every frame (the durable
  /// default), N after every Nth frame. Close() always syncs.
  int sync_every = 1;
};

/// Appends checksummed frames to a WAL file. Opening an existing file scans
/// it first and truncates any torn tail, so appends always start at a valid
/// frame boundary; `last_seq()` resumes from the highest replayed sequence.
///
/// Single-owner contract: a WalWriter is confined to one thread after Open
/// (sequence numbers and the sync cadence are stateful and unsynchronized).
/// The mutating calls check this with a ThreadChecker, so a second thread
/// sneaking in trips a DCHECK in debug builds instead of corrupting the log.
class WalWriter {
 public:
  static Result<WalWriter> Open(const std::string& path,
                                const WalWriterOptions& options = {});

  /// Appends one frame. `seq` must exceed last_seq(). A failed write rolls
  /// the file back to the previous frame boundary before returning, so a
  /// retry of the same Append never duplicates bytes.
  Status Append(uint64_t seq, std::string_view payload);

  /// Forces an fsync now (regardless of cadence).
  Status Sync();
  Status Close();

  uint64_t last_seq() const { return last_seq_; }
  uint64_t frames_appended() const { return frames_appended_; }
  uint64_t syncs() const { return syncs_; }
  /// Bytes dropped by the torn-tail repair in Open (0 for a clean log).
  uint64_t repaired_bytes() const { return repaired_bytes_; }

 private:
  WalWriter(DurableFile file, WalWriterOptions options, uint64_t last_seq,
            uint64_t repaired_bytes)
      : file_(std::move(file)),
        options_(options),
        last_seq_(last_seq),
        repaired_bytes_(repaired_bytes) {}

  DurableFile file_;
  WalWriterOptions options_;
  uint64_t last_seq_ = 0;
  uint64_t frames_appended_ = 0;
  uint64_t syncs_ = 0;
  uint64_t repaired_bytes_ = 0;
  int frames_since_sync_ = 0;
  /// Enforces the single-owner contract on Append/Sync/Close.
  ThreadChecker thread_checker_;
};

}  // namespace maroon

#endif  // MAROON_COMMON_WAL_H_
