#ifndef MAROON_COMMON_CSV_H_
#define MAROON_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace maroon {

/// Minimal RFC-4180-style CSV support used to persist generated datasets and
/// experiment outputs. Fields containing commas, quotes, or newlines are
/// quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  /// Appends one row. Escaping is applied per field.
  void AppendRow(const std::vector<std::string>& fields);

  /// The accumulated CSV text.
  const std::string& text() const { return text_; }

  /// Writes the accumulated text to `path`, replacing any existing file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::string text_;
};

/// Parses CSV text into rows of fields. Handles quoted fields with embedded
/// commas, doubled quotes, and both \n and \r\n line endings. A trailing
/// newline does not produce an empty final row.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace maroon

#endif  // MAROON_COMMON_CSV_H_
