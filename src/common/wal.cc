#include "common/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace maroon {

namespace {

constexpr char kWalMagic[4] = {'M', 'R', 'W', 'L'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 12;      // magic + version + flags
constexpr size_t kFrameHeaderSize = 16; // payload_len + seq + masked crc
/// A frame longer than this is treated as a corrupt length field, not an
/// allocation request. Streaming records are a few hundred bytes.
constexpr uint32_t kMaxPayload = 64u << 20;

const failpoint::Registrar kFpWalWrite{
    "wal.append.write", "frame write into the live WAL segment"};
const failpoint::Registrar kFpWalSync{
    "wal.append.sync", "fsync after a WAL frame write"};
const failpoint::Registrar kFpWalHeader{
    "wal.open.header", "header write when creating a WAL file"};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// The injected-fault arm of a mutating file operation. Returns OK when the
/// site is unarmed; a non-OK status is the injected failure to surface.
/// Short/torn writes cut `data` and perform the partial write themselves.
Status ApplyWriteFailpoint(const char* point, int fd, std::string_view data,
                           uint64_t* size) {
  const failpoint::Action action = failpoint::Hit(point);
  switch (action) {
    case failpoint::Action::kNone:
      return Status::OK();
    case failpoint::Action::kKill:
      failpoint::Die(point);
    case failpoint::Action::kFail:
      return Status::IOError(std::string("injected write failure at ") +
                             point);
    case failpoint::Action::kEnospc:
      return Status::IOError(
          std::string("injected: no space left on device at ") + point);
    case failpoint::Action::kShortWrite:
    case failpoint::Action::kTornWrite: {
      // Land half the bytes so the tail is torn mid-frame.
      const size_t cut = data.size() / 2;
      if (cut > 0) {
        const ssize_t written = ::write(fd, data.data(), cut);
        if (written > 0) *size += static_cast<uint64_t>(written);
      }
      if (action == failpoint::Action::kTornWrite) failpoint::Die(point);
      return Status::IOError(std::string("injected short write at ") + point);
    }
  }
  return Status::OK();
}

}  // namespace

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<DurableFile> DurableFile::OpenForAppend(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(ErrnoMessage("cannot stat", path));
    ::close(fd);
    return status;
  }
  DurableFile file;
  file.fd_ = fd;
  file.size_ = static_cast<uint64_t>(st.st_size);
  file.path_ = path;
  return file;
}

Result<DurableFile> DurableFile::Create(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot create", path));
  DurableFile file;
  file.fd_ = fd;
  file.size_ = 0;
  file.path_ = path;
  return file;
}

Status DurableFile::Append(std::string_view data, const char* point) {
  if (fd_ < 0) return Status::FailedPrecondition("file is not open");
  MAROON_RETURN_IF_ERROR(ApplyWriteFailpoint(point, fd_, data, &size_));
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed on", path_));
    }
    done += static_cast<size_t>(n);
    size_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status DurableFile::Sync(const char* point) {
  if (fd_ < 0) return Status::FailedPrecondition("file is not open");
  switch (failpoint::Hit(point)) {
    case failpoint::Action::kKill:
    case failpoint::Action::kTornWrite:
      failpoint::Die(point);
    case failpoint::Action::kFail:
    case failpoint::Action::kEnospc:
    case failpoint::Action::kShortWrite:
      return Status::IOError(std::string("injected fsync failure at ") +
                             point);
    case failpoint::Action::kNone:
      break;
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed on", path_));
  }
  return Status::OK();
}

Status DurableFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("file is not open");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate failed on", path_));
  }
  // ftruncate leaves the fd offset where it was; without the seek the next
  // write would land past a zero-filled hole at the old offset.
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Status::IOError(ErrnoMessage("lseek failed on", path_));
  }
  size_ = size;
  return Status::OK();
}

Status DurableFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IOError(ErrnoMessage("close failed on", path_));
  }
  return Status::OK();
}

Status AtomicRename(const std::string& from, const std::string& to,
                    const char* point) {
  const std::string before = std::string(point) + ".before";
  const std::string after = std::string(point) + ".after";
  MAROON_CRASH_POINT(before.c_str());
  switch (failpoint::Hit(point)) {
    case failpoint::Action::kKill:
    case failpoint::Action::kTornWrite:
      failpoint::Die(point);
    case failpoint::Action::kFail:
    case failpoint::Action::kEnospc:
    case failpoint::Action::kShortWrite:
      return Status::IOError(std::string("injected rename failure at ") +
                             point);
    case failpoint::Action::kNone:
      break;
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename failed for", from));
  }
  MAROON_CRASH_POINT(after.c_str());
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IOError(ErrnoMessage("read failed on", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  MAROON_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  if (data.size() < kHeaderSize) {
    return Status::InvalidArgument("WAL " + path + " is shorter than its header (" +
                                   std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("WAL " + path + " has wrong magic");
  }
  const uint32_t version = GetU32(data.data() + 4);
  if (version != kWalVersion) {
    return Status::InvalidArgument("WAL " + path + " has unsupported version " +
                                   std::to_string(version));
  }

  WalReadResult result;
  size_t offset = kHeaderSize;
  uint64_t prev_seq = 0;
  auto stop = [&](const char* reason) {
    result.valid_size = offset;
    result.torn_bytes = data.size() - offset;
    result.truncation_reason = reason;
  };
  while (offset < data.size()) {
    if (data.size() - offset < kFrameHeaderSize) {
      stop("short frame header");
      return result;
    }
    const char* header = data.data() + offset;
    const uint32_t payload_len = GetU32(header);
    const uint64_t seq = GetU64(header + 4);
    const uint32_t stored_crc = Crc32cUnmask(GetU32(header + 12));
    if (payload_len > kMaxPayload) {
      stop("implausible payload length");
      return result;
    }
    if (data.size() - offset - kFrameHeaderSize < payload_len) {
      stop("short payload");
      return result;
    }
    const std::string_view payload(data.data() + offset + kFrameHeaderSize,
                                   payload_len);
    uint32_t crc = Crc32c({header + 4, 8});  // seq bytes
    crc = Crc32cExtend(crc, payload);
    if (crc != stored_crc) {
      stop("payload crc mismatch");
      return result;
    }
    if (seq <= prev_seq) {
      stop("sequence regression");
      return result;
    }
    prev_seq = seq;
    result.frames.push_back(WalFrame{seq, std::string(payload)});
    offset += kFrameHeaderSize + payload_len;
  }
  result.valid_size = data.size();
  result.torn_bytes = 0;
  return result;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  const WalWriterOptions& options) {
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&header, kWalVersion);
  PutU32(&header, 0);  // flags

  struct stat st{};
  bool exists = ::stat(path.c_str(), &st) == 0;
  if (exists && static_cast<uint64_t>(st.st_size) < kHeaderSize) {
    // A file shorter than the header is only legitimate as the artifact of
    // a crash mid-header-write, which leaves a strict prefix of the fresh
    // header on disk. Anything else is operator data — refuse to clobber.
    MAROON_ASSIGN_OR_RETURN(const std::string partial, ReadFileToString(path));
    if (header.compare(0, partial.size(), partial) != 0) {
      return Status::InvalidArgument("WAL " + path +
                                     " is shorter than its header and does "
                                     "not look like a torn header write");
    }
    exists = false;  // recreate from scratch below
  }
  if (!exists) {
    MAROON_ASSIGN_OR_RETURN(DurableFile file, DurableFile::Create(path));
    MAROON_RETURN_IF_ERROR(file.Append(header, "wal.open.header"));
    MAROON_RETURN_IF_ERROR(file.Sync("wal.append.sync"));
    return WalWriter(std::move(file), options, /*last_seq=*/0,
                     /*repaired_bytes=*/0);
  }

  // Existing log: scan, repair the torn tail, and resume after the last
  // valid frame. A file that fails *header* validation is not silently
  // clobbered — that is operator data, not a crash artifact.
  MAROON_ASSIGN_OR_RETURN(WalReadResult scan, ReadWal(path));
  MAROON_ASSIGN_OR_RETURN(DurableFile file, DurableFile::OpenForAppend(path));
  uint64_t repaired = 0;
  if (scan.torn_bytes > 0) {
    MAROON_RETURN_IF_ERROR(file.TruncateTo(scan.valid_size));
    MAROON_RETURN_IF_ERROR(file.Sync("wal.append.sync"));
    repaired = scan.torn_bytes;
  }
  const uint64_t last_seq =
      scan.frames.empty() ? 0 : scan.frames.back().seq;
  return WalWriter(std::move(file), options, last_seq, repaired);
}

Status WalWriter::Append(uint64_t seq, std::string_view payload) {
  thread_checker_.Check();
  if (seq <= last_seq_) {
    return Status::InvalidArgument(
        "WAL sequence must ascend: got " + std::to_string(seq) +
        " after " + std::to_string(last_seq_));
  }
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("WAL payload too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, seq);
  uint32_t crc = Crc32c({frame.data() + 4, 8});
  crc = Crc32cExtend(crc, payload);
  PutU32(&frame, Crc32cMask(crc));
  frame.append(payload);

  const uint64_t frame_start = file_.size();
  const Status append = file_.Append(frame, "wal.append.write");
  if (!append.ok()) {
    // Roll back to the frame boundary so a retry never leaves a partial
    // frame *followed by* a valid one (which replay would misread as a torn
    // tail in the middle of the log).
    const Status rollback = file_.TruncateTo(frame_start);
    if (!rollback.ok()) {
      return Status::IOError(append.message() +
                             "; rollback also failed: " + rollback.message());
    }
    return append;
  }
  last_seq_ = seq;
  ++frames_appended_;
  if (options_.sync_every > 0 &&
      ++frames_since_sync_ >= options_.sync_every) {
    MAROON_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  thread_checker_.Check();
  MAROON_RETURN_IF_ERROR(file_.Sync("wal.append.sync"));
  frames_since_sync_ = 0;
  ++syncs_;
  return Status::OK();
}

Status WalWriter::Close() {
  thread_checker_.Check();
  if (!file_.is_open()) return Status::OK();
  MAROON_RETURN_IF_ERROR(Sync());
  return file_.Close();
}

}  // namespace maroon
