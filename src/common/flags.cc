#include "common/flags.h"

#include <charconv>
#include <cstdlib>
#include <system_error>

#include "common/string_util.h"

namespace maroon {

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  bool flags_done = false;
  for (const std::string& arg : args) {
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags_[body] = "true";
    } else {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

Result<std::string> FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::NotFound("missing flag --" + name);
  }
  return it->second;
}

std::string FlagParser::GetStringOr(const std::string& name,
                                    std::string fallback) const {
  auto it = flags_.find(name);
  return it != flags_.end() ? it->second : std::move(fallback);
}

Result<int64_t> FlagParser::GetInt(const std::string& name) const {
  MAROON_ASSIGN_OR_RETURN(std::string text, GetString(name));
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("flag --" + name + "='" + text +
                                   "' is not an integer");
  }
  return value;
}

int64_t FlagParser::GetIntOr(const std::string& name, int64_t fallback) const {
  Result<int64_t> r = GetInt(name);
  return r.ok() ? *r : fallback;
}

Result<double> FlagParser::GetDouble(const std::string& name) const {
  MAROON_ASSIGN_OR_RETURN(std::string text, GetString(name));
  // std::from_chars for double is not universally available; fall back to
  // strtod with full-consumption checking.
  if (text.empty()) {
    return Status::InvalidArgument("flag --" + name + " is empty");
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("flag --" + name + "='" + text +
                                   "' is not a number");
  }
  return value;
}

double FlagParser::GetDoubleOr(const std::string& name,
                               double fallback) const {
  Result<double> r = GetDouble(name);
  return r.ok() ? *r : fallback;
}

bool FlagParser::GetBoolOr(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string lower = ToLowerAscii(it->second);
  if (lower == "true" || lower == "1" || lower.empty()) return true;
  if (lower == "false" || lower == "0") return false;
  return fallback;
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace maroon
