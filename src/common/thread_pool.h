#ifndef MAROON_COMMON_THREAD_POOL_H_
#define MAROON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace maroon {

/// A fixed-size worker pool driving the pipeline's data-parallel loops
/// (batch linking, transition training, eval sweeps, bootstrap replicates).
///
/// Design rules that keep parallel runs bit-for-bit equal to serial ones:
///  - `ParallelFor(count, width, fn)` calls `fn(strand, index)` exactly once
///    for every index in [0, count), any order, any strand. Callers must
///    write results into index-addressed slots and do any order-sensitive
///    reduction serially afterwards.
///  - A width (or count) of 1 never touches the pool: the loop runs inline
///    on the calling thread, index-ascending — the pre-pool serial code
///    path, byte for byte.
///  - A nested ParallelFor issued from inside a pool task also runs inline
///    (no strand handoff), so composed layers cannot deadlock on the
///    fixed-size pool.
///
/// The calling thread participates as strand 0; a pool of `num_threads`
/// provides `num_threads - 1` helper threads. Work is handed out by a shared
/// index counter, so uneven per-item costs balance dynamically. Tasks must
/// not throw: an escaping exception terminates the process.
///
/// Thread-count configuration, in precedence order: the `--threads` CLI flag
/// (which calls SetDefaultThreadCount), the MAROON_THREADS environment
/// variable, else 1 (serial). Layers expose an `int threads` option where 0
/// means "use the default" — see ResolveThreadCount.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` helper threads (clamped to [1, kMaxThreads]).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(strand, index) once per index in [0, count) across
  /// min(width, num_threads(), count) strands and returns when every index
  /// completed. Strand ids are dense in [0, width); the caller runs strand 0.
  void ParallelFor(size_t count, int width,
                   const std::function<void(int, size_t)>& fn);

  /// ParallelFor at the pool's full width.
  void ParallelFor(size_t count, const std::function<void(int, size_t)>& fn) {
    ParallelFor(count, num_threads_, fn);
  }

  /// Maps [0, count) through `fn` into an index-ordered vector — the
  /// deterministic fan-out/merge shape used by the linking layers.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t count, int width, Fn&& fn) {
    std::vector<T> results(count);
    ParallelFor(count, width,
                [&results, &fn](int /*strand*/, size_t i) {
                  results[i] = fn(i);
                });
    return results;
  }

  /// Hard ceiling on configurable widths (sanity bound, not a target).
  static constexpr int kMaxThreads = 256;

  /// The process-wide default width: SetDefaultThreadCount() if called,
  /// else MAROON_THREADS, else 1.
  static int DefaultThreadCount();

  /// Overrides the default width (the CLI's --threads lands here).
  static void SetDefaultThreadCount(int count);

  /// Resolves a per-call-site `threads` option: >= 1 is taken literally
  /// (clamped to kMaxThreads); <= 0 means DefaultThreadCount().
  static int ResolveThreadCount(int requested);

  /// A process-wide pool of `num_threads` strands (0 = DefaultThreadCount()).
  /// Pools are created on first use and intentionally leaked, mirroring the
  /// obs singletons — helper threads live for the process.
  static ThreadPool* Shared(int num_threads = 0);

  /// True on a pool helper thread; ParallelFor uses this to run nested
  /// parallel sections inline.
  static bool OnWorkerThread();

 private:
  /// One in-flight ParallelFor: a shared index counter plus a count of
  /// helper strands still running.
  struct Batch {
    size_t count = 0;
    const std::function<void(int, size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar done_cv;
    int active_helpers MAROON_GUARDED_BY(mu) = 0;
  };

  void WorkerLoop();
  static void RunStrand(Batch* batch, int strand);

  const int num_threads_;

  // Lock order (authoritative graph: docs/threading-model.md):
  //   run_mu_ -> mu_         (ParallelFor publishes the batch)
  //   run_mu_ -> Batch::mu   (ParallelFor seeds/awaits active_helpers)
  // mu_ and Batch::mu are never held together: WorkerLoop releases mu_
  // before touching the batch, so the graph stays a tree.

  /// Serializes external ParallelFor callers; one batch runs at a time.
  Mutex run_mu_;

  Mutex mu_;
  CondVar work_cv_;
  Batch* batch_ MAROON_GUARDED_BY(mu_) = nullptr;  // null = idle
  int strands_to_claim_ MAROON_GUARDED_BY(mu_) = 0;
  bool shutdown_ MAROON_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// A named long-lived service thread running `fn` to completion — the
/// primitive behind blocking server loops (the ops plane's HTTP accept and
/// connection workers) that do not fit ParallelFor's bounded-batch shape.
/// Lives with ThreadPool because thread construction is confined to
/// src/common/thread_pool.* (lint rule R008): everything else obtains its
/// threads from this runtime.
///
/// `fn` starts immediately on construction and must not throw; it is
/// responsible for observing its owner's shutdown signal and returning.
/// Join() (also run by the destructor) blocks until `fn` returns — the
/// owner must make `fn` return first (close the socket, set the flag,
/// notify the condition variable), or Join() deadlocks. Single-owner:
/// Join() and destruction must come from one thread.
class BackgroundThread {
 public:
  /// Starts `fn` on a new thread. `name` labels the thread in logs/debug.
  BackgroundThread(std::string name, std::function<void()> fn);
  ~BackgroundThread();

  BackgroundThread(const BackgroundThread&) = delete;
  BackgroundThread& operator=(const BackgroundThread&) = delete;

  /// Waits for `fn` to return; idempotent.
  void Join();

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::thread thread_;
};

/// A background thread invoking `fn` every `period` until Stop() or
/// destruction — the timer primitive behind long-lived maintenance work
/// (the obs layer's periodic metrics snapshots). Lives with ThreadPool
/// because thread construction is confined to src/common/thread_pool.*
/// (lint rule R008): everything else schedules through this runtime.
///
/// The first invocation fires one period after construction; Stop() wakes
/// the worker immediately, so destruction never waits out a period. `fn`
/// runs on the timer thread and must not throw.
class PeriodicTimer {
 public:
  PeriodicTimer(std::chrono::milliseconds period, std::function<void()> fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Stops and joins the timer thread; idempotent. No invocation of `fn`
  /// is in flight once Stop() returns.
  void Stop();

  /// Completed invocations of `fn` so far.
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const std::chrono::milliseconds period_;
  const std::function<void()> fn_;
  std::atomic<int64_t> ticks_{0};
  Mutex mu_;
  CondVar cv_;
  bool stop_ MAROON_GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace maroon

#endif  // MAROON_COMMON_THREAD_POOL_H_
