#include "common/crc32c.h"

#include <array>

namespace maroon {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC-32C, reflected
constexpr uint32_t kMaskDelta = 0xA282EAD8u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  crc = ~crc;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace maroon
