#include "common/random.h"

#include <numeric>

namespace maroon {

size_t Random::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  // Floating-point round-off can leave target == total; return the last
  // positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace maroon
