#include "common/thread_pool.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <map>

namespace maroon {

namespace {

/// Set for the lifetime of each pool helper thread; nested ParallelFor calls
/// check it to run inline instead of deadlocking on the fixed-size pool.
bool& InPoolWorkerFlag() {
  thread_local bool in_pool_worker = false;
  return in_pool_worker;
}

int ClampThreadCount(int count) {
  return std::min(std::max(count, 1), ThreadPool::kMaxThreads);
}

/// MAROON_THREADS, clamped; 1 when unset or unparsable (serial default).
int EnvThreadCount() {
  const char* env = std::getenv("MAROON_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  int value = 0;
  const char* end = env + std::strlen(env);
  auto [ptr, ec] = std::from_chars(env, end, value);
  if (ec != std::errc{} || ptr != end) return 1;
  return ClampThreadCount(value);
}

/// 0 until SetDefaultThreadCount or the first DefaultThreadCount call.
std::atomic<int>& DefaultThreadCountSlot() {
  static std::atomic<int> count{0};
  return count;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ClampThreadCount(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return InPoolWorkerFlag(); }

void ThreadPool::RunStrand(Batch* batch, int strand) {
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) return;
    (*batch->fn)(strand, i);
  }
}

void ThreadPool::ParallelFor(size_t count, int width,
                             const std::function<void(int, size_t)>& fn) {
  if (count == 0) return;
  width = std::min(width, num_threads_);
  if (width > 0 && static_cast<size_t>(width) > count) {
    width = static_cast<int>(count);
  }
  // Serial behaviour, bit for bit: ascending indexes on the calling thread.
  // Nested sections also land here — a pool strand never waits on the pool.
  if (width <= 1 || OnWorkerThread()) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  MutexLock run_lock(&run_mu_);
  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  const int helpers = width - 1;
  {
    // Uncontended (the batch is not yet published), but the write must be
    // under batch.mu: active_helpers is guarded and workers read it the
    // moment they wake.
    MutexLock init_lock(&batch.mu);
    batch.active_helpers = helpers;
  }
  {
    MutexLock lock(&mu_);
    batch_ = &batch;
    strands_to_claim_ = helpers;
  }
  work_cv_.NotifyAll();

  // The caller is strand 0. It counts as a pool worker while running tasks
  // so that nested ParallelFor calls from its tasks run inline instead of
  // re-locking run_mu_ (self-deadlock); the flag was necessarily false here
  // (a worker thread would have taken the inline path above).
  InPoolWorkerFlag() = true;
  RunStrand(&batch, 0);
  InPoolWorkerFlag() = false;

  {
    MutexLock lock(&batch.mu);
    while (batch.active_helpers != 0) batch.done_cv.Wait(lock);
  }
  MutexLock lock(&mu_);
  batch_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  InPoolWorkerFlag() = true;
  for (;;) {
    Batch* batch = nullptr;
    int strand = 0;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && (batch_ == nullptr || strands_to_claim_ <= 0)) {
        work_cv_.Wait(lock);
      }
      if (shutdown_) return;
      batch = batch_;
      strand = strands_to_claim_--;
    }
    RunStrand(batch, strand);
    // Notify while holding the batch mutex: once active_helpers reaches 0
    // the caller may destroy the batch, so no touch-after-notify is allowed.
    MutexLock lock(&batch->mu);
    if (--batch->active_helpers == 0) batch->done_cv.NotifyAll();
  }
}

int ThreadPool::DefaultThreadCount() {
  std::atomic<int>& slot = DefaultThreadCountSlot();
  const int configured = slot.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const int from_env = EnvThreadCount();
  int expected = 0;
  slot.compare_exchange_strong(expected, from_env,
                               std::memory_order_relaxed);
  return slot.load(std::memory_order_relaxed);
}

void ThreadPool::SetDefaultThreadCount(int count) {
  DefaultThreadCountSlot().store(ClampThreadCount(count),
                                 std::memory_order_relaxed);
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return ClampThreadCount(requested);
  return DefaultThreadCount();
}

PeriodicTimer::PeriodicTimer(std::chrono::milliseconds period,
                             std::function<void()> fn)
    : period_(period), fn_(std::move(fn)), worker_([this] { Loop(); }) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

void PeriodicTimer::Loop() {
  MutexLock lock(&mu_);
  for (;;) {
    const auto deadline = std::chrono::steady_clock::now() + period_;
    bool timed_out = false;
    while (!stop_ && !timed_out) timed_out = cv_.WaitUntil(lock, deadline);
    if (stop_) return;
    // Run the callback unlocked so it can take its own locks (the metrics
    // registry's, a file sink's) without ordering against ours.
    lock.unlock();
    fn_();
    ticks_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (stop_) return;
  }
}

BackgroundThread::BackgroundThread(std::string name,
                                   std::function<void()> fn)
    : name_(std::move(name)), thread_(std::move(fn)) {}

BackgroundThread::~BackgroundThread() { Join(); }

void BackgroundThread::Join() {
  if (thread_.joinable()) thread_.join();
}

ThreadPool* ThreadPool::Shared(int num_threads) {
  const int width = ResolveThreadCount(num_threads);
  // Leaked like the obs singletons: helper threads live for the process, so
  // shared pools are never destroyed (no shutdown races at exit).
  static Mutex* registry_mu = new Mutex;
  static std::map<int, ThreadPool*>* registry = new std::map<int, ThreadPool*>;
  MutexLock lock(registry_mu);
  ThreadPool*& pool = (*registry)[width];
  if (pool == nullptr) pool = new ThreadPool(width);
  return pool;
}

}  // namespace maroon
