#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace maroon {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> TokenizeWords(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : input) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace maroon
