#ifndef MAROON_COMMON_MUTEX_H_
#define MAROON_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace maroon {

/// Annotated synchronization primitives for the MAROON concurrent tree.
///
/// libstdc++ ships no thread-safety attributes, so `std::mutex` and
/// `std::lock_guard` are invisible to Clang's `-Wthread-safety` analysis
/// (and a `MAROON_GUARDED_BY(std_mu_)` field would warn at every access).
/// These thin wrappers carry the attributes themselves: concurrent classes
/// use `Mutex` + `MutexLock` + `CondVar`, annotate shared fields with
/// `MAROON_GUARDED_BY`, and both `maroon_lint` (R011-R013) and Clang see the
/// same acquire/release structure. Cost over the raw primitives: one pointer
/// indirection in `MutexLock` and `condition_variable_any` dispatch in
/// `CondVar` — noise against anything a mutex already costs.
///
/// Condition waits are written as explicit loops, not predicate lambdas,
/// because a lambda body is analyzed as its own function and cannot see the
/// caller's held locks:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(lock);     // ready_ is MAROON_GUARDED_BY(mu_)

/// A standard-layout mutex annotated as a Clang capability. Lowercase
/// lock/unlock keep it a C++ Lockable, so std::unique_lock<maroon::Mutex>
/// still works where an unannotated context needs it.
class MAROON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MAROON_ACQUIRE() { mu_.lock(); }
  void unlock() MAROON_RELEASE() { mu_.unlock(); }
  bool try_lock() MAROON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated as a scoped capability. Supports the
/// unlock-then-relock shape condition loops and callback hand-offs need
/// (`lock.unlock(); fn(); lock.lock();`), and is a BasicLockable so CondVar
/// can release/reacquire it during waits.
class MAROON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MAROON_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() MAROON_RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual release/reacquire; the destructor only unlocks when held.
  void lock() MAROON_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }
  void unlock() MAROON_RELEASE() {
    held_ = false;
    mu_->unlock();
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// Condition variable paired with MutexLock. Waits release and reacquire the
/// lock, so the caller's held-set is unchanged across a Wait — which is
/// exactly how both checkers model it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always loop).
  void Wait(MutexLock& lock) { cv_.wait(lock); }

  /// True when the deadline passed without a notification.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock, deadline) == std::cv_status::timeout;
  }

  /// True when `rel_time` elapsed without a notification.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock, rel_time) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// Debug-only single-owner assertion for classes that are deliberately
/// unsynchronized (StreamLinker, WalWriter): the first Check() binds the
/// owning thread, every later Check() asserts the caller is that thread.
/// This turns "single-threaded by design" from a prose contract into a
/// machine-checked invariant, with zero cost in release builds beyond one
/// uncontended atomic CAS. Movable so Result<T>-returning factories keep
/// working; moving transfers the binding as-is.
class ThreadChecker {
 public:
  ThreadChecker() = default;
  ThreadChecker(ThreadChecker&& other) noexcept
      : owner_(other.owner_.load()) {}
  ThreadChecker& operator=(ThreadChecker&& other) noexcept {
    owner_.store(other.owner_.load());
    return *this;
  }

  void Check() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self)) return;
    MAROON_DCHECK(expected == self)
        << "single-owner class used from a second thread";
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id{}};
};

}  // namespace maroon

#endif  // MAROON_COMMON_MUTEX_H_
