#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace maroon {
namespace net {

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + offset, data.size() - offset, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

std::string LowercaseCopy(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Result<HttpClientResponse> HttpGet(const std::string& host, int port,
                                   const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + message);
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::IOError("send: " + message);
  }

  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const std::string message =
          (errno == EAGAIN || errno == EWOULDBLOCK) ? "timed out"
                                                    : std::strerror(errno);
      ::close(fd);
      return Status::IOError("recv: " + message);
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IOError("response has no header terminator");
  }
  const size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  // "HTTP/1.1 200 OK" — the status code is the second token.
  const size_t sp1 = status_line.find(' ');
  if (status_line.compare(0, 5, "HTTP/") != 0 || sp1 == std::string::npos) {
    return Status::IOError("malformed status line '" + status_line + "'");
  }
  HttpClientResponse response;
  const char* code_begin = status_line.data() + sp1 + 1;
  const char* code_end = status_line.data() + status_line.size();
  const auto parsed =
      std::from_chars(code_begin, code_end, response.status);
  if (parsed.ec != std::errc() || response.status < 100 ||
      response.status > 599) {
    return Status::IOError("malformed status line '" + status_line + "'");
  }
  response.body = raw.substr(head_end + 4);

  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t next = raw.find("\r\n", pos);
    if (next == std::string::npos || next > head_end) next = head_end;
    const std::string header = raw.substr(pos, next - pos);
    pos = next + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    if (LowercaseCopy(header.substr(0, colon)) == "content-type") {
      size_t begin = colon + 1;
      while (begin < header.size() && header[begin] == ' ') ++begin;
      response.content_type = header.substr(begin);
    }
  }
  return response;
}

}  // namespace net
}  // namespace maroon
