#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace maroon {
namespace net {

namespace {

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  // Best effort: a socket without timeouts still works, it just trusts the
  // client more than it should.
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, tolerating short writes; false on error/timeout.
bool WriteAll(int fd, const std::string& data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + offset, data.size() - offset, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

std::string Lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Strips leading/trailing spaces and tabs.
std::string TrimWs(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// Parses the request head (request line + headers). Returns false on a
/// malformed request line.
bool ParseRequestHead(const std::string& head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  request->method = line.substr(0, sp1);
  request->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/' || version.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  const size_t qmark = request->target.find('?');
  request->path = request->target.substr(0, qmark);
  request->query = qmark == std::string::npos
                       ? ""
                       : request->target.substr(qmark + 1);

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string header = head.substr(pos, next - pos);
    pos = next + 2;
    if (header.empty()) break;
    const size_t colon = header.find(':');
    if (colon == std::string::npos) continue;  // tolerated, not trusted
    request->headers.emplace_back(Lowercase(TrimWs(header.substr(0, colon))),
                                  TrimWs(header.substr(colon + 1)));
  }
  return true;
}

}  // namespace

std::string HttpServer::SerializeResponse(const HttpResponse& response,
                                          bool include_body) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out.append("HTTP/1.1 ")
      .append(std::to_string(response.status))
      .append(" ")
      .append(StatusReason(response.status))
      .append("\r\nContent-Type: ")
      .append(response.content_type)
      .append("\r\nContent-Length: ")
      .append(std::to_string(response.body.size()))
      .append("\r\nConnection: close\r\n\r\n");
  if (include_body) out.append(response.body);
  return out;
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    const HttpServerOptions& options, HttpHandler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("HttpServer needs a handler");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("HttpServer needs at least one worker");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable bind address '" +
                                   options.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind " + options.bind_address + ":" +
                           std::to_string(options.port) + ": " + message);
  }
  if (::listen(fd, 64) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + message);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname: " + message);
  }
  const int port = static_cast<int>(ntohs(bound.sin_port));
  return std::unique_ptr<HttpServer>(
      new HttpServer(options, std::move(handler), fd, port));
}

HttpServer::HttpServer(const HttpServerOptions& options, HttpHandler handler,
                       int listen_fd, int port)
    : options_(options),
      handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port) {
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<BackgroundThread>(
        "http-worker-" + std::to_string(i), [this] { WorkerLoop(); }));
  }
  acceptor_ =
      std::make_unique<BackgroundThread>("http-accept", [this] {
        AcceptLoop();
      });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (shutdown_.exchange(true)) return;
  // Wake the accept loop: shutdown() forces a blocked accept() to return on
  // Linux; the loop then observes shutdown_ and exits without touching the
  // (still open) descriptor again.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  acceptor_->Join();
  for (auto& worker : workers_) worker->Join();
  // Workers drain the queue before exiting; anything still here lost the
  // race with stopping_ and is closed unanswered.
  std::deque<int> orphans;
  {
    MutexLock lock(&mu_);
    orphans.swap(pending_);
  }
  for (const int fd : orphans) ::close(fd);
  ::close(listen_fd_);
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.accepted = accepted_.load();
  stats.served = served_.load();
  stats.rejected_overload = rejected_overload_.load();
  stats.timeouts = timeouts_.load();
  stats.bad_requests = bad_requests_.load();
  return stats;
}

void HttpServer::AcceptLoop() {
  while (!shutdown_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutdown_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Listener broke outside a shutdown (fd limit, network stack). Log
      // once and stop accepting; already-queued connections still drain.
      MAROON_LOG(Error) << "http accept failed: " << std::strerror(errno);
      return;
    }
    accepted_.fetch_add(1);
    bool overloaded = false;
    bool stopping = false;
    {
      MutexLock lock(&mu_);
      if (stopping_) {
        stopping = true;
      } else if (pending_.size() >= options_.max_pending) {
        overloaded = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (stopping) {
      ::close(fd);
      return;
    }
    if (overloaded) {
      rejected_overload_.fetch_add(1);
      WriteEarlyResponse(fd, 503, "ops server overloaded\n");
    } else {
      queue_cv_.NotifyOne();
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(&mu_);
      while (pending_.empty() && !stopping_) queue_cv_.Wait(lock);
      if (pending_.empty() && stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::WriteEarlyResponse(int fd, int status,
                                    const std::string& reason) {
  SetSocketTimeouts(fd, options_.request_timeout_ms);
  HttpResponse response;
  response.status = status;
  response.body = reason;
  (void)WriteAll(fd, SerializeResponse(response, /*include_body=*/true));
  ::close(fd);
}

void HttpServer::HandleConnection(int fd) {
  SetSocketTimeouts(fd, options_.request_timeout_ms);
  std::string head;
  head.reserve(512);
  char buffer[2048];
  bool timed_out = false;
  bool too_large = false;
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > options_.max_request_bytes) {
      too_large = true;
      break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;
      break;
    }
    if (n <= 0) break;  // peer closed or hard error: no request to answer
    head.append(buffer, static_cast<size_t>(n));
  }

  HttpResponse response;
  bool include_body = true;
  HttpRequest request;
  if (timed_out) {
    timeouts_.fetch_add(1);
    response.status = 408;
    response.body = "request timed out\n";
  } else if (too_large) {
    bad_requests_.fetch_add(1);
    response.status = 431;
    response.body = "request head exceeds limit\n";
  } else if (head.find("\r\n\r\n") == std::string::npos ||
             !ParseRequestHead(head, &request)) {
    bad_requests_.fetch_add(1);
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    bad_requests_.fetch_add(1);
    response.status = 405;
    response.body = "only GET and HEAD are served here\n";
  } else {
    response = handler_(request);
    served_.fetch_add(1);
    include_body = request.method != "HEAD";
  }
  (void)WriteAll(fd, SerializeResponse(response, include_body));
  ::close(fd);
}

}  // namespace net
}  // namespace maroon
