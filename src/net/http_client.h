#ifndef MAROON_NET_HTTP_CLIENT_H_
#define MAROON_NET_HTTP_CLIENT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace maroon {
namespace net {

/// One parsed HTTP response from HttpGet.
struct HttpClientResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// A minimal blocking HTTP/1.1 GET for tests and smoke checks against the
/// in-process ops server: connects, sends `GET path` with
/// `Connection: close`, reads to EOF, parses the status line, Content-Type,
/// and body. Not a general client — no redirects, no TLS, no chunked
/// decoding (the paired HttpServer never chunks).
Result<HttpClientResponse> HttpGet(const std::string& host, int port,
                                   const std::string& path,
                                   int timeout_ms = 5000);

}  // namespace net
}  // namespace maroon

#endif  // MAROON_NET_HTTP_CLIENT_H_
