#ifndef MAROON_NET_HTTP_SERVER_H_
#define MAROON_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace maroon {
namespace net {

/// A dependency-free embedded HTTP/1.1 server for the live ops plane
/// (`/metrics`, `/healthz`, ... — see obs::OpsServer for the routes).
///
/// Scope: exactly what a scrape/health surface needs and nothing more —
/// GET/HEAD, one request per connection (`Connection: close`), no TLS, no
/// keep-alive, no chunked bodies. Operational hardening is the point:
///  - a bounded accept queue: connections beyond `max_pending` receive an
///    immediate `503 Service Unavailable` instead of piling up;
///  - per-connection read/write timeouts (`SO_RCVTIMEO`/`SO_SNDTIMEO`), so
///    a stalled client cannot pin a worker;
///  - a request-size cap (`max_request_bytes`) against oversized headers;
///  - graceful shutdown: Stop() closes the listener, drains queued
///    connections, and joins every thread before returning.
///
/// Threading (annotated with the PR-8 lock discipline): one accept loop
/// plus `num_workers` connection workers, all maroon::BackgroundThread
/// strands (thread construction stays confined to src/common/thread_pool.*,
/// lint rule R008). The accept loop and workers exchange file descriptors
/// through a mutex-guarded queue; all socket I/O happens outside the lock
/// (lint rule R013). The handler runs on a worker thread and may be called
/// concurrently from several workers — it must be thread-safe and must not
/// throw.

/// One parsed request. Only the request line and headers are read; GET and
/// HEAD carry no body in this server's dialect.
struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string target;  // raw request target, e.g. "/metrics?name=x"
  std::string path;    // target up to '?', e.g. "/metrics"
  std::string query;   // after '?', "" when absent
  /// Header (name, value) pairs in arrival order; names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Produces the response for one request. Runs on a worker thread,
/// potentially concurrently with other invocations; must not throw.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Loopback by default: the ops plane is an operator surface, not a
  /// public one. Bind 0.0.0.0 explicitly to expose it.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; the bound port is reported by port().
  int port = 0;
  int num_workers = 2;
  /// Accepted connections waiting for a worker beyond this bound are
  /// answered 503 and closed by the accept loop.
  size_t max_pending = 16;
  /// Socket read/write timeout per connection.
  int request_timeout_ms = 5000;
  /// Request line + headers larger than this are answered 431.
  size_t max_request_bytes = 16384;
};

/// Monotonic counters describing a server's lifetime.
struct HttpServerStats {
  int64_t accepted = 0;        // connections accepted
  int64_t served = 0;          // responses written by the handler path
  int64_t rejected_overload = 0;  // 503s from the bounded queue
  int64_t timeouts = 0;        // connections dropped on read timeout
  int64_t bad_requests = 0;    // 400/405/431 responses
};

class HttpServer {
 public:
  /// Binds, listens, and starts the accept loop and workers. On success the
  /// server is live: port() is the bound port.
  static Result<std::unique_ptr<HttpServer>> Start(
      const HttpServerOptions& options, HttpHandler handler);

  /// Stops accepting, answers nothing further, drains the queue, joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop();

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const { return port_; }
  HttpServerStats stats() const;

  /// Serializes `response` to raw HTTP/1.1 bytes (status line, headers,
  /// body). Exposed for tests; bodies are omitted for HEAD.
  static std::string SerializeResponse(const HttpResponse& response,
                                       bool include_body);

 private:
  HttpServer(const HttpServerOptions& options, HttpHandler handler,
             int listen_fd, int port);

  void AcceptLoop();
  void WorkerLoop();
  /// Reads, parses, dispatches, and answers one connection; closes `fd`.
  void HandleConnection(int fd);
  /// Best-effort minimal response for accept-path rejections.
  void WriteEarlyResponse(int fd, int status, const std::string& reason);

  const HttpServerOptions options_;
  const HttpHandler handler_;
  const int listen_fd_;
  const int port_;

  /// Set once by Stop(); the accept loop polls it after every accept wakeup
  /// and workers re-check it under mu_.
  std::atomic<bool> shutdown_{false};

  Mutex mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ MAROON_GUARDED_BY(mu_);
  bool stopping_ MAROON_GUARDED_BY(mu_) = false;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> rejected_overload_{0};
  std::atomic<int64_t> timeouts_{0};
  std::atomic<int64_t> bad_requests_{0};

  /// Last members: threads may touch every field above immediately.
  std::vector<std::unique_ptr<BackgroundThread>> workers_;
  std::unique_ptr<BackgroundThread> acceptor_;
};

}  // namespace net
}  // namespace maroon

#endif  // MAROON_NET_HTTP_SERVER_H_
