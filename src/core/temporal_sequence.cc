#include "core/temporal_sequence.h"

#include <algorithm>
#include <map>

namespace maroon {

std::string Triple::ToString() const {
  return "<" + std::to_string(interval.begin) + ", " +
         std::to_string(interval.end) + ", " + ValueSetToString(values) + ">";
}

Result<TemporalSequence> TemporalSequence::FromTriples(
    std::vector<Triple> triples) {
  TemporalSequence seq;
  for (Triple& t : triples) {
    MAROON_RETURN_IF_ERROR(seq.Append(std::move(t)));
  }
  return seq;
}

Status TemporalSequence::Append(Triple triple) {
  if (!triple.interval.IsValid()) {
    return Status::InvalidArgument("triple interval " +
                                   triple.interval.ToString() +
                                   " has begin > end");
  }
  if (triple.values.empty()) {
    return Status::InvalidArgument("triple must carry at least one value");
  }
  if (!std::is_sorted(triple.values.begin(), triple.values.end()) ||
      std::adjacent_find(triple.values.begin(), triple.values.end()) !=
          triple.values.end()) {
    return Status::InvalidArgument(
        "triple value set is not canonical (sorted, unique); use "
        "MakeValueSet");
  }
  if (!triples_.empty()) {
    const Triple& last = triples_.back();
    if (triple.interval.begin <= last.interval.end) {
      return Status::InvalidArgument(
          "triple " + triple.ToString() + " does not start after " +
          last.ToString() + "; Def. 1 requires e < b'");
    }
    if (triple.interval.begin == last.interval.end + 1 &&
        triple.values == last.values) {
      return Status::InvalidArgument(
          "adjacent triples must have different value sets (Def. 1); got " +
          ValueSetToString(triple.values) + " twice");
    }
  }
  triples_.push_back(std::move(triple));
  return Status::OK();
}

Status TemporalSequence::Insert(Triple triple) {
  if (!triple.interval.IsValid()) {
    return Status::InvalidArgument("triple interval " +
                                   triple.interval.ToString() +
                                   " has begin > end");
  }
  if (triple.values.empty()) {
    return Status::InvalidArgument("triple must carry at least one value");
  }
  triple.values = MakeValueSet(std::move(triple.values));
  auto pos = std::upper_bound(
      triples_.begin(), triples_.end(), triple,
      [](const Triple& a, const Triple& b) { return a.interval < b.interval; });
  triples_.insert(pos, std::move(triple));
  return Status::OK();
}

void TemporalSequence::Normalize() {
  if (triples_.empty()) return;
  // Union values per instant. Sequences in this system are short (careers,
  // publication histories), so a per-instant map is simple and fast enough.
  std::map<TimePoint, ValueSet> by_instant;
  for (const Triple& tr : triples_) {
    for (TimePoint t = tr.interval.begin; t <= tr.interval.end; ++t) {
      by_instant[t] = ValueSetUnion(by_instant[t], tr.values);
    }
  }
  std::vector<Triple> compressed;
  for (const auto& [t, values] : by_instant) {
    if (!compressed.empty() &&
        compressed.back().interval.end + 1 == t &&
        compressed.back().values == values) {
      compressed.back().interval.end = t;
    } else {
      compressed.emplace_back(Interval(t, t), values);
    }
  }
  triples_ = std::move(compressed);
}

bool TemporalSequence::IsCanonical() const {
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (!triples_[i].interval.IsValid() || triples_[i].values.empty()) {
      return false;
    }
    if (i > 0) {
      if (triples_[i].interval.begin <= triples_[i - 1].interval.end) {
        return false;
      }
      // Adjacent triples with identical value sets should have been merged;
      // across a gap the same value set may legitimately recur.
      if (triples_[i].interval.begin == triples_[i - 1].interval.end + 1 &&
          triples_[i].values == triples_[i - 1].values) {
        return false;
      }
    }
  }
  return true;
}

ValueSet TemporalSequence::ValuesAt(TimePoint t) const {
  ValueSet out;
  for (const Triple& tr : triples_) {
    if (tr.interval.begin > t) break;
    if (tr.interval.Contains(t)) out = ValueSetUnion(out, tr.values);
  }
  return out;
}

std::vector<Interval> TemporalSequence::IntervalsOf(const Value& v) const {
  std::vector<Interval> out;
  for (const Triple& tr : triples_) {
    if (ValueSetContains(tr.values, v)) out.push_back(tr.interval);
  }
  return out;
}

std::vector<Interval> TemporalSequence::AllIntervals() const {
  std::vector<Interval> out;
  out.reserve(triples_.size());
  for (const Triple& tr : triples_) out.push_back(tr.interval);
  return out;
}

int64_t TemporalSequence::Lifespan() const {
  if (triples_.empty()) return 0;
  TimePoint first = triples_.front().interval.begin;
  TimePoint last = first;
  for (const Triple& tr : triples_) {
    last = std::max(last, tr.interval.end);
  }
  return static_cast<int64_t>(last) - first + 1;
}

std::optional<TimePoint> TemporalSequence::LatestOccurrenceBefore(
    const Value& v, TimePoint t, bool strictly_before) const {
  std::optional<TimePoint> best;
  for (const Triple& tr : triples_) {
    if (!ValueSetContains(tr.values, v)) continue;
    TimePoint limit = strictly_before ? t - 1 : t;
    if (tr.interval.begin > limit) continue;
    TimePoint candidate = std::min(tr.interval.end, limit);
    if (!best || candidate > *best) best = candidate;
  }
  return best;
}

bool TemporalSequence::IsCompleteOver(const Interval& window) const {
  return CoverageFraction(window) >= 1.0;
}

double TemporalSequence::CoverageFraction(const Interval& window) const {
  if (!window.IsValid()) return 0.0;
  // Triples may overlap in relaxed mode; merge covered instants.
  int64_t covered = 0;
  TimePoint cursor = window.begin;  // first instant not yet accounted for
  for (const Triple& tr : triples_) {
    Interval iv = tr.interval;
    if (iv.end < cursor) continue;
    if (iv.begin > window.end) break;
    TimePoint from = std::max(iv.begin, cursor);
    TimePoint to = std::min(iv.end, window.end);
    if (from <= to) {
      covered += static_cast<int64_t>(to) - from + 1;
      cursor = to + 1;
      if (cursor > window.end) break;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(window.Length());
}

std::optional<TimePoint> TemporalSequence::EarliestTime() const {
  if (triples_.empty()) return std::nullopt;
  return triples_.front().interval.begin;
}

std::optional<TimePoint> TemporalSequence::LatestTime() const {
  if (triples_.empty()) return std::nullopt;
  TimePoint last = triples_.front().interval.end;
  for (const Triple& tr : triples_) last = std::max(last, tr.interval.end);
  return last;
}

std::string TemporalSequence::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < triples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += triples_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace maroon
