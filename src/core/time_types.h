#ifndef MAROON_CORE_TIME_TYPES_H_
#define MAROON_CORE_TIME_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

namespace maroon {

/// A discrete time instant in the paper's linear time structure (T, <=).
/// The granularity (year, month, ...) is up to the application; experiments
/// in this repository use years.
using TimePoint = int32_t;

/// A closed interval [begin, end] of time instants, begin <= end.
struct Interval {
  TimePoint begin = 0;
  TimePoint end = 0;

  Interval() = default;
  Interval(TimePoint b, TimePoint e) : begin(b), end(e) {}

  /// Number of time instants covered (end - begin + 1); 0 if malformed.
  int64_t Length() const {
    return begin <= end ? static_cast<int64_t>(end) - begin + 1 : 0;
  }

  bool Contains(TimePoint t) const { return begin <= t && t <= end; }

  bool Overlaps(const Interval& other) const {
    return begin <= other.end && other.begin <= end;
  }

  /// True iff begin <= end.
  bool IsValid() const { return begin <= end; }

  /// The intersection with `other`; only meaningful if Overlaps(other).
  Interval Intersect(const Interval& other) const {
    return Interval(std::max(begin, other.begin), std::min(end, other.end));
  }

  std::string ToString() const {
    return "[" + std::to_string(begin) + ", " + std::to_string(end) + "]";
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
  /// Orders by (begin, end); used to keep sequences sorted.
  friend bool operator<(const Interval& a, const Interval& b) {
    return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << iv.ToString();
}

}  // namespace maroon

#endif  // MAROON_CORE_TIME_TYPES_H_
