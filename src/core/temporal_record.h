#ifndef MAROON_CORE_TEMPORAL_RECORD_H_
#define MAROON_CORE_TEMPORAL_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// Identifies a temporal record within a dataset.
using RecordId = uint32_t;

/// Identifies a data source (index into Dataset::sources()).
using SourceId = uint32_t;

/// An independent data source that publishes observations of entities
/// (paper §3). Quality metadata (freshness) is *learnt*, not stored here.
struct DataSource {
  SourceId id = 0;
  std::string name;
};

/// One observation published by a source: attribute values claimed for an
/// entity, the publication timestamp, and the publishing source (paper §3).
/// A missing attribute simply has no entry in `values`.
class TemporalRecord {
 public:
  TemporalRecord() = default;
  TemporalRecord(RecordId id, std::string name, TimePoint timestamp,
                 SourceId source)
      : id_(id),
        name_(std::move(name)),
        timestamp_(timestamp),
        source_(source) {}

  RecordId id() const { return id_; }
  /// The entity name mentioned by the record (used for candidate blocking).
  const std::string& name() const { return name_; }
  TimePoint timestamp() const { return timestamp_; }
  SourceId source() const { return source_; }

  /// Sets attribute `A` to the canonical form of `values`; an empty set
  /// erases the attribute (missing value).
  void SetValue(const Attribute& attribute, ValueSet values);

  /// r.A — the value set for `attribute`, empty if missing.
  const ValueSet& GetValue(const Attribute& attribute) const;

  bool HasAttribute(const Attribute& attribute) const {
    return values_.count(attribute) > 0;
  }

  /// Attributes present in this record, sorted.
  std::vector<Attribute> Attributes() const;

  const std::map<Attribute, ValueSet>& values() const { return values_; }

  std::string ToString() const;

 private:
  RecordId id_ = 0;
  std::string name_;
  std::map<Attribute, ValueSet> values_;
  TimePoint timestamp_ = 0;
  SourceId source_ = 0;
};

}  // namespace maroon

#endif  // MAROON_CORE_TEMPORAL_RECORD_H_
