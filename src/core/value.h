#ifndef MAROON_CORE_VALUE_H_
#define MAROON_CORE_VALUE_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace maroon {

/// An attribute name (e.g., "Title", "Organization").
using Attribute = std::string;

/// A single attribute value. Values are strings; numerical attributes are
/// expected to be bucketed into string categories before entering the system
/// (paper §4.1.2, Discussion).
using Value = std::string;

/// A set of values an attribute holds simultaneously (Def. 1's V).
/// Invariant: sorted ascending with no duplicates. Use MakeValueSet to build.
using ValueSet = std::vector<Value>;

/// Normalizes arbitrary values into a canonical ValueSet (sorted, unique).
ValueSet MakeValueSet(std::vector<Value> values);
ValueSet MakeValueSet(std::initializer_list<Value> values);

/// True iff `set` contains `value` (binary search; `set` must be canonical).
bool ValueSetContains(const ValueSet& set, const Value& value);

/// Union of two canonical value sets, canonical.
ValueSet ValueSetUnion(const ValueSet& a, const ValueSet& b);

/// Intersection of two canonical value sets, canonical.
ValueSet ValueSetIntersection(const ValueSet& a, const ValueSet& b);

/// Renders as "{a, b, c}".
std::string ValueSetToString(const ValueSet& set);

}  // namespace maroon

#endif  // MAROON_CORE_VALUE_H_
