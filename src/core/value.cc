#include "core/value.h"

#include <algorithm>

namespace maroon {

ValueSet MakeValueSet(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

ValueSet MakeValueSet(std::initializer_list<Value> values) {
  return MakeValueSet(std::vector<Value>(values));
}

bool ValueSetContains(const ValueSet& set, const Value& value) {
  return std::binary_search(set.begin(), set.end(), value);
}

ValueSet ValueSetUnion(const ValueSet& a, const ValueSet& b) {
  ValueSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

ValueSet ValueSetIntersection(const ValueSet& a, const ValueSet& b) {
  ValueSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::string ValueSetToString(const ValueSet& set) {
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ", ";
    out += set[i];
  }
  out += "}";
  return out;
}

}  // namespace maroon
