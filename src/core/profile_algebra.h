#ifndef MAROON_CORE_PROFILE_ALGEBRA_H_
#define MAROON_CORE_PROFILE_ALGEBRA_H_

#include <string>
#include <vector>

#include "core/entity_profile.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// Utilities over entity profiles: merging, fact-level diffing, and a
/// human-readable timeline rendering. Used by the CLI, the examples, and
/// evaluation tooling.

/// One (attribute, instant, value) fact of a profile.
struct ProfileFact {
  Attribute attribute;
  TimePoint time = 0;
  Value value;

  friend bool operator==(const ProfileFact& a, const ProfileFact& b) {
    return a.attribute == b.attribute && a.time == b.time &&
           a.value == b.value;
  }
  friend bool operator<(const ProfileFact& a, const ProfileFact& b) {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    if (a.time != b.time) return a.time < b.time;
    return a.value < b.value;
  }
};

/// All facts of `profile`, sorted.
std::vector<ProfileFact> EnumerateProfileFacts(const EntityProfile& profile);

/// The union of two profiles: at every instant each attribute holds the
/// union of the two value sets. Identity/name come from `base`. The result
/// is normalized.
EntityProfile MergeProfiles(const EntityProfile& base,
                            const EntityProfile& addition);

/// Fact-level difference between two profiles.
struct ProfileDiff {
  /// Facts present in `after` but not `before`.
  std::vector<ProfileFact> added;
  /// Facts present in `before` but not `after`.
  std::vector<ProfileFact> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

ProfileDiff DiffProfiles(const EntityProfile& before,
                         const EntityProfile& after);

/// Renders an ASCII timeline of the profile, one row per attribute:
///
///   Title         2000 |Engineer....Manager......Director.|
///
/// Each column is one instant between the profile's earliest and latest
/// time; a state is printed at its first instant and '.' marks
/// continuation, ' ' marks gaps. Intended for terminal inspection.
std::string RenderTimeline(const EntityProfile& profile,
                           size_t max_width = 100);

}  // namespace maroon

#endif  // MAROON_CORE_PROFILE_ALGEBRA_H_
