#include "core/dataset.h"

#include <algorithm>
#include <sstream>

namespace maroon {

SourceId Dataset::AddSource(std::string name) {
  SourceId id = static_cast<SourceId>(sources_.size());
  sources_.push_back(DataSource{id, std::move(name)});
  return id;
}

RecordId Dataset::AddRecord(TemporalRecord record) {
  RecordId id = static_cast<RecordId>(records_.size());
  TemporalRecord stored(id, record.name(), record.timestamp(),
                        record.source());
  for (const auto& [attr, vs] : record.values()) {
    stored.SetValue(attr, vs);
  }
  records_.push_back(std::move(stored));
  labels_.emplace_back();
  return id;
}

size_t Dataset::EraseRecords(const std::vector<RecordId>& ids) {
  std::vector<bool> drop(records_.size(), false);
  size_t erased = 0;
  for (RecordId id : ids) {
    if (id < records_.size() && !drop[id]) {
      drop[id] = true;
      ++erased;
    }
  }
  if (erased == 0) return 0;
  std::vector<TemporalRecord> kept_records;
  std::vector<EntityId> kept_labels;
  kept_records.reserve(records_.size() - erased);
  kept_labels.reserve(records_.size() - erased);
  for (size_t i = 0; i < records_.size(); ++i) {
    if (drop[i]) continue;
    TemporalRecord record = std::move(records_[i]);
    TemporalRecord renumbered(static_cast<RecordId>(kept_records.size()),
                              record.name(), record.timestamp(),
                              record.source());
    for (const auto& [attr, vs] : record.values()) {
      renumbered.SetValue(attr, vs);
    }
    kept_records.push_back(std::move(renumbered));
    kept_labels.push_back(std::move(labels_[i]));
  }
  records_ = std::move(kept_records);
  labels_ = std::move(kept_labels);
  return erased;
}

Status Dataset::SetLabel(RecordId id, EntityId entity) {
  if (id >= records_.size()) {
    return Status::OutOfRange("record id " + std::to_string(id) +
                              " out of range");
  }
  labels_[id] = std::move(entity);
  return Status::OK();
}

const EntityId& Dataset::LabelOf(RecordId id) const {
  static const EntityId* kEmpty = new EntityId();
  return id < labels_.size() ? labels_[id] : *kEmpty;
}

Status Dataset::AddTarget(EntityId id, TargetEntity target) {
  auto [it, inserted] = targets_.emplace(std::move(id), std::move(target));
  if (!inserted) {
    return Status::AlreadyExists("target entity " + it->first +
                                 " already registered");
  }
  return Status::OK();
}

TargetEntity* Dataset::mutable_target(const EntityId& id) {
  auto it = targets_.find(id);
  return it != targets_.end() ? &it->second : nullptr;
}

Result<const TargetEntity*> Dataset::target(const EntityId& id) const {
  auto it = targets_.find(id);
  if (it == targets_.end()) {
    return Status::NotFound("no target entity " + id);
  }
  return &it->second;
}

std::vector<RecordId> Dataset::CandidatesFor(const EntityId& id) const {
  std::vector<RecordId> out;
  auto it = targets_.find(id);
  if (it == targets_.end()) return out;
  const std::string& name = it->second.clean_profile.name();
  for (const TemporalRecord& r : records_) {
    if (r.name() == name) out.push_back(r.id());
  }
  return out;
}

std::vector<RecordId> Dataset::TrueMatchesOf(const EntityId& id) const {
  std::vector<RecordId> out;
  for (RecordId r = 0; r < labels_.size(); ++r) {
    if (labels_[r] == id) out.push_back(r);
  }
  return out;
}

std::string Dataset::StatisticsString() const {
  std::ostringstream os;
  os << "Dataset: " << targets_.size() << " target entities, "
     << records_.size() << " records, " << sources_.size() << " sources\n";
  for (const DataSource& s : sources_) {
    size_t count = 0;
    size_t matched = 0;
    TimePoint lo = 0, hi = 0;
    bool seen = false;
    for (const TemporalRecord& r : records_) {
      if (r.source() != s.id) continue;
      ++count;
      const EntityId& label = LabelOf(r.id());
      if (!label.empty() && targets_.count(label) > 0) ++matched;
      if (!seen) {
        lo = hi = r.timestamp();
        seen = true;
      } else {
        lo = std::min(lo, r.timestamp());
        hi = std::max(hi, r.timestamp());
      }
    }
    os << "  " << s.name << ": " << count << " records, " << matched
       << " matched";
    if (seen) os << ", period " << lo << "-" << hi;
    os << "\n";
  }
  return os.str();
}

}  // namespace maroon
