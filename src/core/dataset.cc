#include "core/dataset.h"

#include <algorithm>
#include <sstream>

namespace maroon {

SourceId Dataset::AddSource(std::string name) {
  SourceId id = static_cast<SourceId>(sources_.size());
  sources_.push_back(DataSource{id, std::move(name)});
  return id;
}

RecordId Dataset::AddRecord(TemporalRecord record) {
  RecordId id = static_cast<RecordId>(records_.size());
  TemporalRecord stored(id, record.name(), record.timestamp(),
                        record.source());
  for (const auto& [attr, vs] : record.values()) {
    stored.SetValue(attr, vs);
  }
  records_.push_back(std::move(stored));
  labels_.emplace_back();
  return id;
}

Status Dataset::SetLabel(RecordId id, EntityId entity) {
  if (id >= records_.size()) {
    return Status::OutOfRange("record id " + std::to_string(id) +
                              " out of range");
  }
  labels_[id] = std::move(entity);
  return Status::OK();
}

const EntityId& Dataset::LabelOf(RecordId id) const {
  static const EntityId* kEmpty = new EntityId();
  return id < labels_.size() ? labels_[id] : *kEmpty;
}

Status Dataset::AddTarget(EntityId id, TargetEntity target) {
  auto [it, inserted] = targets_.emplace(std::move(id), std::move(target));
  if (!inserted) {
    return Status::AlreadyExists("target entity " + it->first +
                                 " already registered");
  }
  return Status::OK();
}

Result<const TargetEntity*> Dataset::target(const EntityId& id) const {
  auto it = targets_.find(id);
  if (it == targets_.end()) {
    return Status::NotFound("no target entity " + id);
  }
  return &it->second;
}

std::vector<RecordId> Dataset::CandidatesFor(const EntityId& id) const {
  std::vector<RecordId> out;
  auto it = targets_.find(id);
  if (it == targets_.end()) return out;
  const std::string& name = it->second.clean_profile.name();
  for (const TemporalRecord& r : records_) {
    if (r.name() == name) out.push_back(r.id());
  }
  return out;
}

std::vector<RecordId> Dataset::TrueMatchesOf(const EntityId& id) const {
  std::vector<RecordId> out;
  for (RecordId r = 0; r < labels_.size(); ++r) {
    if (labels_[r] == id) out.push_back(r);
  }
  return out;
}

std::string Dataset::StatisticsString() const {
  std::ostringstream os;
  os << "Dataset: " << targets_.size() << " target entities, "
     << records_.size() << " records, " << sources_.size() << " sources\n";
  for (const DataSource& s : sources_) {
    size_t count = 0;
    size_t matched = 0;
    TimePoint lo = 0, hi = 0;
    bool seen = false;
    for (const TemporalRecord& r : records_) {
      if (r.source() != s.id) continue;
      ++count;
      const EntityId& label = LabelOf(r.id());
      if (!label.empty() && targets_.count(label) > 0) ++matched;
      if (!seen) {
        lo = hi = r.timestamp();
        seen = true;
      } else {
        lo = std::min(lo, r.timestamp());
        hi = std::max(hi, r.timestamp());
      }
    }
    os << "  " << s.name << ": " << count << " records, " << matched
       << " matched";
    if (seen) os << ", period " << lo << "-" << hi;
    os << "\n";
  }
  return os.str();
}

}  // namespace maroon
