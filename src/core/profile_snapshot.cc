#include "core/profile_snapshot.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/wal.h"
#include "core/entity_profile.h"
#include "core/temporal_sequence.h"
#include "core/value.h"

namespace maroon {

namespace {

constexpr char kSnapshotMagic[4] = {'M', 'R', 'S', 'N'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr size_t kHeaderSize = 8;  // magic + version
constexpr size_t kFooterSize = 4;  // masked body crc
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".mrsn";
constexpr int kSeqDigits = 20;

const failpoint::Registrar kFpSnapshotWrite{
    "snapshot.write", "body write into the snapshot temp file"};
const failpoint::Registrar kFpSnapshotSync{
    "snapshot.sync", "fsync of the snapshot temp file before publish"};
const failpoint::Registrar kFpSnapshotRenameBefore{
    "snapshot.rename.before", "crash window after fsync, before publish"};
const failpoint::Registrar kFpSnapshotRenameAfter{
    "snapshot.rename.after", "crash window after the snapshot is published"};

std::string SerializeBody(const ProfileStore& store, uint64_t last_seq) {
  std::string body;
  PutU64(&body, last_seq);
  const std::vector<EntityId> ids = store.Ids();
  PutU64(&body, ids.size());
  for (const EntityId& id : ids) {
    auto profile = store.Get(id);
    if (!profile.ok()) continue;  // unreachable: id came from Ids()
    const EntityProfile& p = **profile;
    PutLengthPrefixed(&body, p.id());
    PutLengthPrefixed(&body, p.name());
    PutU32(&body, static_cast<uint32_t>(p.sequences().size()));
    for (const auto& [attribute, sequence] : p.sequences()) {
      PutLengthPrefixed(&body, attribute);
      PutU32(&body, static_cast<uint32_t>(sequence.size()));
      for (const Triple& triple : sequence.triples()) {
        PutU32(&body, static_cast<uint32_t>(triple.interval.begin));
        PutU32(&body, static_cast<uint32_t>(triple.interval.end));
        PutU32(&body, static_cast<uint32_t>(triple.values.size()));
        for (const Value& value : triple.values) {
          PutLengthPrefixed(&body, value);
        }
      }
    }
  }
  return body;
}

Status Corrupt(const std::string& path, const char* what) {
  return Status::InvalidArgument("snapshot " + path + " corrupt: " + what);
}

Result<LoadedSnapshot> ParseBody(const std::string& path,
                                 std::string_view body) {
  ByteReader reader(body);
  LoadedSnapshot loaded;
  uint64_t entity_count = 0;
  if (!reader.ReadU64(&loaded.last_seq)) return Corrupt(path, "missing seq");
  if (!reader.ReadU64(&entity_count)) {
    return Corrupt(path, "missing entity count");
  }
  for (uint64_t e = 0; e < entity_count; ++e) {
    std::string id;
    std::string name;
    uint32_t attr_count = 0;
    if (!reader.ReadLengthPrefixed(&id)) {
      return Corrupt(path, "missing entity id");
    }
    if (!reader.ReadLengthPrefixed(&name)) {
      return Corrupt(path, "missing entity name");
    }
    if (!reader.ReadU32(&attr_count)) {
      return Corrupt(path, "missing attribute count");
    }
    EntityProfile profile(std::move(id), std::move(name));
    for (uint32_t a = 0; a < attr_count; ++a) {
      Attribute attribute;
      uint32_t triple_count = 0;
      if (!reader.ReadLengthPrefixed(&attribute)) {
        return Corrupt(path, "missing attribute name");
      }
      if (!reader.ReadU32(&triple_count)) {
        return Corrupt(path, "missing triple count");
      }
      std::vector<Triple> triples;
      triples.reserve(triple_count);
      for (uint32_t t = 0; t < triple_count; ++t) {
        uint32_t begin = 0;
        uint32_t end = 0;
        uint32_t value_count = 0;
        if (!reader.ReadU32(&begin) || !reader.ReadU32(&end) ||
            !reader.ReadU32(&value_count)) {
          return Corrupt(path, "missing triple");
        }
        std::vector<Value> values;
        values.reserve(value_count);
        for (uint32_t v = 0; v < value_count; ++v) {
          Value value;
          if (!reader.ReadLengthPrefixed(&value)) {
            return Corrupt(path, "missing triple value");
          }
          values.push_back(std::move(value));
        }
        triples.emplace_back(static_cast<TimePoint>(begin),
                             static_cast<TimePoint>(end),
                             MakeValueSet(std::move(values)));
      }
      auto sequence = TemporalSequence::FromTriples(std::move(triples));
      if (!sequence.ok()) {
        return Corrupt(path, "non-canonical attribute sequence");
      }
      profile.sequence(attribute) = std::move(*sequence);
    }
    loaded.store.Put(std::move(profile));
  }
  if (!reader.exhausted()) return Corrupt(path, "trailing bytes");
  return loaded;
}

/// Parses "snapshot-<digits>.mrsn" into its sequence; false for any other
/// file name (including .tmp leftovers).
bool ParseSnapshotFileName(const std::string& name, uint64_t* seq) {
  const size_t prefix_len = std::strlen(kSnapshotPrefix);
  const size_t suffix_len = std::strlen(kSnapshotSuffix);
  if (name.size() != prefix_len + kSeqDigits + suffix_len) return false;
  if (name.compare(0, prefix_len, kSnapshotPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) !=
      0) {
    return false;
  }
  const char* first = name.data() + prefix_len;
  const char* last = first + kSeqDigits;
  const auto [ptr, ec] = std::from_chars(first, last, *seq);
  return ec == std::errc() && ptr == last;
}

}  // namespace

std::string SnapshotFileName(uint64_t last_seq) {
  std::string digits = std::to_string(last_seq);
  return kSnapshotPrefix +
         std::string(kSeqDigits - digits.size(), '0') + digits +
         kSnapshotSuffix;
}

Status WriteSnapshot(const ProfileStore& store, uint64_t last_seq,
                     const std::string& dir) {
  std::string blob;
  blob.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&blob, kSnapshotVersion);
  const std::string body = SerializeBody(store, last_seq);
  blob += body;
  PutU32(&blob, Crc32cMask(Crc32c(body)));

  const std::string final_path = dir + "/" + SnapshotFileName(last_seq);
  const std::string tmp_path = final_path + ".tmp";
  MAROON_ASSIGN_OR_RETURN(DurableFile file, DurableFile::Create(tmp_path));
  MAROON_RETURN_IF_ERROR(file.Append(blob, "snapshot.write"));
  MAROON_RETURN_IF_ERROR(file.Sync("snapshot.sync"));
  MAROON_RETURN_IF_ERROR(file.Close());
  return AtomicRename(tmp_path, final_path, "snapshot.rename");
}

Result<LoadedSnapshot> ReadSnapshot(const std::string& path) {
  MAROON_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  if (data.size() < kHeaderSize + kFooterSize) {
    return Corrupt(path, "shorter than header + footer");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt(path, "wrong magic");
  }
  const uint32_t version = GetU32(data.data() + 4);
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot " + path +
                                   " has unsupported version " +
                                   std::to_string(version));
  }
  const std::string_view body(data.data() + kHeaderSize,
                              data.size() - kHeaderSize - kFooterSize);
  const uint32_t stored_crc =
      Crc32cUnmask(GetU32(data.data() + data.size() - kFooterSize));
  if (Crc32c(body) != stored_crc) return Corrupt(path, "checksum mismatch");
  return ParseBody(path, body);
}

Result<std::vector<SnapshotInfo>> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotInfo> snapshots;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return snapshots;
    return Status::IOError("cannot list snapshot directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : it) {
    uint64_t seq = 0;
    if (!ParseSnapshotFileName(entry.path().filename().string(), &seq)) {
      continue;
    }
    snapshots.push_back(SnapshotInfo{entry.path().string(), seq});
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const SnapshotInfo& a, const SnapshotInfo& b) {
              return a.last_seq < b.last_seq;
            });
  return snapshots;
}

Result<LoadedSnapshot> LoadNewestValidSnapshot(const std::string& dir) {
  MAROON_ASSIGN_OR_RETURN(std::vector<SnapshotInfo> snapshots,
                          ListSnapshots(dir));
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto loaded = ReadSnapshot(it->path);
    if (loaded.ok()) return loaded;
    // Damaged candidates are expected after a crash; fall back to the next
    // older snapshot (a longer WAL replay, never corrupt state).
  }
  return Status::NotFound("no valid snapshot in " + dir);
}

}  // namespace maroon
