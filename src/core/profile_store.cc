#include "core/profile_store.h"

#include <algorithm>
#include <set>

namespace maroon {

void ProfileStore::Put(EntityProfile profile) {
  profiles_[profile.id()] = std::move(profile);
  index_dirty_ = true;
}

Status ProfileStore::Remove(const EntityId& id) {
  if (profiles_.erase(id) == 0) {
    return Status::NotFound("no profile with id " + id);
  }
  index_dirty_ = true;
  return Status::OK();
}

Result<const EntityProfile*> ProfileStore::Get(const EntityId& id) const {
  auto it = profiles_.find(id);
  if (it == profiles_.end()) {
    return Status::NotFound("no profile with id " + id);
  }
  return &it->second;
}

void ProfileStore::RebuildIndexIfNeeded() const {
  if (!index_dirty_) return;
  index_.clear();
  by_name_.clear();
  for (const auto& [id, profile] : profiles_) {
    by_name_[profile.name()].push_back(id);
    for (const auto& [attribute, seq] : profile.sequences()) {
      auto& per_value = index_[attribute];
      for (const Triple& tr : seq.triples()) {
        for (const Value& v : tr.values) {
          per_value[v].push_back(Posting{id, tr.interval});
        }
      }
    }
  }
  index_dirty_ = false;
}

std::vector<EntityId> ProfileStore::FindByName(const std::string& name) const {
  RebuildIndexIfNeeded();
  auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : std::vector<EntityId>{};
}

std::vector<EntityId> ProfileStore::FindByValueAt(const Attribute& attribute,
                                                  const Value& value,
                                                  TimePoint t) const {
  RebuildIndexIfNeeded();
  std::vector<EntityId> out;
  auto attr_it = index_.find(attribute);
  if (attr_it == index_.end()) return out;
  auto value_it = attr_it->second.find(value);
  if (value_it == attr_it->second.end()) return out;
  for (const Posting& p : value_it->second) {
    if (p.interval.Contains(t)) out.push_back(p.entity);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EntityId> ProfileStore::FindByValue(const Attribute& attribute,
                                                const Value& value) const {
  RebuildIndexIfNeeded();
  std::vector<EntityId> out;
  auto attr_it = index_.find(attribute);
  if (attr_it == index_.end()) return out;
  auto value_it = attr_it->second.find(value);
  if (value_it == attr_it->second.end()) return out;
  for (const Posting& p : value_it->second) out.push_back(p.entity);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::map<Attribute, ValueSet>> ProfileStore::SnapshotAt(
    const EntityId& id, TimePoint t) const {
  MAROON_ASSIGN_OR_RETURN(const EntityProfile* profile, Get(id));
  std::map<Attribute, ValueSet> snapshot;
  for (const auto& [attribute, seq] : profile->sequences()) {
    ValueSet values = seq.ValuesAt(t);
    if (!values.empty()) snapshot[attribute] = std::move(values);
  }
  return snapshot;
}

std::vector<EntityId> ProfileStore::CoOccurring(const EntityId& id,
                                                const Attribute& attribute,
                                                TimePoint t) const {
  std::vector<EntityId> out;
  auto profile = Get(id);
  if (!profile.ok()) return out;
  const ValueSet values = (*profile)->sequence(attribute).ValuesAt(t);
  std::set<EntityId> seen;
  for (const Value& v : values) {
    for (const EntityId& other : FindByValueAt(attribute, v, t)) {
      if (other != id) seen.insert(other);
    }
  }
  out.assign(seen.begin(), seen.end());
  return out;
}

std::vector<EntityId> ProfileStore::Ids() const {
  std::vector<EntityId> out;
  out.reserve(profiles_.size());
  for (const auto& [id, profile] : profiles_) out.push_back(id);
  return out;
}

}  // namespace maroon
