#include "core/profile_wal.h"

#include <utility>

#include "common/coding.h"
#include "core/entity_profile.h"
#include "core/temporal_sequence.h"
#include "core/value.h"

namespace maroon {

namespace {

/// Streaming FNV-1a (64-bit). Strings are length-prefixed into the hash so
/// ("ab", "c") and ("a", "bc") cannot collide structurally.
class Fnv1a {
 public:
  void Byte(uint8_t b) {
    hash_ ^= b;
    hash_ *= 1099511628211ull;
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) Byte((v >> (8 * i)) & 0xFF);
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte((v >> (8 * i)) & 0xFF);
  }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) Byte(static_cast<uint8_t>(c));
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace

std::string EncodeTemporalRecord(const TemporalRecord& record) {
  std::string out;
  PutU32(&out, record.id());
  PutLengthPrefixed(&out, record.name());
  PutU32(&out, static_cast<uint32_t>(record.timestamp()));
  PutU32(&out, record.source());
  PutU32(&out, static_cast<uint32_t>(record.values().size()));
  for (const auto& [attribute, values] : record.values()) {
    PutLengthPrefixed(&out, attribute);
    PutU32(&out, static_cast<uint32_t>(values.size()));
    for (const Value& value : values) {
      PutLengthPrefixed(&out, value);
    }
  }
  return out;
}

Result<TemporalRecord> DecodeTemporalRecord(std::string_view bytes) {
  ByteReader reader(bytes);
  const auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("record payload corrupt: ") +
                                   what);
  };
  uint32_t id = 0;
  std::string name;
  uint32_t timestamp = 0;
  uint32_t source = 0;
  uint32_t attr_count = 0;
  if (!reader.ReadU32(&id)) return corrupt("missing record id");
  if (!reader.ReadLengthPrefixed(&name)) return corrupt("missing name");
  if (!reader.ReadU32(&timestamp)) return corrupt("missing timestamp");
  if (!reader.ReadU32(&source)) return corrupt("missing source");
  if (!reader.ReadU32(&attr_count)) return corrupt("missing attribute count");

  TemporalRecord record(id, std::move(name),
                        static_cast<TimePoint>(timestamp), source);
  for (uint32_t a = 0; a < attr_count; ++a) {
    Attribute attribute;
    uint32_t value_count = 0;
    if (!reader.ReadLengthPrefixed(&attribute)) {
      return corrupt("missing attribute name");
    }
    if (!reader.ReadU32(&value_count)) return corrupt("missing value count");
    std::vector<Value> values;
    values.reserve(value_count);
    for (uint32_t v = 0; v < value_count; ++v) {
      Value value;
      if (!reader.ReadLengthPrefixed(&value)) return corrupt("missing value");
      values.push_back(std::move(value));
    }
    record.SetValue(attribute, MakeValueSet(std::move(values)));
  }
  if (!reader.exhausted()) return corrupt("trailing bytes");
  return record;
}

Result<EntityId> ApplyRecordToStore(const TemporalRecord& record,
                                    ProfileStore* store) {
  const std::vector<EntityId> matches = store->FindByName(record.name());
  EntityProfile profile;
  if (!matches.empty()) {
    // FindByName returns ids sorted ascending — the front is the
    // deterministic tie-break.
    auto existing = store->Get(matches.front());
    if (!existing.ok()) return existing.status();
    profile = **existing;
  } else {
    profile = EntityProfile(
        kStreamEntityPrefix + std::to_string(record.id()), record.name());
  }
  for (const auto& [attribute, values] : record.values()) {
    if (values.empty()) continue;
    MAROON_RETURN_IF_ERROR(profile.sequence(attribute)
                               .Insert(Triple(record.timestamp(),
                                              record.timestamp(), values)));
  }
  profile.Normalize();
  EntityId target = profile.id();
  store->Put(std::move(profile));
  return target;
}

uint64_t HashProfileStore(const ProfileStore& store) {
  Fnv1a fnv;
  const std::vector<EntityId> ids = store.Ids();
  fnv.U64(ids.size());
  for (const EntityId& id : ids) {
    auto profile = store.Get(id);
    if (!profile.ok()) continue;  // unreachable: id came from Ids()
    const EntityProfile& p = **profile;
    fnv.Str(p.id());
    fnv.Str(p.name());
    fnv.U64(p.sequences().size());
    for (const auto& [attribute, sequence] : p.sequences()) {
      fnv.Str(attribute);
      fnv.U64(sequence.size());
      for (const Triple& triple : sequence.triples()) {
        fnv.U32(static_cast<uint32_t>(triple.interval.begin));
        fnv.U32(static_cast<uint32_t>(triple.interval.end));
        fnv.U64(triple.values.size());
        for (const Value& value : triple.values) fnv.Str(value);
      }
    }
  }
  return fnv.hash();
}

Result<ProfileWalReplay> ReplayProfileWal(const std::string& path,
                                          uint64_t after_seq) {
  MAROON_ASSIGN_OR_RETURN(WalReadResult scan, ReadWal(path));
  ProfileWalReplay replay;
  replay.torn_bytes = scan.torn_bytes;
  replay.truncation_reason = std::move(scan.truncation_reason);
  for (WalFrame& frame : scan.frames) {
    replay.last_seq = frame.seq;
    if (frame.seq <= after_seq) continue;
    auto record = DecodeTemporalRecord(frame.payload);
    if (!record.ok()) {
      return Status::InvalidArgument(
          "WAL frame seq " + std::to_string(frame.seq) +
          " is CRC-valid but undecodable: " + record.status().message());
    }
    replay.records.push_back(ReplayedRecord{frame.seq, std::move(*record)});
  }
  return replay;
}

Result<ProfileWal> ProfileWal::Open(const std::string& path,
                                    const WalWriterOptions& options) {
  MAROON_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Open(path, options));
  return ProfileWal(std::move(writer));
}

Status ProfileWal::Append(const TemporalRecord& record) {
  return writer_.Append(writer_.last_seq() + 1, EncodeTemporalRecord(record));
}

Status ProfileWal::Sync() { return writer_.Sync(); }

Status ProfileWal::Close() { return writer_.Close(); }

}  // namespace maroon
