#ifndef MAROON_CORE_DATASET_IO_H_
#define MAROON_CORE_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/validation.h"

namespace maroon {

/// CSV serialization of datasets and profiles, so generated corpora can be
/// persisted, inspected, and reloaded (and external data imported).
///
/// Records file (one row per record):
///   id,name,timestamp,source,label,<attr1>,<attr2>,...
/// with a header row naming the schema attributes; multi-valued cells join
/// values with "; ". Sources are stored by name and re-registered on load in
/// first-appearance order of the sources file.
///
/// Profiles file (one row per triple):
///   entity_id,entity_name,kind,attribute,begin,end,values
/// where kind is "clean" or "truth"; the entity's target registration is
/// rebuilt from both kinds.
///
/// Sources file (one row per source): id,name.

/// Writes the three files under `directory` (created by the caller) as
/// records.csv, profiles.csv, sources.csv.
Status WriteDatasetCsv(const Dataset& dataset, const std::string& directory);

/// Reads a dataset previously written by WriteDatasetCsv. Strict: the first
/// malformed row aborts the whole load.
Result<Dataset> ReadDatasetCsv(const std::string& directory);

/// Options for the validating load path.
struct CsvLoadOptions {
  /// Row handling and the semantic post-validation policy. kStrict fails on
  /// the first error; kQuarantine/kRepair drop (or fix) bad rows/records and
  /// keep loading.
  ValidationOptions validation;
  /// When no plausible_window is set, derive one from the loaded target
  /// profiles (PlausibleWindowOf) before the semantic validation pass, so
  /// out-of-window record timestamps are flagged.
  bool infer_plausible_window = false;
};

/// Reads a dataset with full validation. Structural row faults (wrong column
/// count, bad timestamps, duplicate record ids, unknown sources, inverted
/// profile intervals) are handled per `options.validation.policy`, then the
/// in-memory dataset goes through ValidateDataset for semantic checks.
/// `report`, if non-null, receives every issue, quarantine, and repair even
/// when the load fails.
Result<Dataset> ReadDatasetCsv(const std::string& directory,
                               const CsvLoadOptions& options,
                               ValidationReport* report);

/// Parses a CSV time-point cell: surrounding ASCII whitespace is tolerated,
/// anything else non-numeric (including trailing garbage) is rejected with a
/// precise message. Exposed for tests and tooling.
Status ParseTimePoint(const std::string& cell, TimePoint* out);

/// Serializes one profile's triples into rows (kind as given); exposed for
/// tests and tooling.
[[nodiscard]] std::string ProfileToCsv(const EntityProfile& profile,
                                       const std::string& kind);

}  // namespace maroon

#endif  // MAROON_CORE_DATASET_IO_H_
