#ifndef MAROON_CORE_DATASET_IO_H_
#define MAROON_CORE_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/dataset.h"

namespace maroon {

/// CSV serialization of datasets and profiles, so generated corpora can be
/// persisted, inspected, and reloaded (and external data imported).
///
/// Records file (one row per record):
///   id,name,timestamp,source,label,<attr1>,<attr2>,...
/// with a header row naming the schema attributes; multi-valued cells join
/// values with "; ". Sources are stored by name and re-registered on load in
/// first-appearance order of the sources file.
///
/// Profiles file (one row per triple):
///   entity_id,entity_name,kind,attribute,begin,end,values
/// where kind is "clean" or "truth"; the entity's target registration is
/// rebuilt from both kinds.
///
/// Sources file (one row per source): id,name.

/// Writes the three files under `directory` (created by the caller) as
/// records.csv, profiles.csv, sources.csv.
Status WriteDatasetCsv(const Dataset& dataset, const std::string& directory);

/// Reads a dataset previously written by WriteDatasetCsv.
Result<Dataset> ReadDatasetCsv(const std::string& directory);

/// Serializes one profile's triples into rows (kind as given); exposed for
/// tests and tooling.
std::string ProfileToCsv(const EntityProfile& profile,
                         const std::string& kind);

}  // namespace maroon

#endif  // MAROON_CORE_DATASET_IO_H_
