#include "core/dataset_io.h"

#include <charconv>
#include <map>
#include <system_error>

#include "common/csv.h"
#include "common/string_util.h"

namespace maroon {

namespace {

constexpr char kValueSeparator[] = "; ";

std::string JoinValues(const ValueSet& values) {
  return Join(values, kValueSeparator);
}

ValueSet SplitValues(const std::string& cell) {
  if (cell.empty()) return {};
  std::vector<std::string> parts = Split(cell, ';');
  std::vector<Value> values;
  for (std::string& p : parts) {
    std::string trimmed(StripWhitespace(p));
    if (!trimmed.empty()) values.push_back(std::move(trimmed));
  }
  return MakeValueSet(std::move(values));
}

Status ParseTimePoint(const std::string& cell, TimePoint* out) {
  int32_t value = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    return Status::InvalidArgument("cannot parse time point '" + cell + "'");
  }
  *out = value;
  return Status::OK();
}

}  // namespace

std::string ProfileToCsv(const EntityProfile& profile,
                         const std::string& kind) {
  CsvWriter writer;
  for (const auto& [attribute, seq] : profile.sequences()) {
    for (const Triple& tr : seq.triples()) {
      writer.AppendRow({profile.id(), profile.name(), kind, attribute,
                        std::to_string(tr.interval.begin),
                        std::to_string(tr.interval.end),
                        JoinValues(tr.values)});
    }
  }
  return writer.text();
}

Status WriteDatasetCsv(const Dataset& dataset, const std::string& directory) {
  // sources.csv
  {
    CsvWriter writer;
    writer.AppendRow({"id", "name"});
    for (const DataSource& s : dataset.sources()) {
      writer.AppendRow({std::to_string(s.id), s.name});
    }
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/sources.csv"));
  }
  // records.csv
  {
    CsvWriter writer;
    std::vector<std::string> header = {"id", "name", "timestamp", "source",
                                       "label"};
    for (const Attribute& a : dataset.attributes()) header.push_back(a);
    writer.AppendRow(header);
    for (const TemporalRecord& r : dataset.records()) {
      std::vector<std::string> row = {
          std::to_string(r.id()), r.name(), std::to_string(r.timestamp()),
          dataset.source(r.source()).name, dataset.LabelOf(r.id())};
      for (const Attribute& a : dataset.attributes()) {
        row.push_back(JoinValues(r.GetValue(a)));
      }
      writer.AppendRow(row);
    }
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/records.csv"));
  }
  // profiles.csv
  {
    CsvWriter clean;
    clean.AppendRow({"entity_id", "entity_name", "kind", "attribute", "begin",
                     "end", "values"});
    for (const auto& [id, target] : dataset.targets()) {
      for (const auto& [kind, profile] :
           {std::pair<std::string, const EntityProfile*>{
                "clean", &target.clean_profile},
            std::pair<std::string, const EntityProfile*>{
                "truth", &target.ground_truth}}) {
        for (const auto& [attribute, seq] : profile->sequences()) {
          for (const Triple& tr : seq.triples()) {
            clean.AppendRow({id, profile->name(), kind, attribute,
                             std::to_string(tr.interval.begin),
                             std::to_string(tr.interval.end),
                             JoinValues(tr.values)});
          }
        }
      }
    }
    MAROON_RETURN_IF_ERROR(clean.WriteToFile(directory + "/profiles.csv"));
  }
  return Status::OK();
}

Result<Dataset> ReadDatasetCsv(const std::string& directory) {
  Dataset dataset;

  // sources.csv
  std::map<std::string, SourceId> source_ids;
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/sources.csv"));
    if (rows.empty()) {
      return Status::InvalidArgument("sources.csv is empty");
    }
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() < 2) {
        return Status::InvalidArgument("sources.csv row " +
                                       std::to_string(i) + " malformed");
      }
      source_ids[rows[i][1]] = dataset.AddSource(rows[i][1]);
    }
  }

  // records.csv
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/records.csv"));
    if (rows.empty()) {
      return Status::InvalidArgument("records.csv is empty");
    }
    const std::vector<std::string>& header = rows[0];
    if (header.size() < 5) {
      return Status::InvalidArgument("records.csv header too short");
    }
    std::vector<Attribute> attributes(header.begin() + 5, header.end());
    dataset.SetAttributes(attributes);

    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (row.size() != header.size()) {
        return Status::InvalidArgument("records.csv row " +
                                       std::to_string(i) +
                                       " has wrong column count");
      }
      TimePoint timestamp = 0;
      MAROON_RETURN_IF_ERROR(ParseTimePoint(row[2], &timestamp));
      auto source_it = source_ids.find(row[3]);
      if (source_it == source_ids.end()) {
        return Status::InvalidArgument("records.csv row " +
                                       std::to_string(i) +
                                       " references unknown source '" +
                                       row[3] + "'");
      }
      TemporalRecord record(0, row[1], timestamp, source_it->second);
      for (size_t a = 0; a < attributes.size(); ++a) {
        record.SetValue(attributes[a], SplitValues(row[5 + a]));
      }
      const RecordId id = dataset.AddRecord(std::move(record));
      if (!row[4].empty()) {
        MAROON_RETURN_IF_ERROR(dataset.SetLabel(id, row[4]));
      }
    }
  }

  // profiles.csv
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/profiles.csv"));
    std::map<EntityId, TargetEntity> targets;
    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      if (row.size() != 7) {
        return Status::InvalidArgument("profiles.csv row " +
                                       std::to_string(i) +
                                       " has wrong column count");
      }
      const EntityId& id = row[0];
      TargetEntity& target = targets[id];
      EntityProfile* profile = nullptr;
      if (row[2] == "clean") {
        profile = &target.clean_profile;
      } else if (row[2] == "truth") {
        profile = &target.ground_truth;
      } else {
        return Status::InvalidArgument("profiles.csv row " +
                                       std::to_string(i) +
                                       " has unknown kind '" + row[2] + "'");
      }
      if (profile->id().empty()) {
        *profile = EntityProfile(id, row[1]);
      }
      TimePoint begin = 0, end = 0;
      MAROON_RETURN_IF_ERROR(ParseTimePoint(row[4], &begin));
      MAROON_RETURN_IF_ERROR(ParseTimePoint(row[5], &end));
      MAROON_RETURN_IF_ERROR(profile->sequence(row[3]).Insert(
          Triple(Interval(begin, end), SplitValues(row[6]))));
    }
    for (auto& [id, target] : targets) {
      // Insert() tolerates any order; restore canonical form.
      target.clean_profile.Normalize();
      target.ground_truth.Normalize();
      MAROON_RETURN_IF_ERROR(dataset.AddTarget(id, std::move(target)));
    }
  }
  return dataset;
}

}  // namespace maroon
