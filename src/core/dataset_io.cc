#include "core/dataset_io.h"

#include <charconv>
#include <map>
#include <set>
#include <system_error>
#include <utility>

#include "common/csv.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace maroon {

namespace {

constexpr char kValueSeparator[] = "; ";

std::string JoinValues(const ValueSet& values) {
  return Join(values, kValueSeparator);
}

ValueSet SplitValues(const std::string& cell) {
  if (cell.empty()) return {};
  std::vector<std::string> parts = Split(cell, ';');
  std::vector<Value> values;
  for (std::string& p : parts) {
    std::string trimmed(StripWhitespace(p));
    if (!trimmed.empty()) values.push_back(std::move(trimmed));
  }
  return MakeValueSet(std::move(values));
}

/// Shared state of one load: the policy decides whether a malformed row
/// aborts the load (strict) or is quarantined into the report (lenient).
struct LoadContext {
  RepairPolicy policy = RepairPolicy::kStrict;
  ValidationReport* report = nullptr;  // always non-null internally

  bool lenient() const { return policy != RepairPolicy::kStrict; }

  /// Registers a bad row. Strict: returns the error to propagate. Lenient:
  /// records the issue, counts the quarantined row, and returns OK so the
  /// caller can skip the row and continue.
  Status BadRow(IssueCode code, std::string location, std::string detail) {
    if (!lenient()) {
      return Status::InvalidArgument(location + ": " + detail);
    }
    report->issues.push_back(ValidationIssue{
        code, IssueSeverity::kError, std::move(location), std::move(detail)});
    ++report->quarantined_rows;
    return Status::OK();
  }
};

Result<Dataset> ReadDatasetCsvImpl(const std::string& directory,
                                   const CsvLoadOptions& options,
                                   bool post_validate,
                                   ValidationReport* report) {
  MAROON_TRACE_SPAN("io.read_dataset");
  ValidationReport scratch;
  LoadContext ctx{options.validation.policy,
                  report != nullptr ? report : &scratch};
  Dataset dataset;

  // sources.csv
  std::map<std::string, SourceId> source_ids;
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/sources.csv"));
    if (rows.empty()) {
      return Status::InvalidArgument("sources.csv is empty");
    }
    for (size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() < 2) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(
            IssueCode::kWrongColumnCount,
            "sources.csv row " + std::to_string(i),
            "expected 2 columns, got " + std::to_string(rows[i].size())));
        continue;
      }
      if (source_ids.count(rows[i][1]) == 0) {
        source_ids[rows[i][1]] = dataset.AddSource(rows[i][1]);
      }
    }
  }

  // records.csv
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/records.csv"));
    if (rows.empty()) {
      return Status::InvalidArgument("records.csv is empty");
    }
    const std::vector<std::string>& header = rows[0];
    if (header.size() < 5) {
      return Status::InvalidArgument("records.csv header too short");
    }
    std::vector<Attribute> attributes(header.begin() + 5, header.end());
    dataset.SetAttributes(attributes);

    std::set<std::string> seen_ids;
    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      const std::string location = "records.csv row " + std::to_string(i);
      if (row.size() != header.size()) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(
            IssueCode::kWrongColumnCount, location,
            "expected " + std::to_string(header.size()) + " columns, got " +
                std::to_string(row.size())));
        continue;
      }
      if (!seen_ids.insert(row[0]).second) {
        MAROON_RETURN_IF_ERROR(
            ctx.BadRow(IssueCode::kDuplicateRecordId, location,
                       "record id '" + row[0] + "' already appeared"));
        continue;
      }
      TimePoint timestamp = 0;
      if (Status parsed = ParseTimePoint(row[2], &timestamp); !parsed.ok()) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(IssueCode::kBadTimestamp, location,
                                          parsed.message()));
        continue;
      }
      auto source_it = source_ids.find(row[3]);
      if (source_it == source_ids.end()) {
        MAROON_RETURN_IF_ERROR(
            ctx.BadRow(IssueCode::kUnknownSource, location,
                       "references unknown source '" + row[3] + "'"));
        continue;
      }
      if (ctx.lenient() && StripWhitespace(row[1]).empty()) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(IssueCode::kMissingName, location,
                                          "record mentions no entity name"));
        continue;
      }
      TemporalRecord record(0, row[1], timestamp, source_it->second);
      for (size_t a = 0; a < attributes.size(); ++a) {
        record.SetValue(attributes[a], SplitValues(row[5 + a]));
      }
      const RecordId id = dataset.AddRecord(std::move(record));
      if (!row[4].empty()) {
        MAROON_RETURN_IF_ERROR(dataset.SetLabel(id, row[4]));
      }
    }
  }

  // profiles.csv
  {
    MAROON_ASSIGN_OR_RETURN(auto rows,
                            ReadCsvFile(directory + "/profiles.csv"));
    std::map<EntityId, TargetEntity> targets;
    for (size_t i = 1; i < rows.size(); ++i) {
      const auto& row = rows[i];
      const std::string location = "profiles.csv row " + std::to_string(i);
      if (row.size() != 7) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(
            IssueCode::kWrongColumnCount, location,
            "expected 7 columns, got " + std::to_string(row.size())));
        continue;
      }
      const EntityId& id = row[0];
      EntityProfile* profile = nullptr;
      if (row[2] == "clean") {
        profile = &targets[id].clean_profile;
      } else if (row[2] == "truth") {
        profile = &targets[id].ground_truth;
      } else {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(IssueCode::kBadRow, location,
                                          "unknown kind '" + row[2] + "'"));
        continue;
      }
      if (profile->id().empty()) {
        *profile = EntityProfile(id, row[1]);
      }
      TimePoint begin = 0, end = 0;
      Status parsed = ParseTimePoint(row[4], &begin);
      if (parsed.ok()) parsed = ParseTimePoint(row[5], &end);
      if (!parsed.ok()) {
        MAROON_RETURN_IF_ERROR(ctx.BadRow(IssueCode::kBadTimestamp, location,
                                          parsed.message()));
        continue;
      }
      if (begin > end) {
        if (ctx.policy == RepairPolicy::kRepair) {
          ctx.report->issues.push_back(ValidationIssue{
              IssueCode::kInvertedInterval, IssueSeverity::kError, location,
              "interval [" + std::to_string(begin) + ", " +
                  std::to_string(end) + "] has begin > end; swapped"});
          std::swap(begin, end);
          ++ctx.report->repairs_applied;
        } else {
          MAROON_RETURN_IF_ERROR(ctx.BadRow(
              IssueCode::kInvertedInterval, location,
              "interval [" + std::to_string(begin) + ", " +
                  std::to_string(end) + "] has begin > end"));
          continue;
        }
      }
      const Status inserted = profile->sequence(row[3]).Insert(
          Triple(Interval(begin, end), SplitValues(row[6])));
      if (!inserted.ok()) {
        MAROON_RETURN_IF_ERROR(
            ctx.BadRow(IssueCode::kBadRow, location, inserted.message()));
        continue;
      }
    }
    for (auto& [id, target] : targets) {
      // Insert() tolerates any order; restore canonical form.
      target.clean_profile.Normalize();
      target.ground_truth.Normalize();
      MAROON_RETURN_IF_ERROR(dataset.AddTarget(id, std::move(target)));
    }
  }

  if (post_validate) {
    ValidationOptions semantic = options.validation;
    if (!semantic.plausible_window.has_value() &&
        options.infer_plausible_window) {
      semantic.plausible_window = PlausibleWindowOf(dataset);
    }
    ValidationReport semantic_report = ValidateDataset(&dataset, semantic);
    ctx.report->Merge(std::move(semantic_report));
    if (!ctx.lenient()) {
      MAROON_RETURN_IF_ERROR(ctx.report->ToStatus());
    }
  }
  PublishValidationMetrics(*ctx.report);
  return dataset;
}

}  // namespace

Status ParseTimePoint(const std::string& cell, TimePoint* out) {
  const std::string_view trimmed = StripWhitespace(cell);
  if (trimmed.empty()) {
    return Status::InvalidArgument(
        cell.empty() ? "cannot parse time point from empty cell"
                     : "cannot parse time point from whitespace-only cell '" +
                           cell + "'");
  }
  int32_t value = 0;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("time point '" + std::string(trimmed) +
                                   "' is out of the 32-bit range");
  }
  if (ec != std::errc{}) {
    return Status::InvalidArgument("time point '" + std::string(trimmed) +
                                   "' is not an integer");
  }
  if (ptr != end) {
    return Status::InvalidArgument("time point '" + std::string(trimmed) +
                                   "' has trailing garbage '" +
                                   std::string(ptr, end) + "'");
  }
  *out = value;
  return Status::OK();
}

std::string ProfileToCsv(const EntityProfile& profile,
                         const std::string& kind) {
  CsvWriter writer;
  for (const auto& [attribute, seq] : profile.sequences()) {
    for (const Triple& tr : seq.triples()) {
      writer.AppendRow({profile.id(), profile.name(), kind, attribute,
                        std::to_string(tr.interval.begin),
                        std::to_string(tr.interval.end),
                        JoinValues(tr.values)});
    }
  }
  return writer.text();
}

Status WriteDatasetCsv(const Dataset& dataset, const std::string& directory) {
  // sources.csv
  {
    CsvWriter writer;
    writer.AppendRow({"id", "name"});
    for (const DataSource& s : dataset.sources()) {
      writer.AppendRow({std::to_string(s.id), s.name});
    }
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/sources.csv"));
  }
  // records.csv
  {
    CsvWriter writer;
    std::vector<std::string> header = {"id", "name", "timestamp", "source",
                                       "label"};
    for (const Attribute& a : dataset.attributes()) header.push_back(a);
    writer.AppendRow(header);
    for (const TemporalRecord& r : dataset.records()) {
      std::vector<std::string> row = {
          std::to_string(r.id()), r.name(), std::to_string(r.timestamp()),
          dataset.source(r.source()).name, dataset.LabelOf(r.id())};
      for (const Attribute& a : dataset.attributes()) {
        row.push_back(JoinValues(r.GetValue(a)));
      }
      writer.AppendRow(row);
    }
    MAROON_RETURN_IF_ERROR(writer.WriteToFile(directory + "/records.csv"));
  }
  // profiles.csv
  {
    CsvWriter clean;
    clean.AppendRow({"entity_id", "entity_name", "kind", "attribute", "begin",
                     "end", "values"});
    for (const auto& [id, target] : dataset.targets()) {
      for (const auto& [kind, profile] :
           {std::pair<std::string, const EntityProfile*>{
                "clean", &target.clean_profile},
            std::pair<std::string, const EntityProfile*>{
                "truth", &target.ground_truth}}) {
        for (const auto& [attribute, seq] : profile->sequences()) {
          for (const Triple& tr : seq.triples()) {
            clean.AppendRow({id, profile->name(), kind, attribute,
                             std::to_string(tr.interval.begin),
                             std::to_string(tr.interval.end),
                             JoinValues(tr.values)});
          }
        }
      }
    }
    MAROON_RETURN_IF_ERROR(clean.WriteToFile(directory + "/profiles.csv"));
  }
  return Status::OK();
}

Result<Dataset> ReadDatasetCsv(const std::string& directory) {
  // Legacy strict load: row-level checks only, no semantic post-validation,
  // exactly the pre-validation-layer behavior.
  return ReadDatasetCsvImpl(directory, CsvLoadOptions{},
                            /*post_validate=*/false, nullptr);
}

Result<Dataset> ReadDatasetCsv(const std::string& directory,
                               const CsvLoadOptions& options,
                               ValidationReport* report) {
  return ReadDatasetCsvImpl(directory, options, /*post_validate=*/true,
                            report);
}

}  // namespace maroon
