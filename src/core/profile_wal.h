#ifndef MAROON_CORE_PROFILE_WAL_H_
#define MAROON_CORE_PROFILE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/wal.h"
#include "core/profile_store.h"
#include "core/temporal_record.h"

namespace maroon {

/// The durable streaming contract: a TemporalRecord is appended to the
/// profile WAL *before* it mutates the ProfileStore, and the apply step is a
/// pure function of (record, store). Recovery therefore reduces to replaying
/// the WAL tail over the newest snapshot — the recovered store is
/// bit-for-bit the store an uninterrupted run would have built, which
/// HashProfileStore verifies.

/// Binary payload codec (all integers little-endian; `lp` is a u32 length
/// prefix followed by raw bytes). Versioning lives in the WAL file header,
/// not the payload:
///
///   u32 record_id  lp name  u32 timestamp (two's complement)  u32 source
///   u32 attr_count  (lp attribute  u32 value_count  lp value*)*
std::string EncodeTemporalRecord(const TemporalRecord& record);

/// Decodes a payload produced by EncodeTemporalRecord. InvalidArgument on
/// truncation or trailing garbage — a CRC-valid frame that fails here is
/// an encoder/decoder version skew, not a torn write.
Result<TemporalRecord> DecodeTemporalRecord(std::string_view bytes);

/// Entity ids minted for stream-spawned profiles: kStreamEntityPrefix +
/// decimal record id of the first record that mentioned the name.
inline constexpr char kStreamEntityPrefix[] = "w";

/// Applies one admitted record to the store, deterministically:
///   - exact-name routing: the record joins the profile whose display name
///     equals record.name(); ties break to the smallest entity id;
///   - no match spawns a new profile with id kStreamEntityPrefix +
///     record.id() (record ids are unique per stream, so replaying the same
///     records always mints the same ids);
///   - every attribute value set lands as a [t, t] triple and the profile is
///     re-normalized.
/// Returns the id of the profile the record landed in.
Result<EntityId> ApplyRecordToStore(const TemporalRecord& record,
                                    ProfileStore* store);

/// FNV-1a over a canonical traversal of the store (ids sorted, attributes
/// sorted, triples in sequence order, every string length-prefixed).
/// Deliberately independent of the snapshot byte format so the hash stays
/// comparable across snapshot format versions.
uint64_t HashProfileStore(const ProfileStore& store);

/// One decoded WAL frame.
struct ReplayedRecord {
  uint64_t seq = 0;
  TemporalRecord record;
};

struct ProfileWalReplay {
  /// Records with seq > the requested floor, in log order.
  std::vector<ReplayedRecord> records;
  /// Highest valid sequence in the log (including skipped frames).
  uint64_t last_seq = 0;
  /// Torn-tail accounting, forwarded from ReadWal.
  uint64_t torn_bytes = 0;
  std::string truncation_reason;
};

/// Replays the profile WAL at `path`, decoding every frame with
/// seq > `after_seq` (pass a snapshot's last_seq to replay only the tail).
/// A torn tail is reported, not an error; an undecodable CRC-valid payload
/// is an error.
Result<ProfileWalReplay> ReplayProfileWal(const std::string& path,
                                          uint64_t after_seq = 0);

/// Append-side binding of the record codec onto WalWriter. Sequence numbers
/// are the apply index: 1 for the first record ever logged, resuming past
/// the highest replayed frame when the file already exists.
class ProfileWal {
 public:
  static Result<ProfileWal> Open(const std::string& path,
                                 const WalWriterOptions& options = {});

  /// Encodes and appends `record` under seq last_seq()+1. The record is
  /// durable (per the sync cadence) once this returns OK; IO failures are
  /// transient — the writer rolled back to a frame boundary and the same
  /// record may be retried.
  Status Append(const TemporalRecord& record);

  Status Sync();
  Status Close();

  uint64_t last_seq() const { return writer_.last_seq(); }
  uint64_t frames_appended() const { return writer_.frames_appended(); }
  uint64_t syncs() const { return writer_.syncs(); }
  uint64_t repaired_bytes() const { return writer_.repaired_bytes(); }

 private:
  explicit ProfileWal(WalWriter writer) : writer_(std::move(writer)) {}

  WalWriter writer_;
};

}  // namespace maroon

#endif  // MAROON_CORE_PROFILE_WAL_H_
