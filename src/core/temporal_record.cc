#include "core/temporal_record.h"

namespace maroon {

namespace {
const ValueSet& EmptyValueSet() {
  static const ValueSet* kEmpty = new ValueSet();
  return *kEmpty;
}
}  // namespace

void TemporalRecord::SetValue(const Attribute& attribute, ValueSet values) {
  if (values.empty()) {
    values_.erase(attribute);
    return;
  }
  values_[attribute] = MakeValueSet(std::move(values));
}

const ValueSet& TemporalRecord::GetValue(const Attribute& attribute) const {
  auto it = values_.find(attribute);
  return it != values_.end() ? it->second : EmptyValueSet();
}

std::vector<Attribute> TemporalRecord::Attributes() const {
  std::vector<Attribute> out;
  out.reserve(values_.size());
  for (const auto& [attr, vs] : values_) out.push_back(attr);
  return out;
}

std::string TemporalRecord::ToString() const {
  std::string out =
      "Record(" + std::to_string(id_) + ", \"" + name_ + "\", t=" +
      std::to_string(timestamp_) + ", s=" + std::to_string(source_) + ")";
  for (const auto& [attr, vs] : values_) {
    out += " " + attr + "=" + ValueSetToString(vs);
  }
  return out;
}

}  // namespace maroon
