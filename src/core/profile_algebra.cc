#include "core/profile_algebra.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace maroon {

std::vector<ProfileFact> EnumerateProfileFacts(const EntityProfile& profile) {
  std::vector<ProfileFact> facts;
  for (const auto& [attribute, seq] : profile.sequences()) {
    for (const Triple& tr : seq.triples()) {
      for (TimePoint t = tr.interval.begin; t <= tr.interval.end; ++t) {
        for (const Value& v : tr.values) {
          facts.push_back(ProfileFact{attribute, t, v});
        }
      }
    }
  }
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  return facts;
}

EntityProfile MergeProfiles(const EntityProfile& base,
                            const EntityProfile& addition) {
  EntityProfile merged = base;
  for (const auto& [attribute, seq] : addition.sequences()) {
    TemporalSequence& target = merged.sequence(attribute);
    for (const Triple& tr : seq.triples()) {
      (void)target.Insert(tr);
    }
  }
  merged.Normalize();
  return merged;
}

ProfileDiff DiffProfiles(const EntityProfile& before,
                         const EntityProfile& after) {
  const std::vector<ProfileFact> before_facts = EnumerateProfileFacts(before);
  const std::vector<ProfileFact> after_facts = EnumerateProfileFacts(after);
  ProfileDiff diff;
  std::set_difference(after_facts.begin(), after_facts.end(),
                      before_facts.begin(), before_facts.end(),
                      std::back_inserter(diff.added));
  std::set_difference(before_facts.begin(), before_facts.end(),
                      after_facts.begin(), after_facts.end(),
                      std::back_inserter(diff.removed));
  return diff;
}

std::string RenderTimeline(const EntityProfile& profile, size_t max_width) {
  const auto earliest = profile.EarliestTime();
  const auto latest = profile.LatestTime();
  if (!earliest || !latest) return "(empty profile)\n";

  const int64_t span = static_cast<int64_t>(*latest) - *earliest + 1;
  // One column per `step` instants so wide histories still fit.
  int64_t step = 1;
  while (span / step > static_cast<int64_t>(max_width)) ++step;

  size_t label_width = 0;
  for (const auto& [attribute, seq] : profile.sequences()) {
    label_width = std::max(label_width, attribute.size());
  }

  std::ostringstream os;
  os << (profile.name().empty() ? profile.id() : profile.name());
  os << " (" << *earliest << "-" << *latest << ")\n";
  for (const auto& [attribute, seq] : profile.sequences()) {
    os << attribute;
    os << std::string(label_width - attribute.size() + 2, ' ') << "|";
    ValueSet previous;
    std::string pending;
    for (TimePoint t = *earliest; t <= *latest;
         t = static_cast<TimePoint>(t + step)) {
      const ValueSet values = seq.ValuesAt(t);
      char cell = ' ';
      if (!values.empty()) {
        if (values == previous) {
          cell = '.';
        } else {
          // New state: emit the first letters of the joined values, spread
          // over subsequent continuation columns via `pending`.
          pending = values[0];
          for (size_t i = 1; i < values.size(); ++i) pending += "+" + values[i];
          cell = '\0';  // marker: take from pending
        }
      } else {
        pending.clear();
      }
      if (cell == '\0') {
        os << pending[0];
        pending.erase(0, 1);
      } else if (cell == '.' && !pending.empty()) {
        os << pending[0];
        pending.erase(0, 1);
      } else {
        os << cell;
      }
      previous = values;
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace maroon
