#ifndef MAROON_CORE_TEMPORAL_SEQUENCE_H_
#define MAROON_CORE_TEMPORAL_SEQUENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// One element of a temporal sequence: the set of values `values` is known to
/// be valid for every instant in `interval` (the paper's <b, e, V>).
struct Triple {
  Interval interval;
  ValueSet values;

  Triple() = default;
  Triple(Interval iv, ValueSet v) : interval(iv), values(std::move(v)) {}
  Triple(TimePoint b, TimePoint e, ValueSet v)
      : interval(b, e), values(std::move(v)) {}

  std::string ToString() const;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.interval == b.interval && a.values == b.values;
  }
};

/// The evolution of one attribute of one entity over time (paper Def. 1).
///
/// A *canonical* sequence satisfies Def. 1: triples are ordered with
/// `e_i < b_{i+1}` (disjoint, gaps allowed) and *adjacent* triples (no gap
/// between them) carry different value sets — the same value set may recur
/// after a gap, which is exactly the recurrence temporal models reason
/// about. During profile augmentation (Algorithm 3) freshly linked cluster
/// states may overlap existing triples, so the container also supports a
/// relaxed mode: `Insert` keeps triples sorted by interval but tolerates
/// overlaps, and `Normalize()` restores canonical form by unioning values at
/// each instant and re-compressing runs — the paper's post-processing step.
class TemporalSequence {
 public:
  TemporalSequence() = default;

  /// Builds a sequence from triples, requiring canonical form.
  static Result<TemporalSequence> FromTriples(std::vector<Triple> triples);

  /// Appends `triple` at the end; fails unless it starts strictly after the
  /// last triple ends. An adjacent (gap-free) triple repeating the previous
  /// value set is rejected per Def. 1; recurrence after a gap is allowed.
  Status Append(Triple triple);

  /// Inserts `triple` keeping triples sorted by interval; overlaps with
  /// existing triples are allowed (call Normalize() to resolve them).
  Status Insert(Triple triple);

  /// Restores canonical form: values valid at the same instant are unioned,
  /// and maximal runs of instants with identical value sets become triples.
  void Normalize();

  /// True iff the sequence satisfies Def. 1.
  bool IsCanonical() const;

  /// Values(Seq, t): the set of values valid at instant `t` (union over all
  /// triples containing `t`); empty if `t` is uncovered.
  ValueSet ValuesAt(TimePoint t) const;

  /// Intervals(Seq, v): all intervals during which `v` occurs.
  std::vector<Interval> IntervalsOf(const Value& v) const;

  /// Intervals(Seq): the interval of every triple, in order.
  std::vector<Interval> AllIntervals() const;

  /// Lifespan(Seq) = e_last - b_first + 1; 0 for the empty sequence.
  int64_t Lifespan() const;

  /// The maximum instant t' <= `t` with `v` in Values(t'), i.e., the paper's
  /// t_max in Eq. 9 when `t` itself is excluded via `strictly_before`.
  std::optional<TimePoint> LatestOccurrenceBefore(const Value& v, TimePoint t,
                                                  bool strictly_before) const;

  /// True iff the union of the triple intervals covers every instant of
  /// `window` (the paper's completeness w.r.t. [b, e]).
  bool IsCompleteOver(const Interval& window) const;

  /// Fraction of instants in `window` covered by some triple, in [0, 1].
  double CoverageFraction(const Interval& window) const;

  /// First instant covered, if any.
  std::optional<TimePoint> EarliestTime() const;
  /// Last instant covered, if any.
  std::optional<TimePoint> LatestTime() const;

  bool empty() const { return triples_.empty(); }
  size_t size() const { return triples_.size(); }
  const Triple& at(size_t i) const { return triples_.at(i); }
  const std::vector<Triple>& triples() const { return triples_; }

  std::string ToString() const;

  friend bool operator==(const TemporalSequence& a, const TemporalSequence& b) {
    return a.triples_ == b.triples_;
  }

 private:
  std::vector<Triple> triples_;  // sorted by (interval.begin, interval.end)
};

}  // namespace maroon

#endif  // MAROON_CORE_TEMPORAL_SEQUENCE_H_
