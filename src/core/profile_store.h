#ifndef MAROON_CORE_PROFILE_STORE_H_
#define MAROON_CORE_PROFILE_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/entity_profile.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// An in-memory, queryable store of entity profiles — the integrated
/// "knowledge repository" the paper's introduction motivates (YAGO-style
/// aggregation): once temporal linkage has built per-entity histories, the
/// store answers point-in-time questions about them.
///
/// Queries run against an inverted (attribute, value) -> (entity, interval)
/// index that is rebuilt lazily after mutations; reads are O(log) in the
/// index plus output size.
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Inserts or replaces the profile with the same id. The profile should
  /// be normalized; the store does not modify it.
  void Put(EntityProfile profile);

  /// Removes an entity; missing ids are a no-op returning NotFound.
  Status Remove(const EntityId& id);

  Result<const EntityProfile*> Get(const EntityId& id) const;
  bool Contains(const EntityId& id) const { return profiles_.count(id) > 0; }
  size_t size() const { return profiles_.size(); }
  bool empty() const { return profiles_.empty(); }

  /// Entities whose display name equals `name`, sorted by id.
  std::vector<EntityId> FindByName(const std::string& name) const;

  /// Entities that hold `value` on `attribute` at instant `t`, sorted.
  std::vector<EntityId> FindByValueAt(const Attribute& attribute,
                                      const Value& value, TimePoint t) const;

  /// Entities that ever held `value` on `attribute`, sorted.
  std::vector<EntityId> FindByValue(const Attribute& attribute,
                                    const Value& value) const;

  /// The entity's state at instant `t`: attribute -> values (attributes
  /// with no value at `t` are omitted). NotFound for unknown ids.
  Result<std::map<Attribute, ValueSet>> SnapshotAt(const EntityId& id,
                                                   TimePoint t) const;

  /// Entities (other than `id`) sharing a value with `id` on `attribute` at
  /// instant `t` — e.g. colleagues at the same organization. Sorted.
  std::vector<EntityId> CoOccurring(const EntityId& id,
                                    const Attribute& attribute,
                                    TimePoint t) const;

  /// All entity ids, sorted.
  std::vector<EntityId> Ids() const;

 private:
  struct Posting {
    EntityId entity;
    Interval interval;
  };

  void RebuildIndexIfNeeded() const;

  std::map<EntityId, EntityProfile> profiles_;
  // Lazily rebuilt inverted index and name map.
  mutable std::map<Attribute, std::map<Value, std::vector<Posting>>> index_;
  mutable std::map<std::string, std::vector<EntityId>> by_name_;
  mutable bool index_dirty_ = false;
};

}  // namespace maroon

#endif  // MAROON_CORE_PROFILE_STORE_H_
