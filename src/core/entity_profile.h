#ifndef MAROON_CORE_ENTITY_PROFILE_H_
#define MAROON_CORE_ENTITY_PROFILE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/temporal_sequence.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// Identifies a real-world entity. Distinct entities may share a display
/// name (that ambiguity is exactly what temporal linkage resolves).
using EntityId = std::string;

/// The profile Φ_n of an entity: one temporal sequence per attribute,
/// describing how the entity's attribute values change over time (paper §3).
class EntityProfile {
 public:
  EntityProfile() = default;
  EntityProfile(EntityId id, std::string name)
      : id_(std::move(id)), name_(std::move(name)) {}

  const EntityId& id() const { return id_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Φ_n[A]; creates an empty sequence on first access.
  TemporalSequence& sequence(const Attribute& attribute) {
    return sequences_[attribute];
  }

  /// Φ_n[A] or an empty sequence if the attribute is absent.
  const TemporalSequence& sequence(const Attribute& attribute) const;

  bool HasAttribute(const Attribute& attribute) const {
    return sequences_.count(attribute) > 0;
  }

  /// Attributes with a (possibly empty) sequence, sorted.
  std::vector<Attribute> Attributes() const;

  /// Max lifespan over all attribute sequences (paper's L for this profile).
  int64_t MaxLifespan() const;

  /// Earliest instant covered by any attribute, if the profile is non-empty.
  std::optional<TimePoint> EarliestTime() const;
  /// Latest instant covered by any attribute.
  std::optional<TimePoint> LatestTime() const;

  /// True iff every attribute sequence covers every instant of `window`
  /// (paper's profile completeness w.r.t. [b, e]).
  bool IsCompleteOver(const Interval& window) const;

  /// Normalizes every attribute sequence (see TemporalSequence::Normalize).
  void Normalize();

  /// True iff no attribute has any triple.
  bool empty() const;

  const std::map<Attribute, TemporalSequence>& sequences() const {
    return sequences_;
  }

  std::string ToString() const;

 private:
  EntityId id_;
  std::string name_;
  std::map<Attribute, TemporalSequence> sequences_;
};

/// A set Φ of entity profiles (training corpus for the transition model).
using ProfileSet = std::vector<EntityProfile>;

}  // namespace maroon

#endif  // MAROON_CORE_ENTITY_PROFILE_H_
