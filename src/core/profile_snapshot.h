#ifndef MAROON_CORE_PROFILE_SNAPSHOT_H_
#define MAROON_CORE_PROFILE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/profile_store.h"

namespace maroon {

/// Versioned binary ProfileStore snapshots with atomic publication.
///
/// File layout (all integers little-endian; `lp` = u32 length prefix +
/// raw bytes):
///
///   header  "MRSN" u32 version=1                                (8 bytes)
///   body    u64 last_seq  u64 entity_count
///           per entity:    lp id  lp name  u32 attr_count
///           per attribute: lp name  u32 triple_count
///           per triple:    u32 begin  u32 end  u32 value_count  lp value*
///   footer  u32 masked CRC-32C of the body                      (4 bytes)
///
/// `last_seq` is the WAL sequence of the last record folded into the
/// snapshot; recovery replays only frames with seq > last_seq on top.
///
/// Atomicity: the snapshot is written to "<name>.tmp", fsynced, and
/// published with rename(2) (crash points "snapshot.rename.before"/
/// ".after"). A crash mid-write leaves only a .tmp file that recovery
/// ignores; a crash between write and rename loses the snapshot but never
/// corrupts an older one. FindNewestValidSnapshot checksums candidates
/// newest-first and silently skips damaged files, so recovery degrades to an
/// older snapshot plus a longer WAL replay — never to corrupt state.

/// "snapshot-<seq, zero-padded to 20 digits>.mrsn"; lexicographic order of
/// the names equals numeric order of the sequences.
std::string SnapshotFileName(uint64_t last_seq);

/// Serializes `store` and atomically publishes it under `dir`.
Status WriteSnapshot(const ProfileStore& store, uint64_t last_seq,
                     const std::string& dir);

struct LoadedSnapshot {
  ProfileStore store;
  uint64_t last_seq = 0;
};

/// Loads and fully validates one snapshot file. InvalidArgument on any
/// header, checksum, or structural damage; IOError when unreadable.
Result<LoadedSnapshot> ReadSnapshot(const std::string& path);

struct SnapshotInfo {
  std::string path;
  uint64_t last_seq = 0;
};

/// Snapshot files in `dir` whose names parse, sorted ascending by sequence.
/// Contents are not validated. An absent directory is an empty list.
Result<std::vector<SnapshotInfo>> ListSnapshots(const std::string& dir);

/// The newest snapshot in `dir` that passes full validation (damaged or
/// torn candidates are skipped). NotFound when no valid snapshot exists —
/// recovery then starts from an empty store and replays the whole WAL.
Result<LoadedSnapshot> LoadNewestValidSnapshot(const std::string& dir);

}  // namespace maroon

#endif  // MAROON_CORE_PROFILE_SNAPSHOT_H_
