#include "core/validation.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace maroon {

namespace {

/// The foreign separator the repair path knows how to undo. Harvested feeds
/// often pipe-join multi-values; SplitValues only understands ';'.
constexpr char kForeignSeparator = '|';

bool HasSurroundingWhitespace(const Value& v) {
  return !v.empty() && (StripWhitespace(v).size() != v.size());
}

bool HasForeignSeparator(const Value& v) {
  return v.find(kForeignSeparator) != std::string::npos;
}

void AddIssue(ValidationReport* report, IssueCode code, IssueSeverity severity,
              std::string location, std::string detail) {
  report->issues.push_back(ValidationIssue{code, severity, std::move(location),
                                           std::move(detail)});
}

/// True iff the record carries an error-severity issue that RepairRecord
/// cannot fix (used to decide quarantine under kRepair).
bool IssueIsRecordRepairable(IssueCode code) {
  return code == IssueCode::kMangledSeparator ||
         code == IssueCode::kNonCanonicalValue;
}

}  // namespace

std::string_view RepairPolicyName(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kStrict:
      return "strict";
    case RepairPolicy::kQuarantine:
      return "quarantine";
    case RepairPolicy::kRepair:
      return "repair";
  }
  return "unknown";
}

Result<RepairPolicy> ParseRepairPolicy(const std::string& name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "strict") return RepairPolicy::kStrict;
  if (lower == "quarantine") return RepairPolicy::kQuarantine;
  if (lower == "repair") return RepairPolicy::kRepair;
  return Status::InvalidArgument(
      "unknown repair policy '" + name +
      "'; expected strict, quarantine, or repair");
}

std::string_view IssueCodeToString(IssueCode code) {
  switch (code) {
    case IssueCode::kWrongColumnCount:
      return "WrongColumnCount";
    case IssueCode::kBadTimestamp:
      return "BadTimestamp";
    case IssueCode::kInvertedInterval:
      return "InvertedInterval";
    case IssueCode::kDuplicateRecordId:
      return "DuplicateRecordId";
    case IssueCode::kUnknownSource:
      return "UnknownSource";
    case IssueCode::kMissingName:
      return "MissingName";
    case IssueCode::kTimestampOutOfWindow:
      return "TimestampOutOfWindow";
    case IssueCode::kMangledSeparator:
      return "MangledSeparator";
    case IssueCode::kNonCanonicalValue:
      return "NonCanonicalValue";
    case IssueCode::kNonCanonicalSequence:
      return "NonCanonicalSequence";
    case IssueCode::kEmptyProfile:
      return "EmptyProfile";
    case IssueCode::kBadRow:
      return "BadRow";
  }
  return "Unknown";
}

std::string ValidationIssue::ToString() const {
  std::string out(IssueCodeToString(code));
  out += severity == IssueSeverity::kError ? " (error)" : " (warning)";
  out += " at " + location + ": " + detail;
  return out;
}

size_t ValidationReport::CountOf(IssueCode code) const {
  return static_cast<size_t>(
      std::count_if(issues.begin(), issues.end(),
                    [code](const ValidationIssue& i) { return i.code == code; }));
}

size_t ValidationReport::ErrorCount() const {
  return static_cast<size_t>(std::count_if(
      issues.begin(), issues.end(), [](const ValidationIssue& i) {
        return i.severity == IssueSeverity::kError;
      }));
}

void ValidationReport::Merge(ValidationReport other) {
  issues.insert(issues.end(), std::make_move_iterator(other.issues.begin()),
                std::make_move_iterator(other.issues.end()));
  quarantined_records.insert(quarantined_records.end(),
                             other.quarantined_records.begin(),
                             other.quarantined_records.end());
  quarantined_rows += other.quarantined_rows;
  records_checked += other.records_checked;
  profiles_checked += other.profiles_checked;
  repairs_applied += other.repairs_applied;
}

Status ValidationReport::ToStatus() const {
  const size_t errors = ErrorCount();
  if (errors == 0) return Status::OK();
  std::string msg = "validation found " + std::to_string(errors) +
                    " error(s) in " + std::to_string(issues.size()) +
                    " issue(s); first: ";
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == IssueSeverity::kError) {
      msg += issue.ToString();
      break;
    }
  }
  return Status::InvalidArgument(std::move(msg));
}

std::string ValidationReport::ToString() const {
  std::ostringstream os;
  os << "ValidationReport: " << issues.size() << " issue(s) ("
     << ErrorCount() << " error(s)) over " << records_checked
     << " record(s), " << profiles_checked << " profile(s); "
     << TotalQuarantined() << " quarantined ("
     << quarantined_rows << " row(s), " << quarantined_records.size()
     << " record(s)), " << repairs_applied << " repair(s)\n";
  // Aggregate per issue code so megabyte-scale reports stay readable.
  std::vector<IssueCode> seen;
  for (const ValidationIssue& issue : issues) {
    if (std::find(seen.begin(), seen.end(), issue.code) == seen.end()) {
      seen.push_back(issue.code);
    }
  }
  for (IssueCode code : seen) {
    os << "  " << IssueCodeToString(code) << ": " << CountOf(code) << "\n";
  }
  constexpr size_t kMaxDetailed = 20;
  for (size_t i = 0; i < issues.size() && i < kMaxDetailed; ++i) {
    os << "  - " << issues[i].ToString() << "\n";
  }
  if (issues.size() > kMaxDetailed) {
    os << "  ... (" << issues.size() - kMaxDetailed << " more)\n";
  }
  return os.str();
}

void ValidateRecord(const TemporalRecord& record, size_t num_sources,
                    const ValidationOptions& options,
                    ValidationReport* report) {
  ++report->records_checked;
  const std::string location = "record " + std::to_string(record.id());
  if (record.name().empty() ||
      StripWhitespace(record.name()).empty()) {
    AddIssue(report, IssueCode::kMissingName, IssueSeverity::kError, location,
             "record mentions no entity name");
  }
  if (record.source() >= num_sources) {
    AddIssue(report, IssueCode::kUnknownSource, IssueSeverity::kError,
             location,
             "source id " + std::to_string(record.source()) +
                 " is not registered (only " + std::to_string(num_sources) +
                 " sources)");
  }
  if (options.plausible_window.has_value() &&
      !options.plausible_window->Contains(record.timestamp())) {
    AddIssue(report, IssueCode::kTimestampOutOfWindow, IssueSeverity::kError,
             location,
             "timestamp " + std::to_string(record.timestamp()) +
                 " lies outside the plausible window " +
                 options.plausible_window->ToString());
  }
  for (const auto& [attribute, values] : record.values()) {
    for (const Value& v : values) {
      if (HasForeignSeparator(v)) {
        AddIssue(report, IssueCode::kMangledSeparator, IssueSeverity::kError,
                 location + " attribute " + attribute,
                 "value '" + v + "' carries a foreign '|' separator");
      } else if (HasSurroundingWhitespace(v)) {
        AddIssue(report, IssueCode::kNonCanonicalValue,
                 IssueSeverity::kWarning, location + " attribute " + attribute,
                 "value '" + v + "' has surrounding whitespace");
      }
    }
  }
}

size_t RepairRecord(TemporalRecord* record) {
  size_t repairs = 0;
  // Copy the attribute list first; SetValue mutates the map.
  for (const Attribute& attribute : record->Attributes()) {
    const ValueSet& current = record->GetValue(attribute);
    bool changed = false;
    std::vector<Value> rebuilt;
    for (const Value& v : current) {
      std::vector<std::string> parts;
      if (HasForeignSeparator(v)) {
        parts = Split(v, kForeignSeparator);
        changed = true;
      } else {
        parts.push_back(v);
      }
      for (const std::string& part : parts) {
        std::string trimmed(StripWhitespace(part));
        if (trimmed.size() != part.size()) changed = true;
        if (!trimmed.empty()) rebuilt.push_back(std::move(trimmed));
      }
    }
    if (changed) {
      record->SetValue(attribute, MakeValueSet(std::move(rebuilt)));
      ++repairs;
    }
  }
  return repairs;
}

void ValidateProfile(const EntityProfile& profile, const std::string& location,
                     ValidationReport* report) {
  ++report->profiles_checked;
  if (profile.empty()) {
    AddIssue(report, IssueCode::kEmptyProfile, IssueSeverity::kWarning,
             location, "profile has no triples for any attribute");
    return;
  }
  for (const auto& [attribute, seq] : profile.sequences()) {
    const std::string where = location + " attribute " + attribute;
    for (size_t i = 0; i < seq.size(); ++i) {
      const Triple& tr = seq.at(i);
      if (!tr.interval.IsValid()) {
        AddIssue(report, IssueCode::kInvertedInterval, IssueSeverity::kError,
                 where + " triple " + std::to_string(i),
                 "interval " + tr.interval.ToString() + " has begin > end");
      }
      if (tr.values.empty()) {
        AddIssue(report, IssueCode::kBadRow, IssueSeverity::kError,
                 where + " triple " + std::to_string(i),
                 "triple carries no values");
      }
      for (const Value& v : tr.values) {
        if (HasForeignSeparator(v)) {
          AddIssue(report, IssueCode::kMangledSeparator, IssueSeverity::kError,
                   where + " triple " + std::to_string(i),
                   "value '" + v + "' carries a foreign '|' separator");
        } else if (HasSurroundingWhitespace(v)) {
          AddIssue(report, IssueCode::kNonCanonicalValue,
                   IssueSeverity::kWarning,
                   where + " triple " + std::to_string(i),
                   "value '" + v + "' has surrounding whitespace");
        }
      }
    }
    if (!seq.IsCanonical()) {
      // Only flag sequences whose triples are individually sound; inverted
      // intervals and empty value sets were already reported above.
      bool triples_sound = true;
      for (const Triple& tr : seq.triples()) {
        if (!tr.interval.IsValid() || tr.values.empty()) {
          triples_sound = false;
          break;
        }
      }
      if (triples_sound) {
        AddIssue(report, IssueCode::kNonCanonicalSequence,
                 IssueSeverity::kWarning, where,
                 "sequence is not in canonical form (overlapping or "
                 "unmerged triples)");
      }
    }
  }
}

size_t RepairProfile(EntityProfile* profile) {
  size_t repairs = 0;
  bool needs_normalize = false;
  for (const Attribute& attribute : profile->Attributes()) {
    TemporalSequence& seq = profile->sequence(attribute);
    std::vector<Triple> kept;
    bool changed = false;
    for (const Triple& tr : seq.triples()) {
      Triple fixed = tr;
      if (!fixed.interval.IsValid()) {
        std::swap(fixed.interval.begin, fixed.interval.end);
        changed = true;
      }
      std::vector<Value> rebuilt;
      bool values_changed = false;
      for (const Value& v : fixed.values) {
        std::vector<std::string> parts;
        if (HasForeignSeparator(v)) {
          parts = Split(v, kForeignSeparator);
          values_changed = true;
        } else {
          parts.push_back(v);
        }
        for (const std::string& part : parts) {
          std::string trimmed(StripWhitespace(part));
          if (trimmed.size() != part.size()) values_changed = true;
          if (!trimmed.empty()) rebuilt.push_back(std::move(trimmed));
        }
      }
      if (values_changed) {
        fixed.values = MakeValueSet(std::move(rebuilt));
        changed = true;
      }
      if (fixed.values.empty()) {
        changed = true;  // Drop value-less triples entirely.
        continue;
      }
      kept.push_back(std::move(fixed));
    }
    if (changed) {
      TemporalSequence rebuilt_seq;
      for (Triple& tr : kept) {
        // Insert tolerates any order/overlap; Normalize restores Def. 1.
        (void)rebuilt_seq.Insert(std::move(tr));
      }
      seq = std::move(rebuilt_seq);
      needs_normalize = true;
      ++repairs;
    } else if (!seq.IsCanonical()) {
      needs_normalize = true;
      ++repairs;
    }
  }
  if (needs_normalize) profile->Normalize();
  return repairs;
}

std::optional<Interval> PlausibleWindowOf(const Dataset& dataset) {
  bool seen = false;
  TimePoint lo = 0, hi = 0;
  for (const auto& [id, target] : dataset.targets()) {
    for (const EntityProfile* profile :
         {&target.clean_profile, &target.ground_truth}) {
      const auto earliest = profile->EarliestTime();
      const auto latest = profile->LatestTime();
      if (!earliest.has_value() || !latest.has_value()) continue;
      if (!seen) {
        lo = *earliest;
        hi = *latest;
        seen = true;
      } else {
        lo = std::min(lo, *earliest);
        hi = std::max(hi, *latest);
      }
    }
  }
  if (!seen) return std::nullopt;
  const int64_t pad = std::max<int64_t>(static_cast<int64_t>(hi) - lo + 1, 10);
  return Interval(static_cast<TimePoint>(lo - pad),
                  static_cast<TimePoint>(hi + pad));
}

void PublishValidationMetrics(const ValidationReport& report) {
  static obs::Counter* records_checked =
      MAROON_COUNTER("maroon.validation.records_checked");
  static obs::Counter* profiles_checked =
      MAROON_COUNTER("maroon.validation.profiles_checked");
  static obs::Counter* issues = MAROON_COUNTER("maroon.validation.issues");
  static obs::Counter* errors = MAROON_COUNTER("maroon.validation.errors");
  static obs::Counter* quarantined_records =
      MAROON_COUNTER("maroon.validation.quarantined_records");
  static obs::Counter* quarantined_rows =
      MAROON_COUNTER("maroon.validation.quarantined_rows");
  static obs::Counter* repairs_applied =
      MAROON_COUNTER("maroon.validation.repairs_applied");
  records_checked->Add(static_cast<int64_t>(report.records_checked));
  profiles_checked->Add(static_cast<int64_t>(report.profiles_checked));
  issues->Add(static_cast<int64_t>(report.issues.size()));
  errors->Add(static_cast<int64_t>(report.ErrorCount()));
  quarantined_records->Add(
      static_cast<int64_t>(report.quarantined_records.size()));
  quarantined_rows->Add(static_cast<int64_t>(report.quarantined_rows));
  repairs_applied->Add(static_cast<int64_t>(report.repairs_applied));
}

ValidationReport ValidateDataset(Dataset* dataset,
                                 const ValidationOptions& options) {
  MAROON_TRACE_SPAN("validate.dataset");
  ValidationReport report;
  std::vector<RecordId> to_quarantine;

  for (const TemporalRecord& record : dataset->records()) {
    ValidationReport local;
    ValidateRecord(record, dataset->sources().size(), options, &local);
    bool quarantine = local.ErrorCount() > 0;
    if (quarantine && options.policy == RepairPolicy::kRepair) {
      // Quarantine only if an unrepairable error remains.
      quarantine = false;
      for (const ValidationIssue& issue : local.issues) {
        if (issue.severity == IssueSeverity::kError &&
            !IssueIsRecordRepairable(issue.code)) {
          quarantine = true;
          break;
        }
      }
    }
    report.Merge(std::move(local));
    if (options.policy != RepairPolicy::kStrict && quarantine) {
      to_quarantine.push_back(record.id());
    }
  }

  if (options.policy == RepairPolicy::kRepair) {
    for (RecordId id = 0; id < dataset->NumRecords(); ++id) {
      if (std::find(to_quarantine.begin(), to_quarantine.end(), id) !=
          to_quarantine.end()) {
        continue;
      }
      report.repairs_applied += RepairRecord(dataset->mutable_record(id));
    }
  }

  std::vector<EntityId> target_ids;
  for (const auto& [id, target] : dataset->targets()) target_ids.push_back(id);
  for (const EntityId& id : target_ids) {
    TargetEntity* target = dataset->mutable_target(id);
    ValidationReport profile_report;
    ValidateProfile(target->clean_profile, "target " + id + " (clean)",
                    &profile_report);
    ValidateProfile(target->ground_truth, "target " + id + " (truth)",
                    &profile_report);
    if (options.policy == RepairPolicy::kRepair &&
        !profile_report.issues.empty()) {
      report.repairs_applied += RepairProfile(&target->clean_profile);
      report.repairs_applied += RepairProfile(&target->ground_truth);
    }
    report.Merge(std::move(profile_report));
  }

  if (!to_quarantine.empty()) {
    report.quarantined_records = to_quarantine;
    dataset->EraseRecords(to_quarantine);
  }
  return report;
}

}  // namespace maroon
