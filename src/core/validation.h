#ifndef MAROON_CORE_VALIDATION_H_
#define MAROON_CORE_VALIDATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/time_types.h"

namespace maroon {

/// How the validation layer reacts to malformed input.
///
/// Harvested temporal data is dirty in ways beyond value noise — inverted
/// intervals, duplicate record ids, unknown sources, missing cells. The
/// policy turns "crash or silently corrupt profiles" into explicit,
/// observable, policy-controlled degradation.
enum class RepairPolicy {
  /// Report and fail: any error-severity issue aborts the operation with
  /// Status::InvalidArgument.
  kStrict,
  /// Drop offending records/rows into the report and continue with the rest.
  kQuarantine,
  /// Normalize what is safely normalizable (swap inverted begin/end, dedupe
  /// multi-values, trim whitespace, re-split mangled separators); quarantine
  /// what cannot be repaired.
  kRepair,
};

std::string_view RepairPolicyName(RepairPolicy policy);

/// Parses "strict" / "quarantine" / "repair" (case-insensitive).
Result<RepairPolicy> ParseRepairPolicy(const std::string& name);

/// Classes of structural damage the validator recognizes.
enum class IssueCode {
  kWrongColumnCount,      // CSV row does not match the header schema
  kBadTimestamp,          // unparseable time point cell
  kInvertedInterval,      // profile triple with begin > end
  kDuplicateRecordId,     // record id already seen in this load
  kUnknownSource,         // record references an unregistered source
  kMissingName,           // record has an empty entity-name mention
  kTimestampOutOfWindow,  // record timestamp far outside the plausible window
  kMangledSeparator,      // value carrying a foreign multi-value separator
  kNonCanonicalValue,     // whitespace-padded or duplicated values
  kNonCanonicalSequence,  // overlapping or unmerged triples in a sequence
  kEmptyProfile,          // target registered with no clean history at all
  kBadRow,                // row unusable for any other structural reason
};

std::string_view IssueCodeToString(IssueCode code);

/// Issue severity: errors make the carrying record/row unusable (quarantine
/// candidates); warnings are cosmetic and always safely repairable.
enum class IssueSeverity { kWarning, kError };

/// One detected defect, locatable for debugging and observability.
struct ValidationIssue {
  IssueCode code = IssueCode::kBadRow;
  IssueSeverity severity = IssueSeverity::kError;
  /// Where: "records.csv row 17", "record 5", "target e12 attribute Title".
  std::string location;
  /// What exactly, with the offending content quoted.
  std::string detail;

  std::string ToString() const;
};

/// Knobs for the semantic checks.
struct ValidationOptions {
  RepairPolicy policy = RepairPolicy::kStrict;
  /// When set, record timestamps outside this interval are flagged as
  /// kTimestampOutOfWindow (and quarantined under lenient policies — a
  /// shuffled timestamp cannot be guessed back, so kRepair also drops it).
  /// See PlausibleWindowOf() for a data-derived default.
  std::optional<Interval> plausible_window;
};

/// The structured outcome of a validation pass: every issue found, which
/// records were dropped, and how many repairs were applied.
struct ValidationReport {
  std::vector<ValidationIssue> issues;
  /// Ids of in-memory records dropped under kQuarantine/kRepair (ids as they
  /// were *before* the drop re-densified the pool).
  std::vector<RecordId> quarantined_records;
  /// CSV rows dropped during a lenient load before a record/triple was ever
  /// materialized (wrong column count, duplicate id, unknown source, ...).
  size_t quarantined_rows = 0;
  size_t records_checked = 0;
  size_t profiles_checked = 0;
  size_t repairs_applied = 0;

  size_t CountOf(IssueCode code) const;
  size_t ErrorCount() const;
  /// Everything dropped, across both the row and the record stage.
  size_t TotalQuarantined() const {
    return quarantined_records.size() + quarantined_rows;
  }
  bool clean() const { return issues.empty(); }
  void Merge(ValidationReport other);
  /// OK when no error-severity issue was found; otherwise InvalidArgument
  /// summarizing the issue counts (first issue quoted).
  Status ToStatus() const;
  std::string ToString() const;
};

/// Checks one record against its dataset context (`num_sources` registered
/// sources) and appends any issues to `report` (location "record <id>").
/// Pure inspection; never mutates.
void ValidateRecord(const TemporalRecord& record, size_t num_sources,
                    const ValidationOptions& options,
                    ValidationReport* report);

/// Normalizes what is safely normalizable in `record`: trims surrounding
/// whitespace from values, re-splits values carrying a mangled '|' separator,
/// and re-canonicalizes the value sets. Returns the number of cells changed.
size_t RepairRecord(TemporalRecord* record);

/// Checks one profile (all attribute sequences) and appends issues to
/// `report`. `location` prefixes issue locations (e.g. "target e12").
void ValidateProfile(const EntityProfile& profile, const std::string& location,
                     ValidationReport* report);

/// Repairs a profile in place: swaps inverted triple intervals, trims and
/// dedupes values, then normalizes the sequences. Returns repairs applied.
size_t RepairProfile(EntityProfile* profile);

/// A generous plausibility window derived from the dataset's target
/// profiles: their covered span padded on each side by the span length (at
/// least 10 instants). Empty when no target covers any instant.
[[nodiscard]] std::optional<Interval> PlausibleWindowOf(const Dataset& dataset);

/// Publishes a load/validation outcome to the global metrics registry
/// (`maroon.validation.*` counters: records/profiles checked, issues,
/// errors, quarantined rows/records, repairs). Called once per completed
/// dataset load; safe to call again for standalone ValidateDataset passes.
void PublishValidationMetrics(const ValidationReport& report);

/// Validates every record and target profile of `dataset`.
///
///  - kStrict: inspect only; the report's ToStatus() is non-OK on errors.
///  - kQuarantine: erase records carrying error-severity issues (the pool is
///    re-densified; prior RecordIds are invalidated).
///  - kRepair: repair records and profiles in place first, then quarantine
///    whatever remains unusable (e.g. out-of-window timestamps).
[[nodiscard]] ValidationReport ValidateDataset(
    Dataset* dataset, const ValidationOptions& options);

}  // namespace maroon

#endif  // MAROON_CORE_VALIDATION_H_
