#ifndef MAROON_CORE_DATASET_H_
#define MAROON_CORE_DATASET_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"
#include "core/value.h"

namespace maroon {

/// A target entity in an experiment: the clean (incomplete) profile given as
/// input, and the full ground-truth profile used only for evaluation.
struct TargetEntity {
  EntityProfile clean_profile;
  EntityProfile ground_truth;
};

/// An experiment corpus: the attribute schema, the data sources, the pool of
/// temporal records, per-record ground-truth entity labels, and the target
/// entities whose profiles are to be augmented.
///
/// Records are identified by their index; `AddRecord` assigns ids densely.
class Dataset {
 public:
  Dataset() = default;

  void SetAttributes(std::vector<Attribute> attributes) {
    attributes_ = std::move(attributes);
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Registers a source and returns its id.
  SourceId AddSource(std::string name);
  const std::vector<DataSource>& sources() const { return sources_; }
  const DataSource& source(SourceId id) const { return sources_.at(id); }

  /// Adds `record` to the pool, overwriting its id with the next dense id.
  RecordId AddRecord(TemporalRecord record);
  const std::vector<TemporalRecord>& records() const { return records_; }
  const TemporalRecord& record(RecordId id) const { return records_.at(id); }
  /// Mutable access for in-place repair (core/validation.h). The caller must
  /// not change the record's id.
  TemporalRecord* mutable_record(RecordId id) { return &records_.at(id); }
  size_t NumRecords() const { return records_.size(); }

  /// Erases the given records (e.g. quarantined by validation) and
  /// re-densifies ids; labels follow their records. Out-of-range ids are
  /// ignored. Returns the number of records erased. All previously held
  /// RecordIds are invalidated.
  size_t EraseRecords(const std::vector<RecordId>& ids);

  /// Records the ground truth "record `id` refers to entity `entity`".
  Status SetLabel(RecordId id, EntityId entity);

  /// The labelled entity for a record, or empty string if unlabelled.
  const EntityId& LabelOf(RecordId id) const;

  /// Registers a target entity.
  Status AddTarget(EntityId id, TargetEntity target);
  const std::map<EntityId, TargetEntity>& targets() const { return targets_; }
  Result<const TargetEntity*> target(const EntityId& id) const;
  /// Mutable access for in-place repair; nullptr if `id` is unregistered.
  TargetEntity* mutable_target(const EntityId& id);

  /// Candidate records for a target: every record whose mentioned name equals
  /// the target profile's name (the blocking step used by the paper — records
  /// "that have the same name with the entity").
  std::vector<RecordId> CandidatesFor(const EntityId& id) const;

  /// Record ids whose ground-truth label is `id` (the paper's Match set).
  std::vector<RecordId> TrueMatchesOf(const EntityId& id) const;

  /// Human-readable corpus statistics (records per source, match counts,
  /// time span) — the shape of the paper's Table 6.
  std::string StatisticsString() const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<DataSource> sources_;
  std::vector<TemporalRecord> records_;
  std::vector<EntityId> labels_;  // parallel to records_; "" = unlabelled
  std::map<EntityId, TargetEntity> targets_;
};

}  // namespace maroon

#endif  // MAROON_CORE_DATASET_H_
