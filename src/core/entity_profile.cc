#include "core/entity_profile.h"

#include <algorithm>

namespace maroon {

namespace {
const TemporalSequence& EmptySequence() {
  static const TemporalSequence* kEmpty = new TemporalSequence();
  return *kEmpty;
}
}  // namespace

const TemporalSequence& EntityProfile::sequence(
    const Attribute& attribute) const {
  auto it = sequences_.find(attribute);
  return it != sequences_.end() ? it->second : EmptySequence();
}

std::vector<Attribute> EntityProfile::Attributes() const {
  std::vector<Attribute> out;
  out.reserve(sequences_.size());
  for (const auto& [attr, seq] : sequences_) out.push_back(attr);
  return out;
}

int64_t EntityProfile::MaxLifespan() const {
  int64_t max_span = 0;
  for (const auto& [attr, seq] : sequences_) {
    max_span = std::max(max_span, seq.Lifespan());
  }
  return max_span;
}

std::optional<TimePoint> EntityProfile::EarliestTime() const {
  std::optional<TimePoint> best;
  for (const auto& [attr, seq] : sequences_) {
    auto t = seq.EarliestTime();
    if (t && (!best || *t < *best)) best = t;
  }
  return best;
}

std::optional<TimePoint> EntityProfile::LatestTime() const {
  std::optional<TimePoint> best;
  for (const auto& [attr, seq] : sequences_) {
    auto t = seq.LatestTime();
    if (t && (!best || *t > *best)) best = t;
  }
  return best;
}

bool EntityProfile::IsCompleteOver(const Interval& window) const {
  if (sequences_.empty()) return false;
  for (const auto& [attr, seq] : sequences_) {
    if (!seq.IsCompleteOver(window)) return false;
  }
  return true;
}

void EntityProfile::Normalize() {
  for (auto& [attr, seq] : sequences_) seq.Normalize();
}

bool EntityProfile::empty() const {
  for (const auto& [attr, seq] : sequences_) {
    if (!seq.empty()) return false;
  }
  return true;
}

std::string EntityProfile::ToString() const {
  std::string out = "EntityProfile(" + id_;
  if (!name_.empty()) out += ", \"" + name_ + "\"";
  out += ")";
  for (const auto& [attr, seq] : sequences_) {
    out += "\n  " + attr + ": " + seq.ToString();
  }
  return out;
}

}  // namespace maroon
