#include "clustering/late_binding_clusterer.h"

#include <algorithm>
#include <map>

namespace maroon {

std::vector<Cluster> LateBindingClusterer::ClusterRecords(
    const std::vector<const TemporalRecord*>& records) const {
  last_deferred_ = 0;

  std::vector<const TemporalRecord*> ordered = records;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TemporalRecord* a, const TemporalRecord* b) {
                     if (a->timestamp() != b->timestamp()) {
                       return a->timestamp() < b->timestamp();
                     }
                     return a->id() < b->id();
                   });

  // Pass 1: grow clusters from unambiguous records; defer the rest.
  std::vector<Cluster> clusters;
  std::vector<std::map<Attribute, ValueSet>> states;
  std::vector<const TemporalRecord*> deferred;

  for (const TemporalRecord* record : ordered) {
    double best = -1.0, second = -1.0;
    size_t best_index = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      const double sim =
          similarity_->RecordToStateSimilarity(*record, states[i]);
      if (sim > best) {
        second = best;
        best = sim;
        best_index = i;
      } else if (sim > second) {
        second = sim;
      }
    }
    if (best < options_.similarity_threshold) {
      // No candidate: seed a new cluster (a hard decision, as in [18]).
      Cluster fresh;
      fresh.Add(*record);
      states.push_back(fresh.MajorityState());
      clusters.push_back(std::move(fresh));
      continue;
    }
    if (second >= options_.similarity_threshold &&
        second >= best * options_.ambiguity_ratio) {
      // Competing candidates: keep the record soft until pass 2.
      deferred.push_back(record);
      ++last_deferred_;
      continue;
    }
    clusters[best_index].Add(*record);
    states[best_index] = clusters[best_index].MajorityState();
  }

  // Pass 2: decide deferred records against the final cluster states.
  for (const TemporalRecord* record : deferred) {
    double best = -1.0;
    size_t best_index = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      const double sim =
          similarity_->RecordToStateSimilarity(*record, states[i]);
      if (sim > best) {
        best = sim;
        best_index = i;
      }
    }
    if (best >= options_.similarity_threshold && !clusters.empty()) {
      clusters[best_index].Add(*record);
      states[best_index] = clusters[best_index].MajorityState();
    } else {
      Cluster fresh;
      fresh.Add(*record);
      states.push_back(fresh.MajorityState());
      clusters.push_back(std::move(fresh));
    }
  }
  return clusters;
}

}  // namespace maroon
