#include "clustering/partition_clusterer.h"

#include <algorithm>

namespace maroon {

std::vector<Cluster> PartitionClusterer::ClusterRecords(
    const std::vector<const TemporalRecord*>& records) const {
  std::vector<const TemporalRecord*> ordered = records;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TemporalRecord* a, const TemporalRecord* b) {
                     if (a->timestamp() != b->timestamp()) {
                       return a->timestamp() < b->timestamp();
                     }
                     return a->id() < b->id();
                   });

  std::vector<Cluster> clusters;
  // Cached majority states, invalidated when a cluster gains a record.
  std::vector<std::map<Attribute, ValueSet>> states;

  for (const TemporalRecord* record : ordered) {
    double best_similarity = -1.0;
    size_t best_index = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      const double sim =
          similarity_->RecordToStateSimilarity(*record, states[i]);
      if (sim > best_similarity) {
        best_similarity = sim;
        best_index = i;
      }
    }
    if (best_similarity >= options_.similarity_threshold &&
        !clusters.empty()) {
      clusters[best_index].Add(*record);
      states[best_index] = clusters[best_index].MajorityState();
    } else {
      Cluster fresh;
      fresh.Add(*record);
      states.push_back(fresh.MajorityState());
      clusters.push_back(std::move(fresh));
    }
  }
  return clusters;
}

}  // namespace maroon
