#ifndef MAROON_CLUSTERING_FUSION_H_
#define MAROON_CLUSTERING_FUSION_H_

#include <map>
#include <string>
#include <vector>

#include "core/temporal_record.h"
#include "core/value.h"
#include "freshness/reliability_model.h"

namespace maroon {

/// Pluggable data fusion for cluster signatures.
///
/// Algorithm 2 must pick the value set V a cluster holds for each attribute;
/// the paper "adopt[s] a simple fusion method by taking the majority vote"
/// and points at the data-fusion literature (its refs. [8, 9, 19]) for
/// better resolutions. This interface makes the choice pluggable; Phase I
/// uses MajorityVoteFusion unless told otherwise.
class FusionStrategy {
 public:
  virtual ~FusionStrategy() = default;

  virtual std::string name() const = 0;

  /// Fuses one attribute of one cluster. `value_counts` are the occurrence
  /// counts accumulated from the members that contributed this attribute;
  /// `members` are the cluster's member records (some of which may lack the
  /// attribute). Must return a canonical (possibly empty) value set.
  virtual ValueSet Fuse(
      const Attribute& attribute,
      const std::map<Value, int64_t>& value_counts,
      const std::vector<const TemporalRecord*>& members) const = 0;
};

/// The paper's default: the values with the highest occurrence count; ties
/// keep every tied value.
class MajorityVoteFusion final : public FusionStrategy {
 public:
  std::string name() const override { return "majority_vote"; }
  ValueSet Fuse(const Attribute& attribute,
                const std::map<Value, int64_t>& value_counts,
                const std::vector<const TemporalRecord*>& members)
      const override;
};

/// The values claimed by the most recently published member record(s) that
/// carry the attribute — "latest wins", a common currency-first resolution.
class LatestWinsFusion final : public FusionStrategy {
 public:
  std::string name() const override { return "latest_wins"; }
  ValueSet Fuse(const Attribute& attribute,
                const std::map<Value, int64_t>& value_counts,
                const std::vector<const TemporalRecord*>& members)
      const override;
};

/// Majority vote with each record's vote weighted by its source's
/// publication reliability (see ReliabilityModel) — down-weights values
/// asserted only by noisy sources.
class ReliabilityWeightedFusion final : public FusionStrategy {
 public:
  /// `reliability` must outlive this strategy.
  explicit ReliabilityWeightedFusion(const ReliabilityModel* reliability)
      : reliability_(reliability) {}

  std::string name() const override { return "reliability_weighted"; }
  ValueSet Fuse(const Attribute& attribute,
                const std::map<Value, int64_t>& value_counts,
                const std::vector<const TemporalRecord*>& members)
      const override;

 private:
  const ReliabilityModel* reliability_;
};

}  // namespace maroon

#endif  // MAROON_CLUSTERING_FUSION_H_
