#ifndef MAROON_CLUSTERING_ADJUSTED_BINDING_CLUSTERER_H_
#define MAROON_CLUSTERING_ADJUSTED_BINDING_CLUSTERER_H_

#include <vector>

#include "clustering/cluster.h"
#include "core/temporal_record.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// Options for the adjusted-binding clusterer.
struct AdjustedBindingOptions {
  /// Threshold for the initial (early-binding / PARTITION) pass.
  double similarity_threshold = 0.8;
  /// Maximum refinement rounds; iteration stops early on a fixed point.
  size_t max_rounds = 5;
};

/// The *adjusted binding* temporal clustering of Li et al. (PVLDB 2011) —
/// the paper's ref. [18], described in its §2: start from an initial
/// clustering, then iteratively *re-bind* each record to the cluster whose
/// final state it matches best. Unlike single-pass early binding
/// (PARTITION), a record may move to a cluster that was created only
/// *after* the record was first processed — fixing the order-dependence
/// early binding suffers from.
///
/// Implemented here as a comparison substrate: MAROON's Phase I replaces
/// this family with source-aware placement.
class AdjustedBindingClusterer {
 public:
  /// `similarity` must outlive the clusterer.
  AdjustedBindingClusterer(const SimilarityCalculator* similarity,
                           AdjustedBindingOptions options = {})
      : similarity_(similarity), options_(options) {}

  /// Clusters `records` (pointers must stay valid for the call). Empty
  /// clusters left behind by re-binding are dropped.
  std::vector<Cluster> ClusterRecords(
      const std::vector<const TemporalRecord*>& records) const;

  /// Number of refinement rounds the last ClusterRecords call used.
  size_t last_rounds() const { return last_rounds_; }

  const AdjustedBindingOptions& options() const { return options_; }

 private:
  const SimilarityCalculator* similarity_;
  AdjustedBindingOptions options_;
  mutable size_t last_rounds_ = 0;
};

}  // namespace maroon

#endif  // MAROON_CLUSTERING_ADJUSTED_BINDING_CLUSTERER_H_
