#include "clustering/fusion.h"

#include <algorithm>

namespace maroon {

ValueSet MajorityVoteFusion::Fuse(
    const Attribute& /*attribute*/,
    const std::map<Value, int64_t>& value_counts,
    const std::vector<const TemporalRecord*>& /*members*/) const {
  int64_t best = 0;
  for (const auto& [v, count] : value_counts) best = std::max(best, count);
  std::vector<Value> winners;
  for (const auto& [v, count] : value_counts) {
    if (count == best && best > 0) winners.push_back(v);
  }
  return MakeValueSet(std::move(winners));
}

ValueSet LatestWinsFusion::Fuse(
    const Attribute& attribute,
    const std::map<Value, int64_t>& value_counts,
    const std::vector<const TemporalRecord*>& members) const {
  // Latest record(s) carrying the attribute, restricted to values the
  // cluster actually accumulated for it (a member may have joined the
  // cluster on a different attribute).
  TimePoint latest = 0;
  bool seen = false;
  for (const TemporalRecord* r : members) {
    if (r->GetValue(attribute).empty()) continue;
    if (!seen || r->timestamp() > latest) {
      latest = r->timestamp();
      seen = true;
    }
  }
  if (!seen) {
    return MajorityVoteFusion().Fuse(attribute, value_counts, members);
  }
  std::vector<Value> winners;
  for (const TemporalRecord* r : members) {
    if (r->timestamp() != latest) continue;
    for (const Value& v : r->GetValue(attribute)) {
      if (value_counts.count(v) > 0) winners.push_back(v);
    }
  }
  if (winners.empty()) {
    return MajorityVoteFusion().Fuse(attribute, value_counts, members);
  }
  return MakeValueSet(std::move(winners));
}

ValueSet ReliabilityWeightedFusion::Fuse(
    const Attribute& attribute,
    const std::map<Value, int64_t>& value_counts,
    const std::vector<const TemporalRecord*>& members) const {
  std::map<Value, double> weights;
  for (const TemporalRecord* r : members) {
    const double weight = reliability_->Reliability(r->source(), attribute);
    for (const Value& v : r->GetValue(attribute)) {
      if (value_counts.count(v) > 0) weights[v] += weight;
    }
  }
  if (weights.empty()) {
    return MajorityVoteFusion().Fuse(attribute, value_counts, members);
  }
  double best = 0.0;
  for (const auto& [v, w] : weights) best = std::max(best, w);
  std::vector<Value> winners;
  for (const auto& [v, w] : weights) {
    if (w >= best - 1e-12) winners.push_back(v);
  }
  return MakeValueSet(std::move(winners));
}

}  // namespace maroon
