#include "clustering/adjusted_binding_clusterer.h"

#include <algorithm>
#include <map>

#include "clustering/partition_clusterer.h"

namespace maroon {

std::vector<Cluster> AdjustedBindingClusterer::ClusterRecords(
    const std::vector<const TemporalRecord*>& records) const {
  last_rounds_ = 0;
  // Initial early binding.
  PartitionClusterer partitioner(
      similarity_, PartitionOptions{options_.similarity_threshold});
  std::vector<Cluster> clusters = partitioner.ClusterRecords(records);
  if (clusters.size() <= 1 || records.size() <= 1) return clusters;

  std::map<RecordId, const TemporalRecord*> by_id;
  for (const TemporalRecord* r : records) by_id[r->id()] = r;

  // Current assignment: record -> cluster index.
  std::map<RecordId, size_t> assignment;
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (RecordId id : clusters[i].records()) assignment[id] = i;
  }

  for (size_t round = 0; round < options_.max_rounds; ++round) {
    ++last_rounds_;
    // Freeze the round's cluster states, then re-bind every record to its
    // best state (possibly a cluster created "later" than the record).
    std::vector<std::map<Attribute, ValueSet>> states;
    states.reserve(clusters.size());
    for (const Cluster& c : clusters) states.push_back(c.MajorityState());

    bool changed = false;
    std::map<RecordId, size_t> next_assignment;
    for (const auto& [id, current] : assignment) {
      const TemporalRecord* record = by_id.at(id);
      double best_similarity = -1.0;
      size_t best = current;
      for (size_t i = 0; i < clusters.size(); ++i) {
        if (clusters[i].empty()) continue;
        const double sim =
            similarity_->RecordToStateSimilarity(*record, states[i]);
        if (sim > best_similarity) {
          best_similarity = sim;
          best = i;
        }
      }
      if (best_similarity < options_.similarity_threshold) best = current;
      next_assignment[id] = best;
      changed |= best != current;
    }
    if (!changed) break;

    // Rebuild clusters from the new assignment.
    std::vector<Cluster> rebuilt(clusters.size());
    for (const auto& [id, index] : next_assignment) {
      rebuilt[index].Add(*by_id.at(id));
    }
    clusters = std::move(rebuilt);
    assignment = std::move(next_assignment);
  }

  clusters.erase(std::remove_if(clusters.begin(), clusters.end(),
                                [](const Cluster& c) { return c.empty(); }),
                 clusters.end());
  return clusters;
}

}  // namespace maroon
