#ifndef MAROON_CLUSTERING_CLUSTER_H_
#define MAROON_CLUSTERING_CLUSTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/temporal_record.h"
#include "core/time_types.h"
#include "core/value.h"

namespace maroon {

/// The signature Θ_c of a cluster (paper Def. 4): per attribute, the value
/// set V_c^A the cluster holds in this state together with a confidence
/// conf(c, A), plus the cluster's time interval [tmin, tmax].
struct ClusterSignature {
  std::map<Attribute, ValueSet> values;
  std::map<Attribute, double> confidence;
  Interval interval;

  /// V_c^A, or an empty set if the signature lacks the attribute.
  const ValueSet& ValuesOf(const Attribute& attribute) const;
  /// conf(c, A); 0 if absent.
  double ConfidenceOf(const Attribute& attribute) const;

  std::string ToString() const;
};

/// A set of records believed to describe the same state of the same entity
/// over some time period. Accumulates per-attribute value occurrence counts
/// so the majority-vote fusion of the signature is O(1) per value.
class Cluster {
 public:
  Cluster() = default;

  /// Adds a member record; value occurrences and the time span are updated.
  /// Adding the same record twice is a no-op.
  void Add(const TemporalRecord& record);

  /// Adds only `record`'s values for `attribute` (used when a stale record
  /// joins an existing cluster for a subset of its attributes, Algorithm 2
  /// lines 12-16; the record still becomes a member once).
  void AddForAttribute(const TemporalRecord& record,
                       const Attribute& attribute);

  const std::vector<RecordId>& records() const { return records_; }
  bool Contains(RecordId id) const;
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Earliest member timestamp; only valid if non-empty.
  TimePoint tmin() const { return tmin_; }
  /// Latest member timestamp; only valid if non-empty.
  TimePoint tmax() const { return tmax_; }

  /// Majority-vote fusion (paper §4.3.1): per attribute, the values with the
  /// highest occurrence count among members (ties keep all tied values).
  std::map<Attribute, ValueSet> MajorityState() const;

  /// The signature with majority values, the member time span, and all
  /// confidences initialized to `initial_confidence`.
  ClusterSignature BuildSignature(double initial_confidence = 0.0) const;

  const std::map<Attribute, std::map<Value, int64_t>>& value_counts() const {
    return value_counts_;
  }

 private:
  void ExtendSpan(TimePoint t);
  bool AddMember(RecordId id, TimePoint t);

  std::vector<RecordId> records_;
  std::map<Attribute, std::map<Value, int64_t>> value_counts_;
  TimePoint tmin_ = 0;
  TimePoint tmax_ = 0;
};

}  // namespace maroon

#endif  // MAROON_CLUSTERING_CLUSTER_H_
