#ifndef MAROON_CLUSTERING_PARTITION_CLUSTERER_H_
#define MAROON_CLUSTERING_PARTITION_CLUSTERER_H_

#include <vector>

#include "clustering/cluster.h"
#include "core/temporal_record.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// Options for the PARTITION clusterer.
struct PartitionOptions {
  /// A record joins the most similar cluster if the similarity reaches this;
  /// otherwise it seeds a new cluster.
  double similarity_threshold = 0.8;
};

/// The traditional single-pass PARTITION clustering algorithm
/// (Hassanzadeh et al., PVLDB 2009 — the paper's ref. [13]), used to seed
/// MAROON's Phase I with clusters of fresh-source records.
///
/// Records are processed in ascending timestamp order; each record is
/// compared against the majority state of every existing cluster and joins
/// the best match above the threshold, else starts a new cluster. The
/// algorithm is agnostic to entity evolution and source freshness by design —
/// that is exactly the baseline behaviour the paper builds on.
class PartitionClusterer {
 public:
  PartitionClusterer(const SimilarityCalculator* similarity,
                     PartitionOptions options = {})
      : similarity_(similarity), options_(options) {}

  /// Groups `records` into clusters. Pointers must stay valid for the call.
  std::vector<Cluster> ClusterRecords(
      const std::vector<const TemporalRecord*>& records) const;

  const PartitionOptions& options() const { return options_; }

 private:
  const SimilarityCalculator* similarity_;
  PartitionOptions options_;
};

}  // namespace maroon

#endif  // MAROON_CLUSTERING_PARTITION_CLUSTERER_H_
