#include "clustering/cluster.h"

#include <algorithm>

namespace maroon {

namespace {
const ValueSet& EmptyValues() {
  static const ValueSet* kEmpty = new ValueSet();
  return *kEmpty;
}
}  // namespace

const ValueSet& ClusterSignature::ValuesOf(const Attribute& attribute) const {
  auto it = values.find(attribute);
  return it != values.end() ? it->second : EmptyValues();
}

double ClusterSignature::ConfidenceOf(const Attribute& attribute) const {
  auto it = confidence.find(attribute);
  return it != confidence.end() ? it->second : 0.0;
}

std::string ClusterSignature::ToString() const {
  std::string out = "Signature" + interval.ToString();
  for (const auto& [attr, vs] : values) {
    out += " <" + attr + ", " + ValueSetToString(vs) + ", ";
    auto it = confidence.find(attr);
    out += std::to_string(it != confidence.end() ? it->second : 0.0) + ">";
  }
  return out;
}

bool Cluster::Contains(RecordId id) const {
  return std::find(records_.begin(), records_.end(), id) != records_.end();
}

void Cluster::ExtendSpan(TimePoint t) {
  if (records_.empty()) {
    tmin_ = tmax_ = t;
  } else {
    tmin_ = std::min(tmin_, t);
    tmax_ = std::max(tmax_, t);
  }
}

bool Cluster::AddMember(RecordId id, TimePoint t) {
  if (Contains(id)) return false;
  ExtendSpan(t);
  records_.push_back(id);
  return true;
}

void Cluster::Add(const TemporalRecord& record) {
  if (!AddMember(record.id(), record.timestamp())) return;
  for (const auto& [attr, values] : record.values()) {
    for (const Value& v : values) ++value_counts_[attr][v];
  }
}

void Cluster::AddForAttribute(const TemporalRecord& record,
                              const Attribute& attribute) {
  AddMember(record.id(), record.timestamp());
  for (const Value& v : record.GetValue(attribute)) {
    ++value_counts_[attribute][v];
  }
}

std::map<Attribute, ValueSet> Cluster::MajorityState() const {
  std::map<Attribute, ValueSet> state;
  for (const auto& [attr, counts] : value_counts_) {
    int64_t best = 0;
    for (const auto& [v, count] : counts) best = std::max(best, count);
    ValueSet winners;
    for (const auto& [v, count] : counts) {
      if (count == best) winners.push_back(v);
    }
    state[attr] = MakeValueSet(std::move(winners));
  }
  return state;
}

ClusterSignature Cluster::BuildSignature(double initial_confidence) const {
  ClusterSignature sig;
  sig.values = MajorityState();
  for (const auto& [attr, vs] : sig.values) {
    sig.confidence[attr] = initial_confidence;
  }
  sig.interval = Interval(tmin_, tmax_);
  return sig;
}

}  // namespace maroon
