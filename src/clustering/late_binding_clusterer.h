#ifndef MAROON_CLUSTERING_LATE_BINDING_CLUSTERER_H_
#define MAROON_CLUSTERING_LATE_BINDING_CLUSTERER_H_

#include <vector>

#include "clustering/cluster.h"
#include "core/temporal_record.h"
#include "similarity/record_similarity.h"

namespace maroon {

/// Options for the late-binding clusterer.
struct LateBindingOptions {
  /// Minimum similarity for a cluster to be a *candidate* for a record.
  double similarity_threshold = 0.8;
  /// A record is "ambiguous" when its runner-up candidate scores within
  /// this factor of the best; ambiguous records defer their decision to the
  /// second pass.
  double ambiguity_ratio = 0.9;
};

/// The *late binding* temporal clustering of Li et al. (PVLDB 2011) — the
/// paper's ref. [18], second of its three algorithms (§2): instead of
/// committing each record to a cluster the moment it is scanned (early
/// binding), records whose evidence is ambiguous keep their full candidate
/// set, and the assignment decision is deferred until all records have been
/// seen; the final pass decides against the *complete* cluster states.
///
/// Together with PartitionClusterer (early binding) and
/// AdjustedBindingClusterer this completes ref. [18]'s algorithm family as
/// comparison substrates for MAROON's source-aware Phase I.
class LateBindingClusterer {
 public:
  /// `similarity` must outlive the clusterer.
  LateBindingClusterer(const SimilarityCalculator* similarity,
                       LateBindingOptions options = {})
      : similarity_(similarity), options_(options) {}

  /// Clusters `records` (pointers must stay valid for the call).
  std::vector<Cluster> ClusterRecords(
      const std::vector<const TemporalRecord*>& records) const;

  /// Number of records whose decision was deferred in the last run.
  size_t last_deferred() const { return last_deferred_; }

  const LateBindingOptions& options() const { return options_; }

 private:
  const SimilarityCalculator* similarity_;
  LateBindingOptions options_;
  mutable size_t last_deferred_ = 0;
};

}  // namespace maroon

#endif  // MAROON_CLUSTERING_LATE_BINDING_CLUSTERER_H_
