#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

namespace maroon {
namespace lint {
namespace {

/// Rule ids, for validating allow(...) lists.
const char* const kAllRules[] = {"R001", "R002", "R003", "R004", "R005",
                                 "R006", "R007", "R008", "R009", "R010",
                                 "R011", "R012", "R013", "R014"};

bool IsKnownRule(const std::string& rule) {
  return std::find(std::begin(kAllRules), std::end(kAllRules), rule) !=
         std::end(kAllRules);
}

std::vector<std::string> ParseAllowList(const std::string& comment) {
  std::vector<std::string> rules;
  const size_t marker = comment.find("maroon-lint:");
  if (marker == std::string::npos) return rules;
  const size_t open = comment.find("allow(", marker);
  if (open == std::string::npos) return rules;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string item;
  for (size_t i = open + 6; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (item == "all" || IsKnownRule(item)) rules.push_back(item);
      item.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      item += c;
    }
  }
  return rules;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// The rule runner: significant (non-comment) tokens of one file plus the
/// shared function registry and the suppression table.
class FileLinter {
 public:
  FileLinter(const SourceFile& file, const FunctionRegistry& registry,
             std::vector<Finding>* findings)
      : file_(file),
        registry_(registry),
        suppressions_(file.tokens),
        findings_(findings) {
    for (const Token& t : file_.tokens) {
      if (t.kind != TokenKind::kComment) sig_.push_back(&t);
    }
  }

  void Run() {
    CheckUnguardedResultAccess();   // R001
    CheckDiscardedStatusReturns();  // R002
    CheckFloatEquality();           // R003
    CheckBannedApis();              // R004
    if (file_.is_header) CheckHeaderHygiene();  // R005
    CheckRawAssert();               // R006
    CheckSystemClockNow();          // R007
    CheckRawThread();               // R008
    CheckStdEndl();                 // R009
    CheckUncheckedIo();             // R010
  }

 private:
  void Emit(const std::string& rule, const Token& at, std::string message) {
    if (suppressions_.Allows(at.line, rule)) return;
    findings_->push_back(
        {rule, file_.display_path, at.line, at.col, std::move(message)});
  }

  const Token& Tok(size_t i) const { return *sig_[i]; }
  size_t Size() const { return sig_.size(); }

  bool Is(size_t i, TokenKind kind, const char* text) const {
    return i < Size() && Tok(i).kind == kind && Tok(i).text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return Is(i, TokenKind::kPunct, text);
  }
  bool IsIdent(size_t i) const {
    return i < Size() && Tok(i).kind == TokenKind::kIdentifier;
  }
  bool IsIdent(size_t i, const char* text) const {
    return Is(i, TokenKind::kIdentifier, text);
  }

  /// Index just past the `)` matching the `(` at `open`, or Size().
  size_t SkipParens(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (IsPunct(i, "(")) ++depth;
      if (IsPunct(i, ")") && --depth == 0) return i + 1;
    }
    return Size();
  }

  /// Index just past the `>` closing the `<` at `open`, or Size(). Treats a
  /// fused `>>` as two closers (Result<Result<T>>).
  size_t SkipAngles(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      const std::string& t = Tok(i).text;
      if (Tok(i).kind == TokenKind::kPunct) {
        if (t == "<") ++depth;
        if (t == "<<") depth += 2;
        if (t == ">") --depth;
        if (t == ">>") depth -= 2;
        if (depth <= 0 && (t == ">" || t == ">>")) return i + 1;
        // A type never contains these; bail out of expressions like a < b.
        if (t == ";" || t == "{" || t == "}") return Size();
      }
    }
    return Size();
  }

  // ---------------------------------------------------------------- R001

  struct ResultVar {
    std::string name;
    int min_depth = 0;   // scope is live while brace depth >= min_depth
    bool armed = false;  // params arm at the function body's `{`
    bool guarded = false;
    bool accessed = false;
    const Token* first_access = nullptr;
  };

  void CheckUnguardedResultAccess() {
    std::vector<ResultVar> vars;
    int brace_depth = 0;
    int paren_depth = 0;

    auto finalize = [&](const ResultVar& v) {
      if (v.accessed && !v.guarded) {
        Emit("R001", *v.first_access,
             "Result '" + v.name +
                 "' is accessed without an ok() guard anywhere in its scope; "
                 "check " + v.name +
                 ".ok() first (or use MAROON_ASSIGN_OR_RETURN)");
      }
    };
    auto active = [&](const std::string& name) -> ResultVar* {
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        if (it->name == name) return &*it;
      }
      return nullptr;
    };

    for (size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") ++paren_depth;
        if (t.text == ")") paren_depth = std::max(0, paren_depth - 1);
        if (t.text == "{") {
          ++brace_depth;
          for (ResultVar& v : vars) v.armed = true;
        }
        if (t.text == "}") {
          --brace_depth;
          auto dead = [&](const ResultVar& v) {
            return v.armed && brace_depth < v.min_depth;
          };
          for (const ResultVar& v : vars) {
            if (dead(v)) finalize(v);
          }
          vars.erase(std::remove_if(vars.begin(), vars.end(), dead),
                     vars.end());
        }
      }

      // Declaration: auto name = F(...); where F is a known Result-returning
      // function — the binding is a Result even though the type is spelled
      // `auto`. Only direct single-call initializers match: a trailing
      // member call (`F(...).value()`) is an access, not a binding.
      if (paren_depth == 0 && IsIdent(i, "auto") && IsIdent(i + 1) &&
          IsPunct(i + 2, "=")) {
        std::string callee;
        size_t j = i + 3;
        while (IsIdent(j)) {
          callee = Tok(j).text;
          ++j;
          if (IsPunct(j, "::") || IsPunct(j, ".") || IsPunct(j, "->")) {
            ++j;
            continue;
          }
          break;
        }
        if (!callee.empty() && IsPunct(j, "(") &&
            registry_.result_only.count(callee) > 0) {
          const size_t after = SkipParens(j);
          if (IsPunct(after, ";")) {
            ResultVar v;
            v.name = Tok(i + 1).text;
            v.min_depth = brace_depth;
            v.armed = true;
            vars.push_back(std::move(v));
            i = after;
            continue;
          }
        }
      }

      // Declaration: Result<...> name (not followed by `(` = not a function).
      if (IsIdent(i, "Result") && IsPunct(i + 1, "<")) {
        const size_t after_type = SkipAngles(i + 1);
        if (IsIdent(after_type) && !IsPunct(after_type + 1, "(")) {
          ResultVar v;
          v.name = Tok(after_type).text;
          if (paren_depth > 0) {  // parameter: scope is the upcoming body
            v.min_depth = brace_depth + 1;
            v.armed = false;
          } else {
            v.min_depth = brace_depth;
            v.armed = true;
          }
          vars.push_back(std::move(v));
          i = after_type;
          continue;
        }
      }

      if (!IsIdent(i)) {
        // Unary dereference *name in an unambiguous prefix position.
        if (IsPunct(i, "*") && IsIdent(i + 1)) {
          ResultVar* v = active(Tok(i + 1).text);
          if (v != nullptr && i > 0 && IsDerefContext(i - 1)) {
            RecordAccess(v, Tok(i));
            ++i;
          }
        }
        continue;
      }

      ResultVar* v = active(t.text);
      if (v == nullptr) continue;
      if (IsPunct(i + 1, ".") && IsIdent(i + 2, "ok") && IsPunct(i + 3, "(")) {
        v->guarded = true;
      } else if (IsPunct(i + 1, ".") && IsIdent(i + 2, "value") &&
                 IsPunct(i + 3, "(")) {
        RecordAccess(v, t);
      } else if (IsPunct(i + 1, "->")) {
        RecordAccess(v, t);
      }
    }
    for (const ResultVar& v : vars) finalize(v);
  }

  static void RecordAccess(ResultVar* v, const Token& at) {
    if (!v->accessed) {
      v->accessed = true;
      v->first_access = &at;
    }
  }

  /// True when a `*` right before an identifier at sig index `prev` must be
  /// a dereference, not multiplication.
  bool IsDerefContext(size_t prev) const {
    const Token& p = Tok(prev);
    if (p.kind == TokenKind::kIdentifier) {
      return p.text == "return" || p.text == "co_return";
    }
    if (p.kind != TokenKind::kPunct) return false;
    static const std::set<std::string> kPrefixes = {
        "(", ",",  "=",  "{",  ";",  "!",  "&&", "||", "<",
        ">", "<=", ">=", "==", "!=", "+",  "-",  ":"};
    return kPrefixes.count(p.text) > 0;
  }

  // ---------------------------------------------------------------- R002

  void CheckDiscardedStatusReturns() {
    bool expect_stmt = true;
    std::vector<bool> paren_is_control;

    for (size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {
          const bool control =
              i > 0 && (IsIdent(i - 1, "if") || IsIdent(i - 1, "while") ||
                        IsIdent(i - 1, "for") || IsIdent(i - 1, "switch"));
          paren_is_control.push_back(control);
          expect_stmt = false;
          continue;
        }
        if (t.text == ")") {
          bool control = false;
          if (!paren_is_control.empty()) {
            control = paren_is_control.back();
            paren_is_control.pop_back();
          }
          expect_stmt = control;
          continue;
        }
        if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":") {
          expect_stmt = true;
          continue;
        }
        expect_stmt = false;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "else" || t.text == "do")) {
        expect_stmt = true;
        continue;
      }
      if (expect_stmt && t.kind == TokenKind::kIdentifier) {
        const size_t consumed = MatchDiscardedCall(i);
        if (consumed > 0) {
          i = consumed - 1;  // resume at the ';'
          continue;
        }
      }
      expect_stmt = false;
    }
  }

  /// Matches `name(...)`, `a.b(...).c(...)`, `ns::f(...)` starting at sig
  /// index `i` in statement position, ending in `;`. Emits R002 when the
  /// final callee is in the registry. Returns the index of the terminating
  /// `;` (to skip past), or 0 when the shape does not match.
  size_t MatchDiscardedCall(size_t i) {
    const Token& start = Tok(i);
    std::string callee;
    size_t j = i;
    // Leading qualified/member chain: id ((:: | . | ->) id)*
    while (true) {
      if (!IsIdent(j)) return 0;
      callee = Tok(j).text;
      ++j;
      if (IsPunct(j, "::") || IsPunct(j, ".") || IsPunct(j, "->")) {
        ++j;
        continue;
      }
      break;
    }
    if (!IsPunct(j, "(")) return 0;
    size_t after = SkipParens(j);
    // Trailing member-call chain: (.|->) id (...) — the last call decides.
    while (IsPunct(after, ".") || IsPunct(after, "->")) {
      ++after;
      if (!IsIdent(after)) return 0;
      callee = Tok(after).text;
      ++after;
      if (!IsPunct(after, "(")) return 0;  // member access, not a call
      after = SkipParens(after);
    }
    if (!IsPunct(after, ";")) return 0;
    if (registry_.status_or_result.count(callee) > 0 &&
        DefaultRegistryBlocklist().count(callee) == 0) {
      Emit("R002", start,
           "return value of '" + callee +
               "' (returns Status/Result) is discarded; handle it, or make "
               "the discard explicit with (void) and a justification");
    }
    return after;
  }

  // ---------------------------------------------------------------- R003

  void CheckFloatEquality() {
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsPunct(i, "==") && !IsPunct(i, "!=")) continue;
      const bool prev_float = i > 0 &&
                              Tok(i - 1).kind == TokenKind::kNumber &&
                              Tok(i - 1).is_float;
      const bool next_float = i + 1 < Size() &&
                              Tok(i + 1).kind == TokenKind::kNumber &&
                              Tok(i + 1).is_float;
      if (prev_float || next_float) {
        Emit("R003", Tok(i),
             "floating-point " + Tok(i).text +
                 " comparison; use ApproxEqual/ApproxZero from "
                 "common/float_compare.h");
      }
    }
  }

  // ---------------------------------------------------------------- R004

  void CheckBannedApis() {
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i)) continue;
      const std::string& name = Tok(i).text;

      // #include <regex> and std::regex.
      if (name == "regex") {
        const bool is_include = i >= 3 && IsPunct(i - 1, "<") &&
                                IsIdent(i - 2, "include") &&
                                IsPunct(i - 3, "#");
        const bool is_std = i >= 2 && IsPunct(i - 1, "::") &&
                            IsIdent(i - 2, "std");
        if (is_include || is_std) {
          Emit("R004", Tok(i),
               "std::regex is banned in MAROON (slow, locale-dependent); use "
               "common/string_util.h helpers or a hand-rolled scanner");
        }
        continue;
      }

      if (!IsPunct(i + 1, "(")) continue;
      if (!IsBannedCallContext(i)) continue;

      if (name == "atoi" || name == "atol" || name == "atof") {
        Emit("R004", Tok(i),
             "'" + name +
                 "' parses without error detection; use std::from_chars or "
                 "FlagParser (common/flags.h)");
      } else if (name == "rand" || name == "srand") {
        Emit("R004", Tok(i),
             "'" + name +
                 "' is not seedable per-run and breaks reproducibility; use "
                 "maroon::Random (common/random.h)");
      } else if (name == "strtod" || name == "strtof" || name == "strtold") {
        if (SecondArgIsNull(i + 1)) {
          Emit("R004", Tok(i),
               "'" + name +
                   "' with a null end pointer cannot detect trailing "
                   "garbage; pass an end pointer and check it consumed the "
                   "whole input");
        }
      }
    }
  }

  /// The banned-name call must be unqualified or std-qualified; a member or
  /// foreign-namespace function that happens to share the name is fine, and
  /// so is a declaration (`int rand();` in an unrelated class).
  bool IsBannedCallContext(size_t i) const {
    if (i == 0) return true;
    const Token& p = Tok(i - 1);
    if (p.kind == TokenKind::kPunct &&
        (p.text == "." || p.text == "->")) {
      return false;
    }
    if (p.kind == TokenKind::kPunct && p.text == "::") {
      return i >= 2 && IsIdent(i - 2, "std");
    }
    if (p.kind == TokenKind::kIdentifier) {
      // A preceding identifier means a declaration (`int rand()`), unless it
      // is one of the keywords that legitimately precede a call expression.
      static const std::set<std::string> kCallPrefixKeywords = {
          "return", "throw", "co_return", "co_await", "co_yield",
          "else",   "do",    "case",      "not",      "and",
          "or"};
      return kCallPrefixKeywords.count(p.text) > 0;
    }
    return true;
  }

  /// For `strtod(` at sig index `open`: does the second top-level argument
  /// read nullptr/NULL/0?
  bool SecondArgIsNull(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (IsPunct(i, "(")) ++depth;
      if (IsPunct(i, ")") && --depth == 0) return false;
      if (depth == 1 && IsPunct(i, ",")) {
        return IsIdent(i + 1, "nullptr") || IsIdent(i + 1, "NULL") ||
               Is(i + 1, TokenKind::kNumber, "0");
      }
    }
    return false;
  }

  // ---------------------------------------------------------------- R005

  void CheckHeaderHygiene() {
    const std::string expected = ExpectedGuard(file_.guard_path);
    const bool has_guard = Size() >= 6 && IsPunct(0, "#") &&
                           IsIdent(1, "ifndef") && IsIdent(2) &&
                           IsPunct(3, "#") && IsIdent(4, "define") &&
                           IsIdent(5) && Tok(2).text == Tok(5).text;
    if (!has_guard) {
      Token at = Size() > 0 ? Tok(0) : Token{};
      Emit("R005", at,
           "header must open with an include guard '#ifndef " + expected +
               "' + '#define " + expected + "'");
    } else if (Tok(2).text != expected) {
      Emit("R005", Tok(2),
           "include guard '" + Tok(2).text + "' does not match the project "
               "convention; expected '" + expected + "'");
    }

    for (size_t i = 0; i + 1 < Size(); ++i) {
      if (IsIdent(i, "using") && IsIdent(i + 1, "namespace")) {
        Emit("R005", Tok(i),
             "'using namespace' in a header leaks into every includer; "
             "qualify names instead");
      }
    }
  }

  // ---------------------------------------------------------------- R006

  void CheckRawAssert() {
    if (StartsWith(file_.guard_path, "src/common/")) return;
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i, "assert") || !IsPunct(i + 1, "(")) continue;
      if (i > 0) {
        const Token& p = Tok(i - 1);
        if (p.kind == TokenKind::kPunct &&
            (p.text == "." || p.text == "->" || p.text == "::" ||
             p.text == "#")) {
          continue;
        }
        // #define assert / #undef assert / #ifdef assert
        if (p.kind == TokenKind::kIdentifier &&
            (p.text == "define" || p.text == "undef" || p.text == "ifdef" ||
             p.text == "ifndef")) {
          continue;
        }
      }
      Emit("R006", Tok(i),
           "raw assert() vanishes under NDEBUG and cannot stream context; "
           "use MAROON_CHECK (always on) or MAROON_DCHECK (debug only)");
    }
  }

  // ---------------------------------------------------------------- R007

  void CheckSystemClockNow() {
    // Wall-clock reads scattered through the pipeline skew span timings and
    // make runs irreproducible. Durations belong on steady_clock; the only
    // sanctioned wall-clock call sites are the timestamp helpers in src/obs/
    // (run reports) and src/common/ (log lines).
    if (StartsWith(file_.guard_path, "src/obs/") ||
        StartsWith(file_.guard_path, "src/common/")) {
      return;
    }
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i, "system_clock")) continue;
      if (!IsPunct(i + 1, "::") || !IsIdent(i + 2, "now") ||
          !IsPunct(i + 3, "(")) {
        continue;
      }
      Emit("R007", Tok(i),
           "direct system_clock::now() outside src/obs/ and src/common/; "
           "use steady_clock for durations, or the sanctioned wall-clock "
           "helpers (obs::Iso8601UtcNow, MAROON_LOG timestamps)");
    }
  }

  // ---------------------------------------------------------------- R008

  void CheckRawThread() {
    // Hand-rolled std::thread/std::jthread fan-out bypasses the project
    // runtime: no --threads/MAROON_THREADS control, no nested-section
    // inlining, no PoolTaskScope span attribution, and the TSan CI job only
    // exercises pool-driven code paths. `#include <thread>` and
    // std::this_thread remain fine — only thread *construction* is flagged.
    if (StartsWith(file_.guard_path, "src/common/thread_pool.")) return;
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i, "thread") && !IsIdent(i, "jthread")) continue;
      if (i < 2 || !IsPunct(i - 1, "::") || !IsIdent(i - 2, "std")) continue;
      // std::thread::id / std::thread::hardware_concurrency are member
      // accesses on the type, not thread construction.
      if (IsPunct(i + 1, "::")) continue;
      Emit("R008", Tok(i - 2),
           "raw std::" + Tok(i).text +
               " outside src/common/thread_pool.*; run parallel work "
               "through maroon::ThreadPool so --threads, span attribution, "
               "and TSan coverage stay accurate");
    }
  }

  // ---------------------------------------------------------------- R009

  void CheckStdEndl() {
    // std::endl flushes on every use; in the pipeline's hot emitters (bench
    // rows, JSONL snapshots, lint output over hundreds of files) that turns
    // buffered writes into one syscall per line. Library and pipeline code
    // must use "\n" and flush explicitly where durability matters. Tests
    // and tools print small amounts interactively, so they are exempt —
    // except their fixture trees, which exist to exercise the rule.
    const bool exempt = (StartsWith(file_.guard_path, "tests/") ||
                         StartsWith(file_.guard_path, "tools/")) &&
                        file_.guard_path.find("testdata") == std::string::npos;
    if (exempt) return;
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i, "endl")) continue;
      if (i < 2 || !IsPunct(i - 1, "::") || !IsIdent(i - 2, "std")) continue;
      Emit("R009", Tok(i - 2),
           "std::endl forces a flush per line; stream \"\\n\" and flush "
           "explicitly (out.flush()) only where durability requires it");
    }
  }

  // ---------------------------------------------------------------- R010

  void CheckUncheckedIo() {
    // fwrite can write short, fflush can fail on a full disk, and rename is
    // the atomic-publish step of every durable write — a discarded return
    // turns each into silent data loss. Production code must check them;
    // tests and tools are exempt (their fixture trees are not, as in R009).
    const bool exempt = (StartsWith(file_.guard_path, "tests/") ||
                         StartsWith(file_.guard_path, "tools/")) &&
                        file_.guard_path.find("testdata") == std::string::npos;
    if (exempt) return;
    static const std::set<std::string> kMustCheck = {"fwrite", "fflush",
                                                     "rename"};
    bool expect_stmt = true;
    std::vector<bool> paren_is_control;
    for (size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {
          const bool control =
              i > 0 && (IsIdent(i - 1, "if") || IsIdent(i - 1, "while") ||
                        IsIdent(i - 1, "for") || IsIdent(i - 1, "switch"));
          paren_is_control.push_back(control);
          expect_stmt = false;
          continue;
        }
        if (t.text == ")") {
          bool control = false;
          if (!paren_is_control.empty()) {
            control = paren_is_control.back();
            paren_is_control.pop_back();
          }
          expect_stmt = control;
          continue;
        }
        if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":") {
          expect_stmt = true;
          continue;
        }
        expect_stmt = false;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "else" || t.text == "do")) {
        expect_stmt = true;
        continue;
      }
      if (expect_stmt && t.kind == TokenKind::kIdentifier) {
        // Statement starts here: match [std ::] name ( ... ) ; — a captured
        // or compared return value never begins the statement with the call.
        size_t j = i;
        if (IsIdent(j, "std") && IsPunct(j + 1, "::")) j += 2;
        if (IsIdent(j) && kMustCheck.count(Tok(j).text) > 0 &&
            IsPunct(j + 1, "(")) {
          const size_t after = SkipParens(j + 1);
          if (IsPunct(after, ";")) {
            Emit("R010", Tok(i),
                 "return value of '" + Tok(j).text +
                     "' is discarded; short writes, flush failures, and "
                     "rename races vanish silently — check it, or cast to "
                     "(void) with a justification");
          }
        }
      }
      expect_stmt = false;
    }
  }

  const SourceFile& file_;
  const FunctionRegistry& registry_;
  Suppressions suppressions_;
  std::vector<Finding>* findings_;
  std::vector<const Token*> sig_;
};

}  // namespace

Suppressions::Suppressions(const std::vector<Token>& tokens) {
  std::set<int> code_lines;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) code_lines.insert(t.line);
  }
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    for (const std::string& rule : ParseAllowList(t.text)) {
      by_line_[t.line].insert(rule);
      if (code_lines.count(t.line) == 0) by_line_[t.line + 1].insert(rule);
    }
  }
}

bool Suppressions::Allows(int line, const std::string& rule) const {
  auto it = by_line_.find(line);
  if (it == by_line_.end()) return false;
  return it->second.count("all") > 0 || it->second.count(rule) > 0;
}

SourceFile MakeSourceFile(const std::string& rel_path,
                          std::string_view content) {
  SourceFile file;
  file.display_path = rel_path;
  file.guard_path = rel_path;
  const size_t dot = rel_path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : rel_path.substr(dot);
  file.is_header = ext == ".h" || ext == ".hpp";
  file.tokens = Tokenize(content);

  // Preprocessor lines: a line whose first non-blank character is '#', plus
  // every continuation line a trailing backslash pulls in.
  int line_no = 1;
  bool continuation = false;
  size_t pos = 0;
  while (pos <= content.size()) {
    const size_t eol = content.find('\n', pos);
    const std::string_view line =
        content.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                          : eol - pos);
    const size_t first = line.find_first_not_of(" \t\r");
    const bool directive =
        continuation || (first != std::string_view::npos && line[first] == '#');
    if (directive) file.preprocessor_lines.insert(line_no);
    // A trailing backslash (ignoring the \r of CRLF) continues the directive.
    std::string_view trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == '\r' || trimmed.back() == ' ' ||
            trimmed.back() == '\t')) {
      trimmed.remove_suffix(1);
    }
    continuation = directive && !trimmed.empty() && trimmed.back() == '\\';
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line_no;
  }
  return file;
}

FunctionRegistry CollectFunctionRegistry(const std::vector<Token>& tokens) {
  std::vector<const Token*> sig;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) sig.push_back(&t);
  }
  auto ident_at = [&](size_t i) {
    return i < sig.size() && sig[i]->kind == TokenKind::kIdentifier;
  };
  auto punct_at = [&](size_t i, const char* text) {
    return i < sig.size() && sig[i]->kind == TokenKind::kPunct &&
           sig[i]->text == text;
  };

  FunctionRegistry registry;
  for (size_t i = 0; i < sig.size(); ++i) {
    if (sig[i]->kind != TokenKind::kIdentifier) continue;
    if (sig[i]->text == "Status" && ident_at(i + 1) && punct_at(i + 2, "(")) {
      registry.status_or_result.insert(sig[i + 1]->text);
    }
    if (sig[i]->text == "Result" && punct_at(i + 1, "<")) {
      int depth = 0;
      size_t j = i + 1;
      for (; j < sig.size(); ++j) {
        const std::string& t = sig[j]->text;
        if (sig[j]->kind != TokenKind::kPunct) continue;
        if (t == "<") ++depth;
        if (t == "<<") depth += 2;
        if (t == ">") --depth;
        if (t == ">>") depth -= 2;
        if (depth <= 0 && (t == ">" || t == ">>")) break;
        if (t == ";" || t == "{" || t == "}") {
          j = sig.size();
          break;
        }
      }
      if (j < sig.size() && ident_at(j + 1) && punct_at(j + 2, "(")) {
        registry.status_or_result.insert(sig[j + 1]->text);
        registry.result_only.insert(sig[j + 1]->text);
      }
    }
  }
  return registry;
}

const std::set<std::string>& DefaultRegistryBlocklist() {
  // Status factory methods: used as expressions everywhere; a bare
  // `Internal(...);` statement is not a plausible bug.
  static const std::set<std::string> kBlocklist = {
      "OK",         "InvalidArgument",    "NotFound", "AlreadyExists",
      "OutOfRange", "FailedPrecondition", "Internal", "IOError"};
  return kBlocklist;
}

void LintFile(const SourceFile& file, const FunctionRegistry& registry,
              std::vector<Finding>* findings) {
  FileLinter(file, registry, findings).Run();
}

std::string ExpectedGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "MAROON_";
  for (char c : path) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

}  // namespace lint
}  // namespace maroon
