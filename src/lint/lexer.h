#ifndef MAROON_LINT_LEXER_H_
#define MAROON_LINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace maroon {
namespace lint {

/// A miniature C++ lexer for maroon_lint (see rules.h).
///
/// This is deliberately not a compiler front end: it has no preprocessor, no
/// grammar, and no symbol table. It splits a translation unit into tokens
/// precisely enough that the project rules can reason about code without
/// being fooled by comments, string literals (including raw strings), or
/// character literals — the failure mode of grep-based checks.

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (the rules tell them apart)
  kNumber,      // integer or floating literal, suffixes included
  kString,      // "..." or R"delim(...)delim", prefix included
  kChar,        // '...'
  kPunct,       // operators and punctuation, multi-char ops fused
  kComment,     // // or /* */, text included (suppressions live here)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character
  /// Numbers only: literal contains '.' or a decimal exponent.
  bool is_float = false;
};

/// Tokenizes `source`. Never fails: unrecognizable bytes become single-char
/// punct tokens, so the rules degrade gracefully on exotic input.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_LEXER_H_
