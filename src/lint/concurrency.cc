#include "lint/concurrency.h"

#include <algorithm>
#include <deque>
#include <set>

namespace maroon {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// R014 allowlist: files whose relaxed atomics carry a written
/// no-synchronization argument (monotonic counters read only for reporting,
/// or values republished under a lock / with acquire-release elsewhere).
/// Tests and tools are exempt wholesale, fixture trees are not (as in R009).
bool RelaxedAllowlisted(const std::string& guard_path) {
  static const char* const kRelaxedAllowlist[] = {
      "src/common/thread_pool.",  // pool tick/steal counters
      "src/common/logging.",      // dropped-line counter
      "src/obs/metrics.",         // Counter/Gauge cells
      "src/obs/latency_histogram.",  // striped bucket counters
      "src/obs/trace.",           // span sequence numbers
      "src/transition/transition_table.",  // cache-hit counter
  };
  for (const char* prefix : kRelaxedAllowlist) {
    if (StartsWith(guard_path, prefix)) return true;
  }
  return (StartsWith(guard_path, "tests/") ||
          StartsWith(guard_path, "tools/")) &&
         guard_path.find("testdata") == std::string::npos;
}

const std::set<std::string>& BlockingFreeCalls() {
  static const std::set<std::string> kCalls = {
      "fsync", "fdatasync", "fwrite", "fread",
      "fflush", "fopen",    "fclose", "rename"};
  return kCalls;
}

const std::set<std::string>& BlockingMemberCalls() {
  static const std::set<std::string> kCalls = {"Append", "Sync", "flush"};
  return kCalls;
}

/// Lock-wrapper class names recognized as scoped acquisitions. Matching is
/// by final identifier, so std::/maroon:: qualification is irrelevant.
bool IsScopedLockType(const std::string& name) {
  return name == "MutexLock" || name == "lock_guard" ||
         name == "unique_lock" || name == "scoped_lock";
}

/// Per-function walker state: one live scoped-lock variable.
struct LockVar {
  std::vector<std::string> ids;  // mutexes it covers (scoped_lock: several)
  bool held = false;
};

class FileChecker {
 public:
  FileChecker(const SourceFile& file, const FileSymbols& symbols,
              const ConcurrencyContext& context,
              std::vector<Finding>* findings, LockOrderGraph* graph)
      : file_(file),
        symbols_(symbols),
        context_(context),
        suppressions_(file.tokens),
        findings_(findings),
        graph_(graph) {}

  void Run() {
    for (const FunctionBody& fn : symbols_.functions) AnalyzeFunction(fn);
    CheckRelaxedAtomics();  // R014 — file-wide, not per function
  }

 private:
  // ----------------------------------------------------------- primitives

  size_t Size() const { return symbols_.sig.size(); }
  const Token& Tok(size_t i) const { return *symbols_.sig[i]; }

  bool IsIdent(size_t i) const {
    return i < Size() && Tok(i).kind == TokenKind::kIdentifier;
  }
  bool IsIdent(size_t i, const char* text) const {
    return IsIdent(i) && Tok(i).text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return i < Size() && Tok(i).kind == TokenKind::kPunct &&
           Tok(i).text == text;
  }

  size_t MatchParen(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (IsPunct(i, "(")) ++depth;
      if (IsPunct(i, ")") && --depth == 0) return i;
    }
    return kNpos;
  }

  size_t TrySkipAngles(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (Tok(i).kind != TokenKind::kPunct) continue;
      const std::string& t = Tok(i).text;
      if (t == "<") ++depth;
      if (t == "<<") depth += 2;
      if (t == ">") --depth;
      if (t == ">>") depth -= 2;
      if (depth <= 0 && (t == ">" || t == ">>")) return i + 1;
      if (t == ";" || t == "{" || t == "}") return kNpos;
    }
    return kNpos;
  }

  void Emit(const std::string& rule, const Token& at, std::string message) {
    if (suppressions_.Allows(at.line, rule)) return;
    findings_->push_back(
        {rule, file_.display_path, at.line, at.col, std::move(message)});
  }

  const ClassModel* EnclosingClass() const {
    if (current_class_.empty() || context_.classes == nullptr) return nullptr;
    auto it = context_.classes->find(current_class_);
    return it == context_.classes->end() ? nullptr : &it->second;
  }

  // --------------------------------------------------------- mutex naming

  /// Canonical id of a mutex expression ("mu_", "batch->mu", "&state.mu").
  /// `->` normalizes to `.`; a bare member of the enclosing class and a
  /// multi-part chain both get the class (or, outside classes, the file) as
  /// prefix, so every spelling inside one class agrees.
  std::string ResolveMutex(const std::string& raw) const {
    std::string expr;
    expr.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '&' || raw[i] == '*') continue;
      if (raw[i] == '-' && i + 1 < raw.size() && raw[i + 1] == '>') {
        expr += '.';
        ++i;
        continue;
      }
      expr += raw[i];
    }
    if (expr.empty()) return expr;
    const std::string prefix =
        current_class_.empty() ? file_.display_path : current_class_;
    return prefix + "::" + expr;
  }

  /// Collects the receiver chain of a member call: for `a.b->mu . lock (`,
  /// called with `i` at the `.` before "lock", returns "a.b.mu".
  std::string ReceiverChainBefore(size_t dot) const {
    std::vector<std::string> parts;
    size_t i = dot;
    while (i >= 1 && (IsPunct(i, ".") || IsPunct(i, "->")) && IsIdent(i - 1)) {
      parts.push_back(Tok(i - 1).text);
      if (i < 2) break;
      i -= 2;
    }
    if (parts.empty()) return "";
    std::string chain;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (!chain.empty()) chain += '.';
      chain += *it;
    }
    return chain;
  }

  // ------------------------------------------------------------ held set

  void AcquireId(const std::string& id, const Token& at) {
    if (id.empty()) return;
    const bool suppressed = suppressions_.Allows(at.line, "R012");
    for (const std::string& held : held_) {
      if (held == id) continue;
      graph_->AddEdge(held, id, file_.display_path, at.line, at.col,
                      current_function_, suppressed);
    }
    held_.push_back(id);
  }

  void ReleaseId(const std::string& id) {
    auto it = std::find(held_.rbegin(), held_.rend(), id);
    if (it != held_.rend()) held_.erase(std::next(it).base());
  }

  bool IsHeld(const std::string& id) const {
    return std::find(held_.begin(), held_.end(), id) != held_.end();
  }

  std::string HeldSummary() const {
    std::string out;
    for (const std::string& id : held_) {
      if (!out.empty()) out += ", ";
      out += "'" + id + "'";
    }
    return out;
  }

  // ------------------------------------------------------- function walk

  void AnalyzeFunction(const FunctionBody& fn) {
    FunctionAnnotations ann = fn.annotations;
    current_class_ = fn.class_name;
    current_function_ = fn.name.empty() ? "<operator>" : fn.name;
    if (const ClassModel* cls = EnclosingClass()) {
      auto it = cls->methods.find(fn.name);
      if (it != cls->methods.end()) ann.MergeFrom(it->second);
    }
    if (ann.no_analysis) return;

    held_.clear();
    lock_vars_.clear();
    frames_.clear();
    frames_.push_back({});

    // Entry held-set: REQUIRES and RELEASE name locks the caller holds on
    // entry; ACQUIRE locks are treated as held for the whole body (the
    // acquisition point inside is not modeled — MutexLock-style wrappers
    // are the only users).
    for (const auto* list : {&ann.requires_held, &ann.acquires,
                             &ann.releases}) {
      for (const std::string& arg : *list) {
        const std::string id = ResolveMutex(arg);
        if (!id.empty() && !IsHeld(id)) held_.push_back(id);
      }
    }

    const size_t end = fn.body_end - 1;  // the closing '}'
    for (size_t i = fn.body_begin + 1; i < end; ++i) {
      if (IsPunct(i, "{")) {
        frames_.push_back({});
        continue;
      }
      if (IsPunct(i, "}")) {
        PopFrame();
        continue;
      }
      if (!IsIdent(i)) continue;
      const std::string& name = Tok(i).text;

      if (IsScopedLockType(name)) {
        const size_t next = HandleLockDeclaration(i);
        if (next != kNpos) {
          i = next;
          continue;
        }
      }

      const bool prev_dot = i >= 1 && (IsPunct(i - 1, ".") ||
                                       IsPunct(i - 1, "->"));
      if (prev_dot && IsPunct(i + 1, "(")) {
        if (name == "lock" || name == "unlock") {
          HandleManualLockCall(i, name == "lock");
          i = MatchParen(i + 1) == kNpos ? i : MatchParen(i + 1);
          continue;
        }
        if (!held_.empty() && BlockingMemberCalls().count(name) > 0) {
          Emit("R013", Tok(i),
               "blocking '." + name + "()' while holding " + HeldSummary() +
                   " in '" + current_function_ +
                   "'; move the I/O outside the critical section");
        }
      }

      if (!prev_dot) {
        HandleUnqualifiedIdent(i, fn);
      } else if (i >= 2 && IsPunct(i - 1, "->") && IsIdent(i - 2, "this")) {
        CheckGuardedFieldAccess(i, fn);
      }
    }
    current_class_.clear();
    current_function_.clear();
  }

  void PopFrame() {
    if (frames_.empty()) return;
    for (const std::string& var : frames_.back()) {
      auto it = lock_vars_.find(var);
      if (it == lock_vars_.end()) continue;
      if (it->second.held) {
        for (const std::string& id : it->second.ids) ReleaseId(id);
      }
      lock_vars_.erase(it);
    }
    frames_.pop_back();
  }

  /// `MutexLock name(&mu_)` / `std::scoped_lock l(a_mu_, b_mu_)` / ... at
  /// sig index `i` (the type identifier). Returns the resume index, or
  /// kNpos when the tokens are not a lock-variable declaration.
  size_t HandleLockDeclaration(size_t i) {
    size_t j = i + 1;
    if (IsPunct(j, "<")) {
      const size_t past = TrySkipAngles(j);
      if (past == kNpos) return kNpos;
      j = past;
    }
    if (!IsIdent(j) || !IsPunct(j + 1, "(")) return kNpos;
    const std::string var = Tok(j).text;
    const size_t open = j + 1;
    const size_t close = MatchParen(open);
    if (close == kNpos) return kNpos;

    // Split the top-level arguments.
    std::vector<std::string> args;
    int depth = 0;
    std::string current;
    for (size_t k = open + 1; k <= close; ++k) {
      if (IsPunct(k, "(")) ++depth;
      if (IsPunct(k, ")") && depth > 0) {
        --depth;
        current += Tok(k).text;
        continue;
      }
      if (k == close || (depth == 0 && IsPunct(k, ","))) {
        if (!current.empty()) args.push_back(current);
        current.clear();
        continue;
      }
      current += Tok(k).text;
    }

    bool deferred = false;
    bool adopted = false;
    std::vector<std::string> mutex_args;
    for (const std::string& arg : args) {
      if (arg.find("defer_lock") != std::string::npos ||
          arg.find("try_to_lock") != std::string::npos) {
        deferred = true;
      } else if (arg.find("adopt_lock") != std::string::npos) {
        adopted = true;
      } else {
        mutex_args.push_back(arg);
      }
    }

    LockVar lock_var;
    for (const std::string& arg : mutex_args) {
      const std::string id = ResolveMutex(arg);
      if (!id.empty()) lock_var.ids.push_back(id);
    }
    if (lock_var.ids.empty()) return kNpos;

    if (!deferred && !adopted) {
      // scoped_lock's own arguments order-insensitively (it deadlock-avoids
      // internally), so edges run only from the previously held set.
      const size_t prior_held = held_.size();
      for (const std::string& id : lock_var.ids) {
        const bool suppressed = suppressions_.Allows(Tok(i).line, "R012");
        for (size_t h = 0; h < prior_held; ++h) {
          if (held_[h] == id) continue;
          graph_->AddEdge(held_[h], id, file_.display_path, Tok(i).line,
                          Tok(i).col, current_function_, suppressed);
        }
        held_.push_back(id);
      }
      lock_var.held = true;
    } else if (adopted) {
      for (const std::string& id : lock_var.ids) held_.push_back(id);
      lock_var.held = true;
    }
    lock_vars_[var] = std::move(lock_var);
    if (!frames_.empty()) frames_.back().push_back(var);
    return close;
  }

  /// `recv.lock()` / `recv.unlock()`: a known lock variable re-acquires or
  /// releases its mutexes; anything else is a manual mutex operation.
  void HandleManualLockCall(size_t i, bool is_lock) {
    const std::string chain = ReceiverChainBefore(i - 1);
    if (chain.empty()) return;
    auto it = chain.find('.') == std::string::npos ? lock_vars_.find(chain)
                                                   : lock_vars_.end();
    if (it != lock_vars_.end()) {
      LockVar& var = it->second;
      if (is_lock && !var.held) {
        for (const std::string& id : var.ids) AcquireId(id, Tok(i));
        var.held = true;
      } else if (!is_lock && var.held) {
        for (const std::string& id : var.ids) ReleaseId(id);
        var.held = false;
      }
      return;
    }
    const std::string id = ResolveMutex(chain);
    if (id.empty()) return;
    if (is_lock) {
      AcquireId(id, Tok(i));
    } else {
      ReleaseId(id);
    }
  }

  /// Unqualified identifier in a body: annotated-callee contracts, R013
  /// free calls, and R011 guarded-field access.
  void HandleUnqualifiedIdent(size_t i, const FunctionBody& fn) {
    const std::string& name = Tok(i).text;
    const bool std_qualified = i >= 2 && IsPunct(i - 1, "::") &&
                               IsIdent(i - 2, "std");
    const bool other_qualified = i >= 1 && IsPunct(i - 1, "::") &&
                                 !std_qualified;

    if (IsPunct(i + 1, "(") && !other_qualified) {
      // Calls to annotated methods of the enclosing class.
      if (const ClassModel* cls = EnclosingClass()) {
        auto it = cls->methods.find(name);
        if (it != cls->methods.end() && !std_qualified) {
          const FunctionAnnotations& callee = it->second;
          for (const std::string& arg : callee.requires_held) {
            const std::string id = ResolveMutex(arg);
            if (!id.empty() && !IsHeld(id)) {
              Emit("R011", Tok(i),
                   "'" + name + "' requires '" + id +
                       "' (MAROON_REQUIRES) but it is not held here");
            }
          }
          for (const std::string& arg : callee.excludes) {
            const std::string id = ResolveMutex(arg);
            if (!id.empty() && IsHeld(id)) {
              Emit("R012", Tok(i),
                   "'" + name + "' excludes '" + id +
                       "' (MAROON_EXCLUDES) but it is held here — "
                       "guaranteed self-deadlock");
            }
          }
          for (const std::string& arg : callee.acquires) {
            AcquireId(ResolveMutex(arg), Tok(i));
          }
          for (const std::string& arg : callee.releases) {
            ReleaseId(ResolveMutex(arg));
          }
        }
      }
      if (!held_.empty() && BlockingFreeCalls().count(name) > 0) {
        Emit("R013", Tok(i),
             "blocking '" + name + "()' while holding " + HeldSummary() +
                 " in '" + current_function_ +
                 "'; move the I/O outside the critical section");
      }
    }

    if (!other_qualified && !std_qualified) CheckGuardedFieldAccess(i, fn);
  }

  void CheckGuardedFieldAccess(size_t i, const FunctionBody& fn) {
    if (fn.is_ctor || fn.is_dtor) return;  // exclusive access, as in Clang
    const ClassModel* cls = EnclosingClass();
    if (cls == nullptr) return;
    auto it = cls->guarded_fields.find(Tok(i).text);
    if (it == cls->guarded_fields.end()) return;
    const std::string guard = ResolveMutex(it->second.guard);
    if (guard.empty() || IsHeld(guard)) return;
    Emit("R011", Tok(i),
         "field '" + it->second.name + "' is MAROON_GUARDED_BY(" +
             it->second.guard + ") but '" + guard + "' is not held in '" +
             current_function_ +
             "'; take a MutexLock or annotate the method MAROON_REQUIRES");
  }

  // ------------------------------------------------------------- R014

  void CheckRelaxedAtomics() {
    if (RelaxedAllowlisted(file_.guard_path)) return;
    for (size_t i = 0; i < Size(); ++i) {
      if (!IsIdent(i, "memory_order_relaxed")) continue;
      Emit("R014", Tok(i),
           "memory_order_relaxed outside the allowlisted counter sites; "
           "relaxed needs a written no-synchronization argument — use "
           "acquire/release, or extend kRelaxedAllowlist in "
           "src/lint/concurrency.cc with a justification");
    }
  }

  const SourceFile& file_;
  const FileSymbols& symbols_;
  const ConcurrencyContext& context_;
  Suppressions suppressions_;
  std::vector<Finding>* findings_;
  LockOrderGraph* graph_;

  std::string current_class_;
  std::string current_function_;
  std::vector<std::string> held_;
  std::map<std::string, LockVar> lock_vars_;
  std::vector<std::vector<std::string>> frames_;
};

}  // namespace

void LockOrderGraph::AddEdge(const std::string& from, const std::string& to,
                             const std::string& file, int line, int col,
                             const std::string& function, bool suppressed) {
  const auto key = std::make_pair(from, to);
  auto it = edges_.find(key);
  if (it == edges_.end()) {
    edges_[key] = Edge{file, function, line, col, suppressed};
  } else if (it->second.suppressed && !suppressed) {
    // A non-suppressed witness outranks a suppressed one: the allow()
    // comment silences its own site, not the edge everywhere.
    it->second = Edge{file, function, line, col, suppressed};
  }
}

std::vector<Finding> LockOrderGraph::CheckCycles() const {
  // Adjacency over non-suppressed edges only.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : edges_) {
    if (!edge.suppressed) adj[key.first].push_back(key.second);
  }
  auto reaches = [&adj](const std::string& from, const std::string& target) {
    std::set<std::string> seen;
    std::deque<std::string> queue = {from};
    while (!queue.empty()) {
      const std::string node = queue.front();
      queue.pop_front();
      if (node == target) return true;
      if (!seen.insert(node).second) continue;
      auto it = adj.find(node);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) queue.push_back(next);
    }
    return false;
  };

  std::vector<Finding> findings;
  for (const auto& [key, edge] : edges_) {
    if (edge.suppressed) continue;
    if (!reaches(key.second, key.first)) continue;
    findings.push_back(
        {"R012", edge.file, edge.line, edge.col,
         "lock-order cycle: '" + key.second + "' is acquired while holding '" +
             key.first + "' (in '" + edge.function +
             "'), but the reverse order exists elsewhere in the tree; pick "
             "one global order (docs/threading-model.md) and stick to it"});
  }
  return findings;
}

std::vector<std::pair<std::string, std::string>> LockOrderGraph::Edges()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, edge] : edges_) {
    if (!edge.suppressed) out.push_back(key);
  }
  return out;
}

void CheckConcurrency(const SourceFile& file, const FileSymbols& symbols,
                      const ConcurrencyContext& context,
                      std::vector<Finding>* findings, LockOrderGraph* graph) {
  FileChecker(file, symbols, context, findings, graph).Run();
}

}  // namespace lint
}  // namespace maroon
