#include "lint/lexer.h"

#include <cctype>

namespace maroon {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Two-character operators the rules care about (fused so that `==` is one
/// token, not two `=`). Longer operators (`<<=`, `...`) are not needed by any
/// rule and lex as two tokens harmlessly.
bool IsTwoCharOp(char a, char b) {
  switch (a) {
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '-': return b == '>' || b == '-';
    case '+': return b == '+';
    case ':': return b == ':';
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
  }
}

/// True when the identifier just lexed is a raw-string prefix (R, u8R, uR,
/// LR, ...) and the next char opens a raw string.
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        Advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      const int line = line_;
      const int col = col_;
      if (c == '/' && Peek(1) == '/') {
        tokens.push_back(Make(TokenKind::kComment, LexLineComment(), line, col));
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        tokens.push_back(
            Make(TokenKind::kComment, LexBlockComment(), line, col));
        continue;
      }
      if (c == '"') {
        tokens.push_back(Make(TokenKind::kString, LexQuoted('"'), line, col));
        continue;
      }
      if (c == '\'') {
        tokens.push_back(Make(TokenKind::kChar, LexQuoted('\''), line, col));
        continue;
      }
      if (IsIdentStart(c)) {
        std::string ident = LexIdentifier();
        if (IsRawStringPrefix(ident) && pos_ < src_.size() &&
            src_[pos_] == '"') {
          tokens.push_back(
              Make(TokenKind::kString, ident + LexRawString(), line, col));
        } else {
          tokens.push_back(Make(TokenKind::kIdentifier, std::move(ident), line, col));
        }
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        Token t = Make(TokenKind::kNumber, "", line, col);
        t.text = LexNumber(&t.is_float);
        tokens.push_back(std::move(t));
        continue;
      }
      if (pos_ + 1 < src_.size() && IsTwoCharOp(c, src_[pos_ + 1])) {
        std::string text{c, src_[pos_ + 1]};
        Advance();
        Advance();
        tokens.push_back(Make(TokenKind::kPunct, std::move(text), line, col));
        continue;
      }
      Advance();
      tokens.push_back(Make(TokenKind::kPunct, std::string(1, c), line, col));
    }
    return tokens;
  }

 private:
  static Token Make(TokenKind kind, std::string text, int line, int col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    return t;
  }

  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string LexLineComment() {
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      text += src_[pos_];
      Advance();
    }
    return text;
  }

  std::string LexBlockComment() {
    std::string text;
    // Consume "/*".
    text += src_[pos_];
    Advance();
    text += src_[pos_];
    Advance();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        text += "*/";
        Advance();
        Advance();
        break;
      }
      text += src_[pos_];
      Advance();
    }
    return text;
  }

  std::string LexQuoted(char quote) {
    std::string text(1, quote);
    Advance();
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text += c;
        Advance();
        text += src_[pos_];
        Advance();
        continue;
      }
      text += c;
      Advance();
      if (c == quote || c == '\n') break;  // \n: unterminated, fail soft
    }
    return text;
  }

  std::string LexRawString() {
    // At '"' of R"delim( ... )delim".
    std::string text(1, src_[pos_]);
    Advance();
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      text += src_[pos_];
      Advance();
    }
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        for (size_t i = 0; i < closer.size(); ++i) {
          text += src_[pos_];
          Advance();
        }
        break;
      }
      text += src_[pos_];
      Advance();
    }
    return text;
  }

  std::string LexIdentifier() {
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) {
      text += src_[pos_];
      Advance();
    }
    return text;
  }

  std::string LexNumber(bool* is_float) {
    std::string text;
    const bool is_hex = src_[pos_] == '0' && (Peek(1) == 'x' || Peek(1) == 'X');
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      const bool exponent =
          !is_hex && (c == 'e' || c == 'E') &&
          (Peek(1) == '+' || Peek(1) == '-' || IsDigit(Peek(1)));
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        if (c == '.' || exponent) *is_float = true;
        text += c;
        Advance();
        if (exponent && (src_[pos_] == '+' || src_[pos_] == '-')) {
          text += src_[pos_];
          Advance();
        }
        continue;
      }
      break;
    }
    return text;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace lint
}  // namespace maroon
