#ifndef MAROON_LINT_RULES_H_
#define MAROON_LINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace maroon {
namespace lint {

/// The MAROON project rules enforced by maroon_lint.
///
/// The checker is token-based (no type information), so each rule is an
/// engineered heuristic: precise enough that the real tree stays clean
/// without suppressions sprinkled everywhere, honest enough that every rule
/// can be silenced at a specific site with
///
///     // maroon-lint: allow(R003)
///
/// on the offending line or alone on the line above. `allow(all)` silences
/// every rule for that line.
///
///   R001  Result<T>::value()/operator*/operator-> on a Result variable
///         never guarded by ok() in the enclosing scope. Covers explicit
///         `Result<T> r = ...` declarations and `auto r = F(...)` bindings
///         whose callee is a known Result-returning function.
///   R002  Call to a function returning Status/Result whose return value is
///         discarded at statement level.
///   R003  Floating-point ==/!= comparison (a float literal on either side);
///         probability code must use common/float_compare.h helpers.
///   R004  Banned APIs: atoi/atol/atof, rand/srand, strtod with a null end
///         pointer, std::regex.
///   R005  Header hygiene: include guard must match the MAROON_<PATH>_H_
///         convention; `using namespace` is forbidden in headers.
///   R006  Raw assert() outside src/common/ (use MAROON_CHECK/MAROON_DCHECK).
///   R007  system_clock::now() outside src/obs/ and src/common/ (durations
///         belong on steady_clock; wall clock only via sanctioned helpers).
///   R008  std::thread/std::jthread construction outside
///         src/common/thread_pool.* (parallel work goes through
///         maroon::ThreadPool so --threads, span attribution, and TSan
///         coverage stay accurate).
///   R009  std::endl outside tests/ and tools/ (flushes per line; stream
///         "\n" and flush explicitly where durability matters). Fixture
///         trees (paths containing "testdata") are not exempt.
///   R010  fwrite/fflush/rename with the return value discarded outside
///         tests/ and tools/ (short writes and flush failures are silent
///         data loss; check, or cast to (void) with a justification).
///
/// The lock-discipline family R011-R014 lives in concurrency.h: it runs on
/// the scope model from symbols.h rather than on raw token streams, but
/// emits through the same Finding/suppression machinery.

struct Finding {
  std::string rule;     // "R001".."R014"
  std::string file;     // path as reported (repo-relative when possible)
  int line = 0;
  int col = 0;
  std::string message;  // what and how to fix
};

/// One tokenized source file ready for linting.
struct SourceFile {
  std::string display_path;  // used in findings (repo-relative)
  std::string guard_path;    // rel path used to derive the include guard
  bool is_header = false;
  std::vector<Token> tokens;
  /// Lines that belong to preprocessor directives, backslash continuations
  /// included. The scope parser (symbols.h) skips these: a multi-line macro
  /// definition is not code in the surrounding scope.
  std::set<int> preprocessor_lines;
};

/// Builds a SourceFile from raw text. `rel_path` is the path relative to the
/// repo root (used both for display and the R005 guard computation).
SourceFile MakeSourceFile(const std::string& rel_path,
                          std::string_view content);

/// Per-line suppression sets parsed from `// maroon-lint: allow(R003)`
/// comments. A comment alone on its line also covers the next line. Shared
/// by the token rules (rules.cc) and the concurrency rules (concurrency.cc).
class Suppressions {
 public:
  explicit Suppressions(const std::vector<Token>& tokens);
  bool Allows(int line, const std::string& rule) const;

 private:
  std::map<int, std::set<std::string>> by_line_;
};

/// Function names collected in pass 1, shared by every pass-2 rule that
/// needs to recognize a callee. `status_or_result` feeds R002 (either return
/// type makes a discarded call suspect); `result_only` feeds the R001 `auto`
/// binding heuristic (only a Result binding has .value()/operator* to
/// misuse).
struct FunctionRegistry {
  std::set<std::string> status_or_result;
  std::set<std::string> result_only;
};

/// Scans declarations `Status f(...)` / `Result<T> f(...)` and returns the
/// function names. Runs over every scanned file so call sites in one file
/// see declarations from another.
FunctionRegistry CollectFunctionRegistry(const std::vector<Token>& tokens);

/// Names R002 must never flag even if a declaration matches the registry
/// pattern (e.g. Status factory methods used as expressions).
const std::set<std::string>& DefaultRegistryBlocklist();

/// Runs rules R001-R010 over one file and appends findings. `registry` is
/// the union of CollectFunctionRegistry over the whole scan.
void LintFile(const SourceFile& file, const FunctionRegistry& registry,
              std::vector<Finding>* findings);

/// Returns the expected include guard for a repo-relative header path:
/// "src/common/result.h" -> "MAROON_COMMON_RESULT_H_" (the leading "src/" is
/// dropped; other roots keep their prefix: tests/... -> MAROON_TESTS_...).
std::string ExpectedGuard(const std::string& rel_path);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_RULES_H_
