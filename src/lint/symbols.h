#ifndef MAROON_LINT_SYMBOLS_H_
#define MAROON_LINT_SYMBOLS_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace maroon {
namespace lint {

/// A lightweight declaration model built on top of the lexer — the layer
/// that turns maroon_lint from a per-line token heuristic into a scope-aware
/// checker. It is still not a compiler front end: there is no overload
/// resolution and no type inference. It recovers exactly the structure the
/// concurrency rules (R011-R013, see concurrency.h) need:
///
///   - namespaces, classes/structs, and enum/union blocks (to scope names),
///   - fields annotated MAROON_GUARDED_BY / MAROON_PT_GUARDED_BY,
///   - mutex-typed members (maroon::Mutex, std::mutex),
///   - method declarations carrying MAROON_REQUIRES / MAROON_ACQUIRE /
///     MAROON_RELEASE / MAROON_EXCLUDES / MAROON_NO_THREAD_SAFETY_ANALYSIS,
///   - function definitions with their body token ranges, including
///     out-of-line `Class::Method` definitions and constructors with
///     member-initializer lists.
///
/// Class models are merged across files (headers declare, .cc files define),
/// mirroring how the R002 registry is built: pass 1 collects, pass 2 checks.

/// One field protected by a mutex, from a MAROON_GUARDED_BY annotation.
struct GuardedField {
  std::string name;
  std::string guard;  // the annotation argument, e.g. "mu_"
  bool pointer_guard = false;  // MAROON_PT_GUARDED_BY (pointee, not pointer)
  int line = 0;
  int col = 0;
};

/// Lock-contract annotations attached to one function or method.
struct FunctionAnnotations {
  std::vector<std::string> requires_held;  // MAROON_REQUIRES(...)
  std::vector<std::string> acquires;       // MAROON_ACQUIRE(...)
  std::vector<std::string> releases;       // MAROON_RELEASE(...)
  std::vector<std::string> excludes;       // MAROON_EXCLUDES(...)
  bool no_analysis = false;  // MAROON_NO_THREAD_SAFETY_ANALYSIS

  bool Any() const {
    return no_analysis || !requires_held.empty() || !acquires.empty() ||
           !releases.empty() || !excludes.empty();
  }
  /// Union with another declaration site of the same function.
  void MergeFrom(const FunctionAnnotations& other);
};

/// Everything the checker knows about one class or struct.
struct ClassModel {
  std::string name;
  std::map<std::string, GuardedField> guarded_fields;  // by field name
  std::set<std::string> mutex_members;                 // Mutex/std::mutex
  std::map<std::string, FunctionAnnotations> methods;  // annotated methods

  bool HasConcurrencyModel() const {
    return !guarded_fields.empty() || !mutex_members.empty() ||
           !methods.empty();
  }
};

/// One function definition with a body to analyze.
struct FunctionBody {
  std::string class_name;  // empty for free functions
  std::string name;
  bool is_ctor = false;
  bool is_dtor = false;
  FunctionAnnotations annotations;  // from this definition site
  /// Significant-token indexes into FileSymbols::sig: body spans
  /// [body_begin, body_end), body_begin at the '{', body_end past the '}'.
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;  // of the function name
};

/// The symbol model of one file.
struct FileSymbols {
  /// Significant tokens: comments and preprocessor lines filtered out. All
  /// indexes below point into this vector.
  std::vector<const Token*> sig;
  std::map<std::string, ClassModel> classes;
  std::vector<FunctionBody> functions;
};

/// Builds the model. Never fails: unparsable constructs degrade to "no
/// symbol recorded", never to a wrong record, so the concurrency rules err
/// toward silence (the project's false-positive policy).
FileSymbols BuildFileSymbols(const SourceFile& file);

/// Merges `from`'s class facts into `into` — the cross-file registry step.
void MergeClassModels(const std::map<std::string, ClassModel>& from,
                      std::map<std::string, ClassModel>* into);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_SYMBOLS_H_
