#include "lint/linter.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

namespace maroon {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool InExcludedDir(const fs::path& rel,
                   const std::vector<std::string>& excluded) {
  for (const fs::path& part : rel.parent_path()) {
    for (const std::string& name : excluded) {
      if (part.string() == name) return true;
    }
  }
  return false;
}

Result<std::string> ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read " + path.string());
  return buffer.str();
}

/// Path relative to `root` with forward slashes; falls back to the input
/// when the file lives outside the root.
std::string RelativeDisplayPath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  const fs::path chosen =
      (ec || rel.empty() || *rel.begin() == "..") ? path : rel;
  return chosen.generic_string();
}

void JsonEscapeTo(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Result<LintResult> RunLint(const LintOptions& options) {
  const fs::path root = options.root;
  std::vector<std::string> scan_paths = options.paths;
  const bool defaulted = scan_paths.empty();
  if (defaulted) {
    for (const char* dir : {"src", "tools", "tests"}) {
      scan_paths.push_back((root / dir).string());
    }
  }

  // Expand directories; explicit files bypass the excluded-dir filter.
  // Relative entries are anchored at the root, not the working directory.
  std::vector<fs::path> files;
  for (const std::string& entry : scan_paths) {
    fs::path path = entry;
    if (path.is_relative()) path = root / path;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !HasLintableExtension(it->path())) {
          continue;
        }
        const fs::path rel = fs::relative(it->path(), root, ec);
        if (!ec && InExcludedDir(rel, options.excluded_dirs)) continue;
        files.push_back(it->path());
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else if (!defaulted) {
      // A default scan root (src/tools/tests) may simply not exist under
      // --root; only paths the caller named explicitly are errors.
      return Status::NotFound("no such file or directory: " + entry);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: tokenize everything and build the shared R002 registry.
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  std::set<std::string> registry;
  for (const fs::path& path : files) {
    MAROON_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    sources.push_back(
        MakeSourceFile(RelativeDisplayPath(path, root), content));
    const std::set<std::string> names =
        CollectStatusFunctions(sources.back().tokens);
    registry.insert(names.begin(), names.end());
  }

  // Pass 2: run the rules.
  LintResult result;
  result.files_scanned = sources.size();
  for (const SourceFile& source : sources) {
    LintFile(source, registry, &result.findings);
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return result;
}

std::string RenderText(const LintResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
        << f.message << "\n";
  }
  out << "maroon_lint: " << result.findings.size() << " finding(s) in "
      << result.files_scanned << " file(s)\n";
  return out.str();
}

std::string RenderJson(const LintResult& result) {
  std::string out = "{\"files_scanned\": ";
  out += std::to_string(result.files_scanned);
  out += ", \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    JsonEscapeTo(f.rule, &out);
    out += "\", \"file\": \"";
    JsonEscapeTo(f.file, &out);
    out += "\", \"line\": ";
    out += std::to_string(f.line);
    out += ", \"col\": ";
    out += std::to_string(f.col);
    out += ", \"message\": \"";
    JsonEscapeTo(f.message, &out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace lint
}  // namespace maroon
