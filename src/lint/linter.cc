#include "lint/linter.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "lint/concurrency.h"
#include "lint/symbols.h"

namespace maroon {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool InExcludedDir(const fs::path& rel,
                   const std::vector<std::string>& excluded) {
  for (const fs::path& part : rel.parent_path()) {
    for (const std::string& name : excluded) {
      if (part.string() == name) return true;
    }
  }
  return false;
}

Result<std::string> ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read " + path.string());
  return buffer.str();
}

/// Path relative to `root` with forward slashes; falls back to the input
/// when the file lives outside the root.
std::string RelativeDisplayPath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  const fs::path chosen =
      (ec || rel.empty() || *rel.begin() == "..") ? path : rel;
  return chosen.generic_string();
}

void JsonEscapeTo(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Result<LintResult> RunLint(const LintOptions& options) {
  const fs::path root = options.root;
  std::vector<std::string> scan_paths = options.paths;
  const bool defaulted = scan_paths.empty();
  if (defaulted) {
    for (const char* dir : {"src", "tools", "tests"}) {
      scan_paths.push_back((root / dir).string());
    }
  }

  // Expand directories; explicit files bypass the excluded-dir filter.
  // Relative entries are anchored at the root, not the working directory.
  std::vector<fs::path> files;
  for (const std::string& entry : scan_paths) {
    fs::path path = entry;
    if (path.is_relative()) path = root / path;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !HasLintableExtension(it->path())) {
          continue;
        }
        const fs::path rel = fs::relative(it->path(), root, ec);
        if (!ec && InExcludedDir(rel, options.excluded_dirs)) continue;
        files.push_back(it->path());
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else if (!defaulted) {
      // A default scan root (src/tools/tests) may simply not exist under
      // --root; only paths the caller named explicitly are errors.
      return Status::NotFound("no such file or directory: " + entry);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: tokenize everything, build the shared function registry, the
  // per-file scope models, and the merged cross-file class registry (a
  // header's MAROON_GUARDED_BY annotations must be visible when the .cc
  // defining the methods is checked).
  std::vector<SourceFile> sources;
  std::vector<FileSymbols> symbols;
  sources.reserve(files.size());
  symbols.reserve(files.size());
  FunctionRegistry registry;
  std::map<std::string, ClassModel> classes;
  for (const fs::path& path : files) {
    MAROON_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    sources.push_back(
        MakeSourceFile(RelativeDisplayPath(path, root), content));
    const FunctionRegistry names =
        CollectFunctionRegistry(sources.back().tokens);
    registry.status_or_result.insert(names.status_or_result.begin(),
                                     names.status_or_result.end());
    registry.result_only.insert(names.result_only.begin(),
                                names.result_only.end());
    symbols.push_back(BuildFileSymbols(sources.back()));
    MergeClassModels(symbols.back().classes, &classes);
  }

  // Pass 2: run the token rules and the scope-aware concurrency rules;
  // R012 edges accumulate into one tree-wide graph.
  LintResult result;
  result.files_scanned = sources.size();
  ConcurrencyContext context;
  context.classes = &classes;
  LockOrderGraph graph;
  for (size_t i = 0; i < sources.size(); ++i) {
    LintFile(sources[i], registry, &result.findings);
    CheckConcurrency(sources[i], symbols[i], context, &result.findings,
                     &graph);
  }

  // Pass 3: cycles in the global lock-order graph.
  const std::vector<Finding> cycles = graph.CheckCycles();
  result.findings.insert(result.findings.end(), cycles.begin(), cycles.end());

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return result;
}

std::string RenderText(const LintResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
        << f.message << "\n";
  }
  out << "maroon_lint: " << result.findings.size() << " finding(s) in "
      << result.files_scanned << " file(s)\n";
  return out.str();
}

std::string RenderJson(const LintResult& result) {
  std::string out = "{\"files_scanned\": ";
  out += std::to_string(result.files_scanned);
  out += ", \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    JsonEscapeTo(f.rule, &out);
    out += "\", \"file\": \"";
    JsonEscapeTo(f.file, &out);
    out += "\", \"line\": ";
    out += std::to_string(f.line);
    out += ", \"col\": ";
    out += std::to_string(f.col);
    out += ", \"message\": \"";
    JsonEscapeTo(f.message, &out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

Result<Baseline> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open baseline " + path);
  Baseline baseline;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    // RULE FILE:LINE [message...]
    const size_t rule_end = line.find(' ', first);
    if (rule_end == std::string::npos) {
      return Status::InvalidArgument("malformed baseline line " +
                                     std::to_string(line_no) + ": " + line);
    }
    BaselineEntry entry;
    entry.rule = line.substr(first, rule_end - first);
    const size_t loc_start = line.find_first_not_of(" \t", rule_end);
    if (loc_start == std::string::npos) {
      return Status::InvalidArgument("malformed baseline line " +
                                     std::to_string(line_no) + ": " + line);
    }
    size_t loc_end = line.find(' ', loc_start);
    if (loc_end == std::string::npos) loc_end = line.size();
    const std::string loc = line.substr(loc_start, loc_end - loc_start);
    const size_t colon = loc.rfind(':');
    if (entry.rule.size() < 2 || entry.rule[0] != 'R' ||
        colon == std::string::npos || colon + 1 >= loc.size()) {
      return Status::InvalidArgument("malformed baseline line " +
                                     std::to_string(line_no) + ": " + line);
    }
    entry.file = loc.substr(0, colon);
    const char* num_begin = loc.data() + colon + 1;
    const char* num_end = loc.data() + loc.size();
    const auto parsed = std::from_chars(num_begin, num_end, entry.line);
    if (parsed.ec != std::errc() || parsed.ptr != num_end) {
      return Status::InvalidArgument("malformed baseline line " +
                                     std::to_string(line_no) + ": " + line);
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::string SerializeBaseline(const LintResult& result) {
  std::string out =
      "# maroon_lint baseline v1\n"
      "# Accepted pre-existing findings, one per line: RULE FILE:LINE "
      "MESSAGE.\n"
      "# Matching ignores the message. Regenerate with --update-baseline;\n"
      "# shrink it whenever a finding is actually fixed.\n";
  for (const Finding& f : result.findings) {
    out += f.rule + " " + f.file + ":" + std::to_string(f.line) + " " +
           f.message + "\n";
  }
  return out;
}

std::vector<BaselineEntry> ApplyBaseline(const Baseline& baseline,
                                         LintResult* result) {
  using Key = std::tuple<std::string, std::string, int>;
  std::map<Key, int> available;
  for (const Finding& f : result->findings) {
    ++available[Key{f.rule, f.file, f.line}];
  }

  // Each entry consumes at most one matching finding; entries with nothing
  // left to consume are stale.
  std::map<Key, int> consumed;
  std::vector<BaselineEntry> stale;
  for (const BaselineEntry& entry : baseline.entries) {
    const Key key{entry.rule, entry.file, entry.line};
    auto it = available.find(key);
    if (it != available.end() && it->second > 0) {
      --it->second;
      ++consumed[key];
    } else {
      stale.push_back(entry);
    }
  }

  std::vector<Finding> kept;
  kept.reserve(result->findings.size());
  for (Finding& f : result->findings) {
    const Key key{f.rule, f.file, f.line};
    auto it = consumed.find(key);
    if (it != consumed.end() && it->second > 0) {
      --it->second;
      continue;
    }
    kept.push_back(std::move(f));
  }
  result->findings = std::move(kept);
  return stale;
}

}  // namespace lint
}  // namespace maroon
