#include "lint/symbols.h"

#include <algorithm>

namespace maroon {
namespace lint {

void FunctionAnnotations::MergeFrom(const FunctionAnnotations& other) {
  auto merge = [](const std::vector<std::string>& from,
                  std::vector<std::string>* into) {
    for (const std::string& item : from) {
      if (std::find(into->begin(), into->end(), item) == into->end()) {
        into->push_back(item);
      }
    }
  };
  merge(other.requires_held, &requires_held);
  merge(other.acquires, &acquires);
  merge(other.releases, &releases);
  merge(other.excludes, &excludes);
  no_analysis = no_analysis || other.no_analysis;
}

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsFieldMacro(const std::string& name) {
  return name == "MAROON_GUARDED_BY" || name == "MAROON_PT_GUARDED_BY";
}

/// Recursive-descent pass over the significant tokens. Every Parse*/Skip*
/// helper returns the index to resume at; kNpos-returning matchers signal
/// "shape not recognized", and the caller degrades to skipping without
/// recording (see the contract in symbols.h).
class SymbolsBuilder {
 public:
  SymbolsBuilder(const SourceFile& file, FileSymbols* out) : out_(out) {
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kComment) continue;
      if (file.preprocessor_lines.count(t.line) > 0) continue;
      out_->sig.push_back(&t);
    }
  }

  void Build() { ParseScope(0, Size(), ""); }

 private:
  // ----------------------------------------------------------- primitives

  size_t Size() const { return out_->sig.size(); }
  const Token& Tok(size_t i) const { return *out_->sig[i]; }

  bool IsIdent(size_t i) const {
    return i < Size() && Tok(i).kind == TokenKind::kIdentifier;
  }
  bool IsIdent(size_t i, const char* text) const {
    return IsIdent(i) && Tok(i).text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return i < Size() && Tok(i).kind == TokenKind::kPunct &&
           Tok(i).text == text;
  }

  /// Index of the `)` matching the `(` at `open`, or kNpos.
  size_t MatchParen(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (IsPunct(i, "(")) ++depth;
      if (IsPunct(i, ")") && --depth == 0) return i;
    }
    return kNpos;
  }

  /// Index of the `}` matching the `{` at `open`, or kNpos.
  size_t MatchBrace(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (IsPunct(i, "{")) ++depth;
      if (IsPunct(i, "}") && --depth == 0) return i;
    }
    return kNpos;
  }

  /// Index past the `>` closing the `<` at `open`, or kNpos when the `<`
  /// turns out to be a comparison (statement punctuation before balance).
  size_t TrySkipAngles(size_t open) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (Tok(i).kind != TokenKind::kPunct) continue;
      const std::string& t = Tok(i).text;
      if (t == "<") ++depth;
      if (t == "<<") depth += 2;
      if (t == ">") --depth;
      if (t == ">>") depth -= 2;
      if (depth <= 0 && (t == ">" || t == ">>")) return i + 1;
      if (t == ";" || t == "{" || t == "}") return kNpos;
    }
    return kNpos;
  }

  /// Index past the first `;` at zero (){}[]-depth, or `end`.
  size_t SkipToSemi(size_t from, size_t end) const {
    int paren = 0, brace = 0, bracket = 0;
    for (size_t i = from; i < end; ++i) {
      if (Tok(i).kind != TokenKind::kPunct) continue;
      const std::string& t = Tok(i).text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "{") ++brace;
      if (t == "}") --brace;
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (t == ";" && paren <= 0 && brace <= 0 && bracket <= 0) return i + 1;
    }
    return end;
  }

  std::string JoinTokens(size_t from, size_t to) const {
    std::string out;
    for (size_t i = from; i < to && i < Size(); ++i) out += Tok(i).text;
    return out;
  }

  ClassModel& Model(const std::string& cls) {
    ClassModel& model = out_->classes[cls];
    model.name = cls;
    return model;
  }

  // ----------------------------------------------------------- scope walk

  void ParseScope(size_t begin, size_t end, const std::string& cls) {
    size_t i = begin;
    while (i < end) {
      if (IsPunct(i, ";") || IsPunct(i, "}")) {
        ++i;
      } else if (IsPunct(i, "{")) {
        const size_t close = MatchBrace(i);
        if (close == kNpos) return;
        i = close + 1;
      } else if (IsIdent(i, "inline") && IsIdent(i + 1, "namespace")) {
        ++i;
      } else if (IsIdent(i, "namespace")) {
        i = ParseNamespace(i, end);
      } else if (IsIdent(i, "class") || IsIdent(i, "struct") ||
                 IsIdent(i, "union")) {
        i = ParseClass(i, end);
      } else if (IsIdent(i, "enum")) {
        i = SkipEnum(i, end);
      } else if (IsIdent(i, "template")) {
        if (IsPunct(i + 1, "<")) {
          const size_t past = TrySkipAngles(i + 1);
          i = past == kNpos ? i + 1 : past;
        } else {
          ++i;
        }
      } else if (IsIdent(i, "using") || IsIdent(i, "typedef") ||
                 IsIdent(i, "friend") || IsIdent(i, "static_assert")) {
        i = SkipToSemi(i, end);
      } else if (IsIdent(i, "extern") && i + 2 < end &&
                 Tok(i + 1).kind == TokenKind::kString && IsPunct(i + 2, "{")) {
        const size_t close = MatchBrace(i + 2);
        if (close == kNpos) return;
        ParseScope(i + 3, close, cls);
        i = close + 1;
      } else if ((IsIdent(i, "public") || IsIdent(i, "private") ||
                  IsIdent(i, "protected")) &&
                 IsPunct(i + 1, ":")) {
        i += 2;
      } else {
        i = ParseDeclaration(i, end, cls);
      }
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    size_t j = i + 1;
    while (IsIdent(j) || IsPunct(j, "::")) ++j;
    if (IsPunct(j, "=")) return SkipToSemi(j, end);  // namespace alias
    if (!IsPunct(j, "{")) return j + 1;
    const size_t close = MatchBrace(j);
    if (close == kNpos) return end;
    ParseScope(j + 1, close, "");
    return close + 1;
  }

  size_t ParseClass(size_t i, size_t end) {
    const bool is_union = IsIdent(i, "union");
    size_t j = i + 1;
    std::string name;
    while (j < end) {
      if (IsIdent(j)) {
        if (IsPunct(j + 1, "(")) {  // attribute macro: MAROON_CAPABILITY(...)
          const size_t close = MatchParen(j + 1);
          if (close == kNpos) return end;
          j = close + 1;
        } else {
          if (Tok(j).text != "final") name = Tok(j).text;
          ++j;
        }
      } else if (IsPunct(j, "::")) {
        ++j;
      } else if (IsPunct(j, "<")) {  // explicit specialization
        const size_t past = TrySkipAngles(j);
        if (past == kNpos) return j + 1;
        j = past;
      } else {
        break;
      }
    }
    if (IsPunct(j, ";")) return j + 1;  // forward declaration
    if (IsPunct(j, ":")) {              // base-clause: scan to the body
      ++j;
      while (j < end && !IsPunct(j, "{") && !IsPunct(j, ";")) {
        if (IsPunct(j, "(")) {
          const size_t close = MatchParen(j);
          if (close == kNpos) return end;
          j = close + 1;
        } else if (IsPunct(j, "<")) {
          const size_t past = TrySkipAngles(j);
          j = past == kNpos ? j + 1 : past;
        } else {
          ++j;
        }
      }
    }
    if (!IsPunct(j, "{")) return j + 1;  // elaborated type (`struct Foo x;`)
    const size_t close = MatchBrace(j);
    if (close == kNpos) return end;
    // Members of unions and anonymous classes are not modeled.
    if (!is_union && !name.empty()) ParseScope(j + 1, close, name);
    return IsPunct(close + 1, ";") ? close + 2 : close + 1;
  }

  size_t SkipEnum(size_t i, size_t end) {
    size_t j = i + 1;
    while (j < end && !IsPunct(j, "{") && !IsPunct(j, ";")) ++j;
    if (j >= end) return end;
    if (IsPunct(j, ";")) return j + 1;
    const size_t close = MatchBrace(j);
    if (close == kNpos) return end;
    return IsPunct(close + 1, ";") ? close + 2 : close + 1;
  }

  // --------------------------------------------------------- declarations

  /// Parses one member/namespace-scope declaration starting at `begin` and
  /// returns the resume index. Handles fields (with annotation macros),
  /// method prototypes (with trailing lock annotations), and function
  /// definitions (body recorded), including ctors with initializer lists.
  size_t ParseDeclaration(size_t begin, size_t end, const std::string& cls) {
    size_t first_open = kNpos;   // first top-level '(' — a param list or a
    size_t first_close = kNpos;  // field-annotation macro's argument list
    size_t j = begin;
    while (j < end) {
      if (Tok(j).kind != TokenKind::kPunct) {
        ++j;
        continue;
      }
      const std::string& t = Tok(j).text;
      if (t == "(") {
        const size_t close = MatchParen(j);
        if (close == kNpos) return end;
        if (first_open == kNpos) {
          first_open = j;
          first_close = close;
        }
        j = close + 1;
      } else if (t == "<") {
        const size_t past = TrySkipAngles(j);
        j = past == kNpos ? j + 1 : past;
      } else if (t == "=") {
        if (j > begin && IsIdent(j - 1, "operator")) {
          ++j;
          continue;
        }
        const size_t past = SkipToSemi(j, end);
        FinishSimpleDecl(begin, past, first_open, first_close, cls);
        return past;
      } else if (t == ";") {
        FinishSimpleDecl(begin, j + 1, first_open, first_close, cls);
        return j + 1;
      } else if (t == "{") {
        if (first_open == kNpos) {
          // Brace-initialized field: `int x{0};`.
          const size_t close = MatchBrace(j);
          if (close == kNpos) return end;
          size_t after = close + 1;
          if (IsPunct(after, ";")) ++after;
          FinishSimpleDecl(begin, after, kNpos, kNpos, cls);
          return after;
        }
        return FinishFunctionDef(begin, j, first_open, first_close, cls, end);
      } else if (t == ":" && first_close != kNpos && j > first_close &&
                 !IsPunct(j + 1, ":")) {
        const size_t body = ParseCtorInitList(j, end);
        if (body != kNpos) {
          return FinishFunctionDef(begin, body, first_open, first_close, cls,
                                   end);
        }
        return SkipToSemi(j, end);  // unrecognized: record nothing
      } else {
        ++j;
      }
    }
    return end;
  }

  /// From the `:` opening a ctor-initializer list, returns the index of the
  /// body `{`, or kNpos when the shape does not match
  /// `: member(args) , base<T>{args} , ... {`.
  size_t ParseCtorInitList(size_t colon, size_t end) const {
    size_t j = colon + 1;
    while (j < end) {
      if (!IsIdent(j)) return kNpos;
      ++j;
      while (IsPunct(j, "::") && IsIdent(j + 1)) j += 2;
      if (IsPunct(j, "<")) {
        const size_t past = TrySkipAngles(j);
        if (past == kNpos) return kNpos;
        j = past;
      }
      if (IsPunct(j, "(")) {
        const size_t close = MatchParen(j);
        if (close == kNpos) return kNpos;
        j = close + 1;
      } else if (IsPunct(j, "{")) {
        const size_t close = MatchBrace(j);
        if (close == kNpos) return kNpos;
        j = close + 1;
      } else {
        return kNpos;
      }
      if (IsPunct(j, ",")) {
        ++j;
        continue;
      }
      break;
    }
    return IsPunct(j, "{") ? j : kNpos;
  }

  /// A declaration that ended without a function body: guarded fields,
  /// mutex members, and annotated method prototypes.
  void FinishSimpleDecl(size_t begin, size_t past, size_t first_open,
                        size_t first_close, const std::string& cls) {
    if (cls.empty()) return;  // only class members are modeled

    bool is_field = false;
    for (size_t j = begin + 1; j + 1 < past; ++j) {
      if (!IsIdent(j) || !IsFieldMacro(Tok(j).text)) continue;
      if (!IsPunct(j + 1, "(")) continue;
      const size_t close = MatchParen(j + 1);
      if (close == kNpos || !IsIdent(j - 1)) continue;
      GuardedField field;
      field.name = Tok(j - 1).text;
      field.guard = JoinTokens(j + 2, close);
      field.pointer_guard = Tok(j).text == "MAROON_PT_GUARDED_BY";
      field.line = Tok(j - 1).line;
      field.col = Tok(j - 1).col;
      if (!field.guard.empty()) {
        Model(cls).guarded_fields[field.name] = field;
        is_field = true;
      }
    }
    if (is_field) return;

    // Mutex member: `[mutable] [std::] Mutex|mutex name ;|=|{`.
    for (size_t j = begin; j + 2 < past; ++j) {
      if (!IsIdent(j)) continue;
      const std::string& type = Tok(j).text;
      if (type != "Mutex" && type != "mutex") continue;
      if (!IsIdent(j + 1)) continue;
      if (IsPunct(j + 2, ";") || IsPunct(j + 2, "=") || IsPunct(j + 2, "{")) {
        Model(cls).mutex_members.insert(Tok(j + 1).text);
      }
    }

    // Method prototype with trailing annotations.
    if (first_open == kNpos || first_open == begin) return;
    if (!IsIdent(first_open - 1)) return;
    const std::string name = Tok(first_open - 1).text;
    if (name == "operator" || IsFieldMacro(name)) return;
    const FunctionAnnotations ann = ParseAnnotations(first_close + 1, past);
    if (ann.Any()) Model(cls).methods[name].MergeFrom(ann);
  }

  /// A declaration that ended at a function body `{` at `body_open`:
  /// records the FunctionBody and registers annotations on the class.
  size_t FinishFunctionDef(size_t begin, size_t body_open, size_t first_open,
                           size_t first_close, const std::string& cls,
                           size_t end) {
    const size_t body_close = MatchBrace(body_open);
    if (body_close == kNpos) return end;

    FunctionBody fn;
    fn.class_name = cls;
    fn.body_begin = body_open;
    fn.body_end = body_close + 1;
    fn.line = Tok(body_open).line;

    if (first_open > begin && IsIdent(first_open - 1) &&
        Tok(first_open - 1).text != "operator") {
      const size_t name_idx = first_open - 1;
      fn.name = Tok(name_idx).text;
      fn.line = Tok(name_idx).line;
      if (name_idx >= 1 && IsPunct(name_idx - 1, "~")) {
        fn.is_dtor = true;
        // Out-of-line dtor: `Class :: ~ Class`.
        if (name_idx >= 3 && IsPunct(name_idx - 2, "::") &&
            IsIdent(name_idx - 3)) {
          fn.class_name = Tok(name_idx - 3).text;
        }
      } else if (name_idx >= 2 && IsPunct(name_idx - 1, "::") &&
                 IsIdent(name_idx - 2)) {
        // Out-of-line method: `Class :: Name`.
        fn.class_name = Tok(name_idx - 2).text;
      }
      if (!fn.is_dtor && !fn.class_name.empty() &&
          fn.name == fn.class_name) {
        fn.is_ctor = true;
      }
    }

    fn.annotations = ParseAnnotations(first_close + 1, body_open);
    if (!fn.class_name.empty() && !fn.name.empty() && fn.annotations.Any()) {
      Model(fn.class_name).methods[fn.name].MergeFrom(fn.annotations);
    }
    out_->functions.push_back(std::move(fn));
    return body_close + 1;
  }

  /// Collects MAROON_REQUIRES/ACQUIRE/RELEASE/EXCLUDES argument lists (and
  /// the no-analysis escape hatch) from a token range after a param list.
  FunctionAnnotations ParseAnnotations(size_t from, size_t to) const {
    FunctionAnnotations ann;
    for (size_t j = from; j < to; ++j) {
      if (!IsIdent(j)) continue;
      const std::string& text = Tok(j).text;
      if (text == "MAROON_NO_THREAD_SAFETY_ANALYSIS") {
        ann.no_analysis = true;
        continue;
      }
      std::vector<std::string>* dest = nullptr;
      if (text == "MAROON_REQUIRES") dest = &ann.requires_held;
      if (text == "MAROON_ACQUIRE") dest = &ann.acquires;
      if (text == "MAROON_RELEASE") dest = &ann.releases;
      if (text == "MAROON_EXCLUDES") dest = &ann.excludes;
      if (dest == nullptr || !IsPunct(j + 1, "(")) continue;
      const size_t close = MatchParen(j + 1);
      if (close == kNpos) continue;
      int depth = 0;
      size_t arg_start = j + 2;
      for (size_t k = j + 2; k <= close; ++k) {
        if (IsPunct(k, "(")) ++depth;
        if (IsPunct(k, ")") && depth > 0) {
          --depth;
          continue;
        }
        if (k == close || (depth == 0 && IsPunct(k, ","))) {
          const std::string arg = JoinTokens(arg_start, k);
          if (!arg.empty()) dest->push_back(arg);
          arg_start = k + 1;
        }
      }
      j = close;
    }
    return ann;
  }

  FileSymbols* out_;
};

}  // namespace

FileSymbols BuildFileSymbols(const SourceFile& file) {
  FileSymbols symbols;
  SymbolsBuilder(file, &symbols).Build();
  return symbols;
}

void MergeClassModels(const std::map<std::string, ClassModel>& from,
                      std::map<std::string, ClassModel>* into) {
  for (const auto& [name, model] : from) {
    ClassModel& target = (*into)[name];
    target.name = name;
    for (const auto& [field_name, field] : model.guarded_fields) {
      target.guarded_fields.emplace(field_name, field);
    }
    target.mutex_members.insert(model.mutex_members.begin(),
                                model.mutex_members.end());
    for (const auto& [method_name, ann] : model.methods) {
      target.methods[method_name].MergeFrom(ann);
    }
  }
}

}  // namespace lint
}  // namespace maroon
