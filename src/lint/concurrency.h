#ifndef MAROON_LINT_CONCURRENCY_H_
#define MAROON_LINT_CONCURRENCY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/rules.h"
#include "lint/symbols.h"

namespace maroon {
namespace lint {

/// The lock-discipline rule family, running on the scope model from
/// symbols.h. All four rules share the same honesty contract as R001-R010:
/// suppress with `// maroon-lint: allow(R01x)` at the site.
///
///   R011  Access to a MAROON_GUARDED_BY field in a method of its class
///         where the named mutex is not provably held. Held means: a live
///         MutexLock/lock_guard/unique_lock/scoped_lock over it, a manual
///         .lock() without intervening .unlock(), a MAROON_REQUIRES/
///         MAROON_ACQUIRE/MAROON_RELEASE annotation on the method, or a
///         call to an annotated MAROON_ACQUIRE helper. Constructors and
///         destructors are exempt (exclusive access, same as Clang).
///         Checked for unqualified and this-> accesses; obj->field goes
///         through Clang's -Wthread-safety, which has the type info.
///   R012  Inconsistent lock acquisition order: every "acquire B while
///         holding A" site adds an A->B edge to one global lock-order
///         graph; any cycle is flagged at each participating edge. Also
///         flags calling a MAROON_EXCLUDES(m) function while holding m
///         (guaranteed self-deadlock with non-recursive mutexes).
///   R013  Blocking I/O while any mutex is held: fsync/fdatasync/fwrite/
///         fread/fflush/fopen/fclose/rename free calls, and .Append()/
///         .Sync()/.flush() member calls (the WAL and snapshot writers).
///         A lock held across a disk write stalls every reader of that
///         lock for the device latency — the tail the obs/ histograms
///         exist to expose.
///   R014  Explicit memory_order_relaxed outside the allowlisted counter
///         sites (see kRelaxedAllowlist in concurrency.cc). Relaxed
///         ordering is correct only with a written no-synchronization
///         argument; everywhere else it is a latent reordering bug.

/// Cross-file inputs for the checker: the merged class registry built by
/// BuildFileSymbols + MergeClassModels over every scanned file.
struct ConcurrencyContext {
  const std::map<std::string, ClassModel>* classes = nullptr;
};

/// The global lock-order graph (R012). Edges accumulate across every file
/// in the scan; CheckCycles runs once at the end.
class LockOrderGraph {
 public:
  /// Records "acquired `to` while holding `from`" at the given site.
  /// `suppressed` marks sites under an allow(R012) comment: the edge still
  /// exists for ordering documentation, but never produces a finding and
  /// never participates in cycle detection.
  void AddEdge(const std::string& from, const std::string& to,
               const std::string& file, int line, int col,
               const std::string& function, bool suppressed);

  /// One finding per distinct non-suppressed edge that lies on a cycle,
  /// reported at the edge's first witness site.
  std::vector<Finding> CheckCycles() const;

  /// All non-suppressed edges, sorted — the authoritative acquisition order
  /// (documented in docs/threading-model.md).
  std::vector<std::pair<std::string, std::string>> Edges() const;

 private:
  struct Edge {
    std::string file;
    std::string function;
    int line = 0;
    int col = 0;
    bool suppressed = false;
  };
  std::map<std::pair<std::string, std::string>, Edge> edges_;
};

/// Runs R011/R013/R014 over one file, appends findings, and feeds R012
/// edges into `graph`. `symbols` must be the model of `file`.
void CheckConcurrency(const SourceFile& file, const FileSymbols& symbols,
                      const ConcurrencyContext& context,
                      std::vector<Finding>* findings, LockOrderGraph* graph);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_CONCURRENCY_H_
