#ifndef MAROON_LINT_LINTER_H_
#define MAROON_LINT_LINTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lint/rules.h"

namespace maroon {
namespace lint {

/// Orchestration for maroon_lint: file discovery, the two-pass scan (collect
/// the Status/Result function registry, then lint every file), and output
/// rendering.

struct LintOptions {
  /// Repository root. Display paths, the R005 guard convention, and the
  /// default scan set are all relative to it.
  std::string root = ".";
  /// Files or directories to scan. Directories recurse (".h/.hpp/.cc/.cpp").
  /// Empty means the project default: src/, tools/, tests/ under `root`.
  std::vector<std::string> paths;
  /// Directory names skipped during recursion. Lint fixtures live in
  /// "testdata" dirs with deliberate violations; explicitly listed files
  /// bypass this filter.
  std::vector<std::string> excluded_dirs = {"testdata"};
};

struct LintResult {
  std::vector<Finding> findings;  // sorted by file, line, col, rule
  size_t files_scanned = 0;
};

/// Runs the linter. Fails only on IO problems (unreadable file, missing
/// directory); findings are data, not errors.
Result<LintResult> RunLint(const LintOptions& options);

/// "file:line:col: [R00X] message" lines plus a one-line summary.
std::string RenderText(const LintResult& result);

/// Machine-readable form:
/// {"files_scanned": N, "findings": [{"rule": ..., "file": ..., ...}]}.
std::string RenderJson(const LintResult& result);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_LINTER_H_
