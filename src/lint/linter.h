#ifndef MAROON_LINT_LINTER_H_
#define MAROON_LINT_LINTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lint/rules.h"

namespace maroon {
namespace lint {

/// Orchestration for maroon_lint: file discovery, the multi-pass scan
/// (pass 1 collects the Status/Result function registry and the per-class
/// concurrency models; pass 2 runs the token rules R001-R010 and the
/// scope-aware rules R011-R014 per file; pass 3 checks the global
/// lock-order graph), output rendering, and baseline management.

struct LintOptions {
  /// Repository root. Display paths, the R005 guard convention, and the
  /// default scan set are all relative to it.
  std::string root = ".";
  /// Files or directories to scan. Directories recurse (".h/.hpp/.cc/.cpp").
  /// Empty means the project default: src/, tools/, tests/ under `root`.
  std::vector<std::string> paths;
  /// Directory names skipped during recursion. Lint fixtures live in
  /// "testdata" dirs with deliberate violations; explicitly listed files
  /// bypass this filter.
  std::vector<std::string> excluded_dirs = {"testdata"};
};

struct LintResult {
  std::vector<Finding> findings;  // sorted by file, line, col, rule
  size_t files_scanned = 0;
};

/// Runs the linter. Fails only on IO problems (unreadable file, missing
/// directory); findings are data, not errors.
Result<LintResult> RunLint(const LintOptions& options);

/// "file:line:col: [R00X] message" lines plus a one-line summary.
std::string RenderText(const LintResult& result);

/// Machine-readable form:
/// {"files_scanned": N, "findings": [{"rule": ..., "file": ..., ...}]}.
std::string RenderJson(const LintResult& result);

/// One accepted pre-existing finding in a baseline file. Matching is by
/// (rule, file, line): the message is recorded for humans but ignored when
/// matching, so message rewording does not invalidate a baseline.
struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline file: `# comment` and blank lines plus entry lines of
/// the form `R011 src/foo.cc:42 original message`. Malformed lines are
/// errors — a corrupt baseline silently accepting everything is worse than
/// a failing lint run.
Result<Baseline> LoadBaseline(const std::string& path);

/// Renders the findings of `result` in baseline format (header comment
/// included), for --update-baseline.
std::string SerializeBaseline(const LintResult& result);

/// Removes findings matched by the baseline from `result` (each entry
/// consumes at most one finding) and returns the stale entries — baselined
/// findings that no longer occur. Stale entries are an error at the CLI:
/// the fix should shrink the baseline so it cannot mask a regression at the
/// same site later.
std::vector<BaselineEntry> ApplyBaseline(const Baseline& baseline,
                                         LintResult* result);

}  // namespace lint
}  // namespace maroon

#endif  // MAROON_LINT_LINTER_H_
