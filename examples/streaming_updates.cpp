// Streaming profile maintenance — the paper's §1 vision in motion: records
// arrive year by year, and the target's profile grows increasingly complete
// and up-to-date with each flush.
//
// Build & run:  cmake --build build && ./build/examples/streaming_updates

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/profile_algebra.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "matching/incremental_linker.h"

using namespace maroon;  // NOLINT — example brevity

int main() {
  RecruitmentOptions data_options;
  data_options.seed = 123;
  data_options.num_entities = 60;
  data_options.num_names = 24;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);

  ExperimentOptions exp_options;
  Experiment experiment(&dataset, exp_options);
  experiment.Prepare();

  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset.attributes(), options);

  // Pick a held-out target and stream its candidate records by year.
  const EntityId entity = experiment.test_entities().front();
  const auto target = dataset.target(entity);
  std::vector<const TemporalRecord*> candidates;
  for (RecordId rid : dataset.CandidatesFor(entity)) {
    candidates.push_back(&dataset.record(rid));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TemporalRecord* a, const TemporalRecord* b) {
              return a->timestamp() < b->timestamp();
            });

  IncrementalLinker linker(&maroon, (*target)->clean_profile);
  std::cout << "Target " << entity << " (\""
            << (*target)->clean_profile.name() << "\"), "
            << candidates.size() << " candidate records\n\n";
  std::cout << "year   observed  linked  completeness\n";

  size_t next = 0;
  for (TimePoint year = candidates.front()->timestamp();
       year <= candidates.back()->timestamp(); year += 5) {
    while (next < candidates.size() &&
           candidates[next]->timestamp() < year + 5) {
      MAROON_CHECK(linker.Observe(*candidates[next]).ok());
      ++next;
    }
    (void)linker.Flush();
    const ProfileQuality quality =
        CompareProfiles(linker.current_profile(), (*target)->ground_truth,
                        dataset.attributes());
    std::cout << year << "   " << linker.NumObserved() << "        "
              << linker.linked_records().size() << "      "
              << FormatDouble(quality.completeness, 3) << "\n";
  }

  std::cout << "\nFinal timeline:\n"
            << RenderTimeline(linker.current_profile());
  const auto pr = ComputePrecisionRecall(
      std::vector<RecordId>(linker.linked_records().begin(),
                            linker.linked_records().end()),
      dataset.TrueMatchesOf(entity));
  std::cout << "\nFinal P=" << FormatDouble(pr.precision, 3)
            << " R=" << FormatDouble(pr.recall, 3) << "\n";
  return 0;
}
