// Auditing data-source freshness.
//
// Generates the synthetic Recruitment corpus, learns per-source per-attribute
// update-delay distributions (the paper's §4.2 model), and prints an audit:
// which sources are fresh at µ = 0.9, and how their delays distribute.
//
// Build & run:  cmake --build build && ./build/examples/source_freshness_audit

#include <iomanip>
#include <iostream>

#include "common/string_util.h"
#include "datagen/recruitment_generator.h"
#include "freshness/freshness_model.h"

using namespace maroon;  // NOLINT — example brevity

int main() {
  RecruitmentOptions options;
  options.seed = 77;
  options.num_entities = 400;
  options.num_names = 150;
  const Dataset dataset = GenerateRecruitmentDataset(options);
  std::cout << dataset.StatisticsString() << "\n";

  std::vector<EntityId> all_entities;
  for (const auto& [id, target] : dataset.targets()) {
    all_entities.push_back(id);
  }
  const FreshnessModel model = FreshnessModel::Train(dataset, all_entities);
  const std::vector<Attribute>& attributes = dataset.attributes();

  std::cout << "Delay distributions Delay(eta, source, attribute):\n";
  for (const DataSource& source : dataset.sources()) {
    std::cout << "\n" << source.name << " (freshness score "
              << FormatDouble(model.FreshnessScore(source.id, attributes), 2)
              << ", " << (model.IsFresh(source.id, attributes, 0.9)
                              ? "FRESH at mu=0.9"
                              : "stale at mu=0.9")
              << ")\n";
    std::cout << "  attribute        eta=0   eta=1   eta=2   eta=3   eta>=4\n";
    for (const Attribute& a : attributes) {
      double tail = 0.0;
      for (int64_t eta = 4; eta <= 40; ++eta) {
        tail += model.Delay(eta, source.id, a);
      }
      std::cout << "  " << std::left << std::setw(15) << a << std::right;
      for (int64_t eta = 0; eta <= 3; ++eta) {
        std::cout << "  " << FormatDouble(model.Delay(eta, source.id, a), 3);
      }
      std::cout << "   " << FormatDouble(tail, 3) << "   ("
                << model.ObservationCount(source.id, a) << " obs)\n";
    }
  }

  std::cout << "\nInterpretation: MAROON seeds Phase-I clusters from the "
               "fresh source(s)\nand places the lagging sources' values into "
               "the historical states their\ndelay distributions say they "
               "describe (Eq. 10).\n";
  return 0;
}
