// Declarative temporal rules on top of the learnt models.
//
// The transition model scores how *plausible* a candidate state is; some
// domain knowledge is absolute and should never be overruled by statistics
// (ref. [4]'s declarative linkage rules, which MAROON complements). Here a
// candidate cluster claims the target was an "Intern" in 2012 — after eight
// years as Manager — with a high source confidence. The rule
// "Intern never after Manager" vetoes it regardless of score.
//
// Also demonstrates the ASCII timeline renderer and profile diffing.
//
// Build & run:  cmake --build build && ./build/examples/temporal_rules

#include <iostream>
#include <memory>

#include "core/profile_algebra.h"
#include "matching/constraints.h"
#include "matching/profile_matcher.h"
#include "transition/transition_model.h"

using namespace maroon;  // NOLINT — example brevity

namespace {

ProfileSet TrainingCareers() {
  ProfileSet profiles;
  const auto career =
      [&](const std::string& id,
          std::initializer_list<std::tuple<TimePoint, TimePoint, Value>>
              spells) {
        EntityProfile p(id, id);
        for (const auto& [b, e, v] : spells) {
          (void)p.sequence("Title").Append(Triple(b, e, MakeValueSet({v})));
        }
        profiles.push_back(std::move(p));
      };
  career("t1", {{2000, 2001, "Intern"}, {2002, 2005, "Engineer"},
                {2006, 2012, "Manager"}});
  career("t2", {{2001, 2002, "Intern"}, {2003, 2007, "Engineer"},
                {2008, 2014, "Manager"}});
  career("t3", {{2000, 2003, "Engineer"}, {2004, 2010, "Manager"},
                {2011, 2014, "Director"}});
  return profiles;
}

GeneratedCluster MakeCluster(Interval interval, const Value& title,
                             double confidence, RecordId record_id) {
  GeneratedCluster gc;
  gc.signature.interval = interval;
  gc.signature.values["Title"] = MakeValueSet({title});
  gc.signature.confidence["Title"] = confidence;
  TemporalRecord r(record_id, "Pat", interval.begin, 0);
  r.SetValue("Title", MakeValueSet({title}));
  gc.cluster.Add(r);
  return gc;
}

}  // namespace

int main() {
  const TransitionModel model =
      TransitionModel::Train(TrainingCareers(), {"Title"});

  EntityProfile pat("pat", "Pat Jones");
  (void)pat.sequence("Title").Append(
      Triple(2000, 2003, MakeValueSet({"Engineer"})));
  (void)pat.sequence("Title").Append(
      Triple(2004, 2011, MakeValueSet({"Manager"})));

  std::cout << "Known history:\n" << RenderTimeline(pat) << "\n";

  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2012, 2012), "Director", 1.0, 1));
  // The decoy: an "Intern" claim with inflated source support.
  clusters.push_back(MakeCluster(Interval(2012, 2012), "Intern", 5.0, 2));

  ProfileMatcherOptions options;
  options.theta = 0.001;
  options.single_valued_attributes = {"Title"};

  // --- Without rules: the noisy high-confidence claim can win. -----------
  ProfileMatcher unconstrained(&model, {"Title"}, options);
  const MatchResult naive = unconstrained.MatchAndAugment(pat, clusters);
  std::cout << "Without rules, linked records:";
  for (RecordId id : naive.matched_records) std::cout << " r" << id;
  std::cout << "\n";

  // --- With the rule "Intern never after Manager". ------------------------
  ConstraintSet rules;
  rules.Add(std::make_unique<ValueOrderConstraint>("Title", "Intern",
                                                   "Manager"));
  options.constraints = &rules;
  ProfileMatcher constrained(&model, {"Title"}, options);
  const MatchResult ruled = constrained.MatchAndAugment(pat, clusters);
  std::cout << "With rules,    linked records:";
  for (RecordId id : ruled.matched_records) std::cout << " r" << id;
  std::cout << "  (the Intern claim is vetoed)\n\n";

  std::cout << "Augmented history:\n"
            << RenderTimeline(ruled.augmented_profile) << "\n";

  const ProfileDiff diff = DiffProfiles(pat, ruled.augmented_profile);
  std::cout << "Facts added by linkage:\n";
  for (const ProfileFact& f : diff.added) {
    std::cout << "  " << f.attribute << " @ " << f.time << " = " << f.value
              << "\n";
  }
  return 0;
}
