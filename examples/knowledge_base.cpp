// Building a queryable temporal knowledge base — the paper's §1 vision:
// aggregate web records into per-entity histories, then answer
// point-in-time questions over the integrated repository.
//
// Pipeline: generate the Recruitment corpus -> train models -> batch-link
// every target entity with exclusive record assignment -> load the
// augmented profiles into a ProfileStore -> query it.
//
// Build & run:  cmake --build build && ./build/examples/knowledge_base

#include <iostream>

#include "core/profile_store.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"
#include "matching/batch_linker.h"

using namespace maroon;  // NOLINT — example brevity

int main() {
  RecruitmentOptions data_options;
  data_options.seed = 99;
  data_options.num_entities = 80;
  data_options.num_names = 30;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);
  std::cout << dataset.StatisticsString() << "\n";

  // Train on half the entities; link everyone.
  ExperimentOptions exp_options;
  Experiment experiment(&dataset, exp_options);
  experiment.Prepare();

  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&experiment.transition_model(), &experiment.freshness_model(),
                &experiment.similarity(), dataset.attributes(), options);

  std::vector<EntityId> all_targets;
  for (const auto& [id, target] : dataset.targets()) {
    all_targets.push_back(id);
  }
  BatchLinker linker(&maroon);
  const BatchLinkResult linked = linker.LinkAll(dataset, all_targets);
  std::cout << "linked " << linked.assignment.size() << " records to "
            << linked.per_entity.size() << " entities ("
            << linked.contested_records
            << " were contested between same-named entities)\n\n";

  // Load the augmented profiles into the knowledge base.
  ProfileStore store;
  for (const auto& [id, link] : linked.per_entity) {
    store.Put(link.match.augmented_profile);
  }

  // --- Queries. ------------------------------------------------------------
  // Who held the title "Director" in 2010?
  const auto directors = store.FindByValueAt(kAttrTitle, "Director", 2010);
  std::cout << directors.size() << " entities were Directors in 2010\n";

  // Snapshot one entity mid-career.
  if (!directors.empty()) {
    const EntityId& person = directors.front();
    auto snapshot = store.SnapshotAt(person, 2010);
    if (snapshot.ok()) {
      std::cout << "\nSnapshot of " << person << " in 2010:\n";
      for (const auto& [attribute, values] : *snapshot) {
        std::cout << "  " << attribute << " = " << ValueSetToString(values)
                  << "\n";
      }
      // Who were their colleagues (same organization) that year?
      const auto colleagues = store.CoOccurring(person, kAttrOrganization,
                                                2010);
      std::cout << "  colleagues at the same organization in 2010: "
                << colleagues.size() << "\n";
    }
  }

  // Name ambiguity inside the knowledge base itself.
  size_t shared_names = 0;
  for (const EntityId& id : store.Ids()) {
    auto profile = store.Get(id);
    if (profile.ok() && store.FindByName((*profile)->name()).size() > 1) {
      ++shared_names;
    }
  }
  std::cout << "\n" << shared_names << " of " << store.size()
            << " stored entities share their display name with another "
               "entity — the ambiguity temporal linkage resolved.\n";
  return 0;
}
