// The paper's running example end-to-end: David Brown's employment history
// (Table 1), nine web records from three sources (Table 2), and the
// augmented profile (Table 3).
//
// Demonstrates the two headline behaviours:
//   * the transition model links r5 (Manager -> Director promotion) while
//     rejecting r6 (Manager -> IT Contractor) although both share the
//     organization "Quest Software";
//   * source freshness places Facebook's stale values into the past states
//     they actually describe, while its fresh Location/Interests seed a new
//     present-day state.
//
// Build & run:  cmake --build build && ./build/examples/job_seeker_profile

#include <iostream>

#include "freshness/freshness_model.h"
#include "matching/maroon.h"
#include "similarity/record_similarity.h"
#include "transition/transition_model.h"

using namespace maroon;  // NOLINT — example brevity

namespace {

const Attribute kOrg = "Organization";
const Attribute kTitle = "Title";
const Attribute kLocation = "Location";
const Attribute kInterests = "Interests";

EntityProfile DavidBrown() {
  EntityProfile profile("david", "David Brown");
  TemporalSequence& org = profile.sequence(kOrg);
  (void)org.Append(Triple(2000, 2001, MakeValueSet({"S3", "XJek"})));
  (void)org.Append(Triple(2002, 2002, MakeValueSet({"XJek"})));
  (void)org.Append(Triple(2003, 2005, MakeValueSet({"Aelita"})));
  (void)org.Append(Triple(2006, 2009, MakeValueSet({"Quest Software"})));
  TemporalSequence& title = profile.sequence(kTitle);
  (void)title.Append(Triple(2000, 2002, MakeValueSet({"Engineer"})));
  (void)title.Append(Triple(2003, 2009, MakeValueSet({"Manager"})));
  return profile;
}

ProfileSet TrainingCareers() {
  ProfileSet profiles;
  const auto career =
      [&](const std::string& id,
          std::initializer_list<std::tuple<TimePoint, TimePoint, Value>>
              spells) {
        EntityProfile p(id, id);
        for (const auto& [b, e, v] : spells) {
          (void)p.sequence(kTitle).Append(Triple(b, e, MakeValueSet({v})));
        }
        profiles.push_back(std::move(p));
      };
  career("t1", {{2000, 2002, "Engineer"}, {2003, 2010, "Manager"},
                {2011, 2014, "Director"}});
  career("t2", {{1998, 2001, "Engineer"}, {2002, 2009, "Manager"},
                {2010, 2014, "Director"}});
  career("t3", {{2001, 2003, "Engineer"}, {2004, 2011, "Manager"},
                {2012, 2014, "Director"}});
  career("t4", {{1999, 2002, "Engineer"}, {2003, 2009, "Manager"},
                {2010, 2013, "Director"}, {2014, 2014, "President"}});
  career("t5", {{2000, 2002, "Analyst"}, {2003, 2007, "Manager"},
                {2008, 2014, "Director"}});
  career("t6", {{2002, 2003, "IT Contractor"}, {2004, 2007, "Engineer"},
                {2008, 2014, "Manager"}});
  career("t7", {{2000, 2005, "Engineer"}, {2006, 2010, "Consultant"},
                {2011, 2014, "Manager"}});
  career("t8", {{2004, 2008, "Director"}, {2009, 2014, "President"}});
  return profiles;
}

}  // namespace

int main() {
  const std::vector<Attribute> attributes = {kOrg, kTitle, kLocation,
                                             kInterests};

  // ---- Table 2: records from Google+ (0), Facebook (1), Twitter (2). ----
  std::vector<TemporalRecord> records;
  const auto add = [&](TimePoint t, SourceId s,
                       std::initializer_list<std::pair<Attribute, ValueSet>>
                           values) {
    TemporalRecord r(static_cast<RecordId>(records.size()), "David Brown", t,
                     s);
    for (const auto& [a, v] : values) r.SetValue(a, v);
    records.push_back(std::move(r));
  };
  add(2001, 0, {{kOrg, MakeValueSet({"S3", "XJek"})},
                {kTitle, MakeValueSet({"Engineer"})}});            // r1
  add(2002, 0, {{kOrg, MakeValueSet({"S3", "XJek"})},
                {kTitle, MakeValueSet({"Engineer"})}});            // r2
  add(2004, 1, {{kOrg, MakeValueSet({"S3", "XJek"})},
                {kTitle, MakeValueSet({"Engineer"})}});            // r3 stale
  add(2004, 2, {{kTitle, MakeValueSet({"Manager"})},
                {kLocation, MakeValueSet({"Chicago"})}});          // r4
  add(2011, 0, {{kOrg, MakeValueSet({"Quest Software"})},
                {kTitle, MakeValueSet({"Director"})},
                {kInterests, MakeValueSet({"Technology"})}});      // r5
  add(2011, 0, {{kOrg, MakeValueSet({"Quest Software"})},
                {kTitle, MakeValueSet({"IT Contractor"})}});       // r6 decoy
  add(2012, 1, {{kTitle, MakeValueSet({"Engineer"})},
                {kLocation, MakeValueSet({"Chicago"})},
                {kInterests, MakeValueSet({"Politics", "Sports"})}});  // r7
  add(2013, 2, {{kOrg, MakeValueSet({"WSO2"})},
                {kTitle, MakeValueSet({"President"})},
                {kLocation, MakeValueSet({"Chicago"})}});          // r8
  add(2013, 0, {{kOrg, MakeValueSet({"WSO2"})},
                {kTitle, MakeValueSet({"President"})},
                {kInterests, MakeValueSet({"Technology"})}});      // r9

  // ---- Models. -----------------------------------------------------------
  const TransitionModel transition =
      TransitionModel::Train(TrainingCareers(), attributes);

  FreshnessModel freshness;
  for (const Attribute& a : attributes) {
    for (int i = 0; i < 19; ++i) freshness.AddObservation(0, a, 0);
    freshness.AddObservation(0, a, 1);
    for (int i = 0; i < 19; ++i) freshness.AddObservation(2, a, 0);
    freshness.AddObservation(2, a, 1);
  }
  for (const Attribute& a : {kOrg, kTitle}) {
    for (int i = 0; i < 3; ++i) freshness.AddObservation(1, a, 0);
    for (int i = 0; i < 3; ++i) freshness.AddObservation(1, a, 2);
    for (int i = 0; i < 4; ++i) freshness.AddObservation(1, a, 10);
  }
  for (const Attribute& a : {kLocation, kInterests}) {
    for (int i = 0; i < 19; ++i) freshness.AddObservation(1, a, 0);
    freshness.AddObservation(1, a, 1);
  }
  freshness.Finalize();

  std::cout << "Transition model says, for a Manager of 8 years:\n"
            << "  -> Director:      "
            << transition.Probability(kTitle, "Manager", "Director", 8)
            << "\n  -> IT Contractor: "
            << transition.Probability(kTitle, "Manager", "IT Contractor", 8)
            << "\n\n";

  // ---- Link. ---------------------------------------------------------------
  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.theta = 0.01;
  options.matcher.single_valued_attributes = {kTitle, kLocation};
  Maroon maroon(&transition, &freshness, &similarity, attributes, options);

  std::vector<const TemporalRecord*> candidates;
  for (const auto& r : records) candidates.push_back(&r);
  const LinkResult result = maroon.Link(DavidBrown(), candidates);

  std::cout << "Phase I produced " << result.num_clusters << " clusters\n";
  std::cout << "Linked records (r_i = id+1):";
  for (RecordId id : result.match.matched_records) {
    std::cout << " r" << (id + 1);
  }
  std::cout << "\n  (r6 — the IT Contractor decoy — should be absent)\n\n";

  std::cout << "Updated profile of David Brown (cf. Table 3):\n"
            << result.match.augmented_profile.ToString() << "\n";
  return 0;
}
