// Disambiguating authors that share a name, DBLP-style.
//
// Generates the synthetic DBLP-Ambi corpus (216 authors, 21 names), trains
// the transition model on half of the clean profiles, and links the paper
// records of a few ambiguous names to the right authors. Also prints the
// category-level affiliation dynamics the model learns (the trends behind
// the paper's Figure 3).
//
// Build & run:  cmake --build build && ./build/examples/dblp_authors

#include <iomanip>
#include <iostream>

#include "common/string_util.h"
#include "datagen/dblp_generator.h"
#include "eval/experiment.h"

using namespace maroon;  // NOLINT — example brevity

int main() {
  DblpOptions options;
  options.seed = 2015;
  const DblpCorpus corpus = GenerateDblpCorpus(options);
  const Dataset& dataset = corpus.dataset;
  std::cout << dataset.StatisticsString() << "\n";

  // --- Category-level affiliation transitions (Figure 3's trends). --------
  ProfileSet profiles;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
  }
  TransitionModelOptions tm_options;
  tm_options.mapper = corpus.affiliation_category_mapper;
  const TransitionModel category_model =
      TransitionModel::Train(profiles, {kAttrAffiliation}, tm_options);

  std::cout << "Learnt category transitions for Affiliation:\n";
  std::cout << "  dt   univ->univ   univ->ind   ind->univ   ind->ind\n";
  for (int64_t dt : {1, 4, 8, 12}) {
    std::cout << "  " << std::setw(2) << dt << "   "
              << FormatDouble(category_model.Probability(
                     kAttrAffiliation, "university", "university", dt), 3)
              << "        "
              << FormatDouble(category_model.Probability(
                     kAttrAffiliation, "university", "industry", dt), 3)
              << "       "
              << FormatDouble(category_model.Probability(
                     kAttrAffiliation, "industry", "university", dt), 3)
              << "       "
              << FormatDouble(category_model.Probability(
                     kAttrAffiliation, "industry", "industry", dt), 3)
              << "\n";
  }
  std::cout << "\n";

  // --- Link records for a few ambiguous authors. ---------------------------
  ExperimentOptions exp_options;
  exp_options.max_eval_entities = 20;
  Experiment experiment(&dataset, exp_options);
  experiment.Prepare();

  std::cout << "Evaluating 20 held-out authors:\n";
  const ExperimentResult maroon_result = experiment.Run(Method::kMaroon);
  const ExperimentResult muta_result = experiment.Run(Method::kAfdsMuta);
  std::cout << "  " << maroon_result.ToString() << "\n";
  std::cout << "  " << muta_result.ToString() << "\n";

  // Show one concrete disambiguation.
  const EntityId& entity = experiment.test_entities().front();
  const auto target = dataset.target(entity);
  if (target.ok()) {
    const auto candidates = dataset.CandidatesFor(entity);
    const auto matches = dataset.TrueMatchesOf(entity);
    std::cout << "\nAuthor " << entity << " (\""
              << (*target)->ground_truth.name() << "\"): "
              << candidates.size() << " same-name candidate records, "
              << matches.size() << " genuinely theirs.\n";
  }
  return 0;
}
