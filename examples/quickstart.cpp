// Quickstart: the minimal end-to-end MAROON flow.
//
// 1. Build clean training profiles and learn a transition model.
// 2. Learn a freshness model for the data sources.
// 3. Link a handful of temporal records to a target entity and print the
//    augmented profile.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "freshness/freshness_model.h"
#include "matching/maroon.h"
#include "similarity/record_similarity.h"
#include "transition/transition_model.h"

using namespace maroon;  // NOLINT — example brevity

namespace {

EntityProfile MakeCareer(const std::string& id,
                         std::initializer_list<
                             std::tuple<TimePoint, TimePoint, Value>>
                             titles) {
  EntityProfile p(id, id);
  TemporalSequence& seq = p.sequence("Title");
  for (const auto& [b, e, v] : titles) {
    Status s = seq.Append(Triple(b, e, MakeValueSet({v})));
    if (!s.ok()) std::cerr << "bad training profile: " << s << "\n";
  }
  return p;
}

}  // namespace

int main() {
  // --- 1. Train the transition model from clean profiles. -----------------
  ProfileSet training;
  training.push_back(MakeCareer("t1", {{2000, 2003, "Engineer"},
                                       {2004, 2009, "Manager"},
                                       {2010, 2014, "Director"}}));
  training.push_back(MakeCareer("t2", {{2001, 2004, "Engineer"},
                                       {2005, 2011, "Manager"},
                                       {2012, 2014, "Director"}}));
  training.push_back(MakeCareer("t3", {{2002, 2006, "Engineer"},
                                       {2007, 2014, "Manager"}}));
  training.push_back(MakeCareer("t4", {{2000, 2005, "Analyst"},
                                       {2006, 2010, "Manager"},
                                       {2011, 2014, "Consultant"}}));
  const std::vector<Attribute> attributes = {"Title"};
  const TransitionModel transition =
      TransitionModel::Train(training, attributes);

  std::cout << "Pr(Manager -> Director after 6y) = "
            << transition.Probability("Title", "Manager", "Director", 6)
            << "\n";
  std::cout << "Pr(Manager -> Engineer after 6y) = "
            << transition.Probability("Title", "Manager", "Engineer", 6)
            << "\n\n";

  // --- 2. A freshness model: source 0 is live, source 1 lags. -------------
  FreshnessModel freshness;
  for (int i = 0; i < 19; ++i) freshness.AddObservation(0, "Title", 0);
  freshness.AddObservation(0, "Title", 1);
  for (int i = 0; i < 5; ++i) freshness.AddObservation(1, "Title", 0);
  for (int i = 0; i < 5; ++i) freshness.AddObservation(1, "Title", 3);
  freshness.Finalize();

  // --- 3. Link records to a target entity. --------------------------------
  EntityProfile alice("alice", "Alice Chen");
  (void)alice.sequence("Title").Append(
      Triple(2004, 2007, MakeValueSet({"Engineer"})));
  (void)alice.sequence("Title").Append(
      Triple(2008, 2012, MakeValueSet({"Manager"})));

  std::vector<TemporalRecord> records;
  TemporalRecord r1(0, "Alice Chen", 2014, /*source=*/0);
  r1.SetValue("Title", MakeValueSet({"Director"}));  // plausible promotion
  records.push_back(r1);
  TemporalRecord r2(1, "Alice Chen", 2014, /*source=*/0);
  r2.SetValue("Title", MakeValueSet({"Intern"}));  // implausible
  records.push_back(r2);
  std::vector<const TemporalRecord*> candidates;
  for (const auto& r : records) candidates.push_back(&r);

  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.theta = 0.05;
  options.matcher.single_valued_attributes = {"Title"};
  Maroon maroon(&transition, &freshness, &similarity, attributes, options);

  const LinkResult result = maroon.Link(alice, candidates);
  std::cout << "Linked records:";
  for (RecordId id : result.match.matched_records) std::cout << " r" << id;
  std::cout << "\n\nAugmented profile:\n"
            << result.match.augmented_profile.ToString() << "\n";
  return 0;
}
