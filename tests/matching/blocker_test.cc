#include "matching/blocker.h"

#include <gtest/gtest.h>

#include "datagen/recruitment_generator.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

TEST(NormalizeNameTest, LowercasesAndSortsTokens) {
  EXPECT_EQ(NameBlocker::NormalizeName("David Brown"), "brown david");
  EXPECT_EQ(NameBlocker::NormalizeName("BROWN,  David"), "brown david");
  EXPECT_EQ(NameBlocker::NormalizeName("David  Brown"),
            NameBlocker::NormalizeName("Brown David"));
  EXPECT_EQ(NameBlocker::NormalizeName(""), "");
}

TEST(NameBlockerTest, ExactBlockingMatchesPaperCandidates) {
  const Dataset dataset = testing::PaperRecords();
  NameBlocker blocker;
  blocker.Index(dataset);
  const auto candidates = blocker.Candidates("David Brown");
  EXPECT_EQ(candidates.size(), 9u);
  // Token order and casing do not matter.
  EXPECT_EQ(blocker.Candidates("brown DAVID").size(), 9u);
  EXPECT_TRUE(blocker.Candidates("Someone Else").empty());
}

TEST(NameBlockerTest, FuzzyRecoversTypos) {
  Dataset dataset;
  dataset.SetAttributes({"Title"});
  dataset.AddSource("S");
  const auto add = [&](const std::string& name) {
    TemporalRecord r(0, name, 2000, 0);
    r.SetValue("Title", MakeValueSet({"Engineer"}));
    return dataset.AddRecord(std::move(r));
  };
  add("David Brown");
  add("Davd Brown");     // dropped character
  add("David Borwn");    // transposition
  add("Maria Garcia");   // unrelated

  NameBlocker exact;
  exact.Index(dataset);
  EXPECT_EQ(exact.Candidates("David Brown").size(), 1u);

  BlockerOptions options;
  options.fuzzy = true;
  NameBlocker fuzzy(options);
  fuzzy.Index(dataset);
  const auto candidates = fuzzy.Candidates("David Brown");
  EXPECT_EQ(candidates.size(), 3u);
  for (RecordId id : candidates) EXPECT_LT(id, 3u);
}

TEST(NameBlockerTest, FuzzyThresholdControlsAdmission) {
  Dataset dataset;
  dataset.SetAttributes({"Title"});
  dataset.AddSource("S");
  TemporalRecord r(0, "Daved Brwn", 2000, 0);
  r.SetValue("Title", MakeValueSet({"X"}));
  dataset.AddRecord(std::move(r));

  BlockerOptions strict;
  strict.fuzzy = true;
  strict.name_similarity_threshold = 0.99;
  NameBlocker strict_blocker(strict);
  strict_blocker.Index(dataset);
  EXPECT_TRUE(strict_blocker.Candidates("David Brown").empty());

  BlockerOptions loose;
  loose.fuzzy = true;
  loose.name_similarity_threshold = 0.85;
  NameBlocker loose_blocker(loose);
  loose_blocker.Index(dataset);
  EXPECT_EQ(loose_blocker.Candidates("David Brown").size(), 1u);
}

TEST(NameBlockerTest, TypoNoiseLimitsExactBlockingRecall) {
  RecruitmentOptions options;
  options.seed = 17;
  options.num_entities = 40;
  options.num_names = 20;
  options.social_source_name_typo_rate = 0.4;
  const Dataset dataset = GenerateRecruitmentDataset(options);

  NameBlocker exact;
  exact.Index(dataset);
  BlockerOptions fuzzy_options;
  fuzzy_options.fuzzy = true;
  NameBlocker fuzzy(fuzzy_options);
  fuzzy.Index(dataset);

  size_t exact_found = 0, fuzzy_found = 0, total_true = 0;
  for (const auto& [id, target] : dataset.targets()) {
    const auto truth = dataset.TrueMatchesOf(id);
    total_true += truth.size();
    const auto exact_set = exact.Candidates(target.clean_profile.name());
    const auto fuzzy_set = fuzzy.Candidates(target.clean_profile.name());
    for (RecordId rid : truth) {
      exact_found += std::binary_search(exact_set.begin(), exact_set.end(),
                                        rid);
      fuzzy_found += std::binary_search(fuzzy_set.begin(), fuzzy_set.end(),
                                        rid);
    }
  }
  ASSERT_GT(total_true, 0u);
  // Typos push true records out of exact blocks; fuzzy recovers most.
  EXPECT_LT(exact_found, total_true);
  EXPECT_GT(fuzzy_found, exact_found);
}

TEST(NameBlockerTest, ReindexReplacesState) {
  Dataset a;
  a.SetAttributes({"T"});
  a.AddSource("S");
  TemporalRecord r(0, "Alice", 2000, 0);
  r.SetValue("T", MakeValueSet({"x"}));
  a.AddRecord(std::move(r));

  NameBlocker blocker;
  blocker.Index(a);
  EXPECT_EQ(blocker.NumKeys(), 1u);

  Dataset b;
  b.SetAttributes({"T"});
  blocker.Index(b);
  EXPECT_EQ(blocker.NumKeys(), 0u);
  EXPECT_TRUE(blocker.Candidates("Alice").empty());
}

}  // namespace
}  // namespace maroon
