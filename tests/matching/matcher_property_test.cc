#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "core/profile_algebra.h"
#include "datagen/recruitment_generator.h"
#include "eval/metrics.h"
#include "matching/maroon.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

/// Property tests over the full Phase I + Phase II pipeline on randomized
/// small corpora: structural invariants that must hold regardless of data.
class MatcherInvariantProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherInvariantProperty, LinkInvariantsHold) {
  RecruitmentOptions data_options;
  data_options.seed = GetParam();
  data_options.num_entities = 30;
  data_options.num_names = 10;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);

  // Train on every profile (small corpus; we test invariants, not quality).
  ProfileSet profiles;
  std::vector<EntityId> ids;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
    ids.push_back(id);
  }
  const TransitionModel transition =
      TransitionModel::Train(profiles, dataset.attributes());
  const FreshnessModel freshness = FreshnessModel::Train(dataset, ids);
  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&transition, &freshness, &similarity, dataset.attributes(),
                options);

  // Check a handful of targets per seed.
  size_t checked = 0;
  for (const EntityId& id : ids) {
    if (checked >= 5) break;
    ++checked;
    const auto target = dataset.target(id);
    ASSERT_TRUE(target.ok()) << target.status();
    std::vector<const TemporalRecord*> candidates;
    std::set<RecordId> candidate_ids;
    for (RecordId rid : dataset.CandidatesFor(id)) {
      candidates.push_back(&dataset.record(rid));
      candidate_ids.insert(rid);
    }
    const LinkResult result =
        maroon.Link((*target)->clean_profile, candidates);

    // 1. Matched records are a subset of the candidates, without duplicates.
    std::set<RecordId> matched(result.match.matched_records.begin(),
                               result.match.matched_records.end());
    EXPECT_EQ(matched.size(), result.match.matched_records.size());
    for (RecordId rid : matched) {
      EXPECT_TRUE(candidate_ids.count(rid) > 0)
          << "seed " << GetParam() << " entity " << id;
    }

    // 2. The augmented profile preserves every clean-profile fact.
    const ProfileDiff diff =
        DiffProfiles((*target)->clean_profile, result.match.augmented_profile);
    EXPECT_TRUE(diff.removed.empty())
        << "seed " << GetParam() << " entity " << id << ": linkage must not "
        << "erase trusted history";

    // 3. Every attribute sequence is canonical after post-processing.
    for (const auto& [attr, seq] : result.match.augmented_profile.sequences()) {
      EXPECT_TRUE(seq.IsCanonical()) << attr;
    }

    // 4. Linked + pruned cluster indices are disjoint and within range.
    std::set<size_t> linked(result.match.linked_clusters.begin(),
                            result.match.linked_clusters.end());
    for (size_t i : result.match.pruned_clusters) {
      EXPECT_EQ(linked.count(i), 0u);
      EXPECT_LT(i, result.num_clusters);
    }
    for (size_t i : linked) EXPECT_LT(i, result.num_clusters);

    // 5. Timings are non-negative.
    EXPECT_GE(result.timings.phase1_seconds, 0.0);
    EXPECT_GE(result.timings.phase2_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatcherInvariantProperty,
                         ::testing::Range<uint64_t>(100, 112));

class ThetaMonotonicityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThetaMonotonicityProperty, HigherThetaLinksSubset) {
  // Raising θ can only remove links for the *first* iteration choice chain;
  // globally, the match count must not increase.
  RecruitmentOptions data_options;
  data_options.seed = GetParam();
  data_options.num_entities = 20;
  data_options.num_names = 8;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);

  ProfileSet profiles;
  std::vector<EntityId> ids;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
    ids.push_back(id);
  }
  const TransitionModel transition =
      TransitionModel::Train(profiles, dataset.attributes());
  const FreshnessModel freshness = FreshnessModel::Train(dataset, ids);
  SimilarityCalculator similarity;

  const EntityId& id = ids.front();
  const auto target = dataset.target(id);
  ASSERT_TRUE(target.ok()) << target.status();
  std::vector<const TemporalRecord*> candidates;
  for (RecordId rid : dataset.CandidatesFor(id)) {
    candidates.push_back(&dataset.record(rid));
  }

  size_t previous = SIZE_MAX;
  for (double theta : {0.001, 0.05, 0.5, 5.0}) {
    MaroonOptions options;
    options.matcher.theta = theta;
    options.matcher.single_valued_attributes = dataset.attributes();
    Maroon maroon(&transition, &freshness, &similarity, dataset.attributes(),
                  options);
    const LinkResult result =
        maroon.Link((*target)->clean_profile, candidates);
    EXPECT_LE(result.match.matched_records.size(), previous)
        << "theta " << theta << " seed " << GetParam();
    previous = result.match.matched_records.size();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ThetaMonotonicityProperty,
                         ::testing::Range<uint64_t>(200, 208));

}  // namespace
}  // namespace maroon
