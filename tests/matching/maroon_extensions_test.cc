#include <gtest/gtest.h>

#include "clustering/fusion.h"
#include "matching/maroon.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

/// End-to-end coverage of the Maroon facade's optional attachments
/// (fusion strategy, reliability model) on the paper's running example.
class MaroonExtensionsTest : public ::testing::Test {
 protected:
  MaroonExtensionsTest()
      : dataset_(testing::PaperRecords()),
        freshness_(testing::PaperFreshnessModel()),
        transition_(TransitionModel::Train(testing::CareerTrainingProfiles(),
                                           {kTitle})) {
    for (const TemporalRecord& r : dataset_.records()) {
      records_.push_back(&r);
    }
    options_.matcher.theta = 0.01;
    options_.matcher.single_valued_attributes = {kTitle, testing::kLocation};
  }

  Dataset dataset_;
  FreshnessModel freshness_;
  TransitionModel transition_;
  SimilarityCalculator similarity_;
  std::vector<const TemporalRecord*> records_;
  MaroonOptions options_;
};

TEST_F(MaroonExtensionsTest, FusionStrategyIsApplied) {
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), options_);
  LatestWinsFusion latest;
  maroon.SetFusionStrategy(&latest);
  const LinkResult result =
      maroon.Link(testing::DavidBrownProfile(), records_);
  // The pipeline still produces the headline behaviour with the alternate
  // fusion: r6 stays out, the Director state links.
  const auto& matched = result.match.matched_records;
  EXPECT_FALSE(std::binary_search(matched.begin(), matched.end(), RecordId{5}));
  EXPECT_TRUE(std::binary_search(matched.begin(), matched.end(), RecordId{4}));
}

TEST_F(MaroonExtensionsTest, ReliabilityModelAttachmentIsOptional) {
  ReliabilityModel reliability;
  // A wildly unreliable Google+ on Title cuts its Eq. 11 contribution.
  for (int i = 0; i < 20; ++i) reliability.AddObservation(0, kTitle, i < 2);

  Maroon plain(&transition_, &freshness_, &similarity_,
               testing::PaperAttributes(), options_);
  const size_t plain_links =
      plain.Link(testing::DavidBrownProfile(), records_)
          .match.matched_records.size();

  Maroon weighted(&transition_, &freshness_, &similarity_,
                  testing::PaperAttributes(), options_);
  weighted.SetReliabilityModel(&reliability);
  const size_t weighted_links =
      weighted.Link(testing::DavidBrownProfile(), records_)
          .match.matched_records.size();
  // Down-weighting the main source cannot create links out of thin air.
  EXPECT_LE(weighted_links, plain_links);
}

TEST_F(MaroonExtensionsTest, DetachingRestoresDefaults) {
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), options_);
  const auto baseline =
      maroon.Link(testing::DavidBrownProfile(), records_).match
          .matched_records;

  LatestWinsFusion latest;
  maroon.SetFusionStrategy(&latest);
  maroon.SetFusionStrategy(nullptr);
  maroon.SetReliabilityModel(nullptr);
  const auto restored =
      maroon.Link(testing::DavidBrownProfile(), records_).match
          .matched_records;
  EXPECT_EQ(baseline, restored);
}

}  // namespace
}  // namespace maroon
