#include "matching/profile_matcher.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kInterests;
using testing::kLocation;
using testing::kOrg;
using testing::kTitle;

GeneratedCluster MakeCluster(
    Interval interval,
    std::initializer_list<std::tuple<Attribute, ValueSet, double>> entries,
    std::initializer_list<RecordId> records = {}) {
  GeneratedCluster gc;
  gc.signature.interval = interval;
  for (const auto& [attr, values, conf] : entries) {
    gc.signature.values[attr] = values;
    gc.signature.confidence[attr] = conf;
  }
  for (RecordId id : records) {
    TemporalRecord r(id, "X", interval.begin, 0);
    for (const auto& [attr, values, conf] : entries) r.SetValue(attr, values);
    gc.cluster.Add(r);
  }
  return gc;
}

class ProfileMatcherTest : public ::testing::Test {
 protected:
  ProfileMatcherTest()
      : model_(TransitionModel::Train(testing::CareerTrainingProfiles(),
                                      {kTitle})) {}

  ProfileMatcherOptions Options(double theta = 0.01) const {
    ProfileMatcherOptions o;
    o.theta = theta;
    o.single_valued_attributes = {kTitle, kLocation};
    return o;
  }

  TransitionModel model_;
};

TEST_F(ProfileMatcherTest, MatchScoreFavorsLikelyTransitions) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());

  const GeneratedCluster director = MakeCluster(
      Interval(2011, 2011), {{kTitle, MakeValueSet({"Director"}), 1.0}},
      {4});
  const GeneratedCluster contractor = MakeCluster(
      Interval(2011, 2011), {{kTitle, MakeValueSet({"IT Contractor"}), 1.0}},
      {5});
  const double s_director = matcher.MatchScore(profile, director);
  const double s_contractor = matcher.MatchScore(profile, contractor);
  EXPECT_GT(s_director, s_contractor);
  EXPECT_GT(s_director, 0.0);
}

TEST_F(ProfileMatcherTest, MatchScoreScalesWithConfidence) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  const GeneratedCluster weak = MakeCluster(
      Interval(2011, 2011), {{kTitle, MakeValueSet({"Director"}), 0.5}});
  const GeneratedCluster strong = MakeCluster(
      Interval(2011, 2011), {{kTitle, MakeValueSet({"Director"}), 2.0}});
  EXPECT_NEAR(matcher.MatchScore(profile, strong),
              4.0 * matcher.MatchScore(profile, weak), 1e-9);
}

TEST_F(ProfileMatcherTest, MatchAndAugmentLinksAboveThreshold) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 1.0}},
                                 {4}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_EQ(result.matched_records, (std::vector<RecordId>{4}));
  EXPECT_EQ(result.linked_clusters, (std::vector<size_t>{0}));
  // The profile now records the Director state at 2011.
  EXPECT_EQ(result.augmented_profile.sequence(kTitle).ValuesAt(2011),
            MakeValueSet({"Director"}));
  // The original history is preserved.
  EXPECT_EQ(result.augmented_profile.sequence(kTitle).ValuesAt(2005),
            MakeValueSet({"Manager"}));
  EXPECT_TRUE(result.augmented_profile.sequence(kTitle).IsCanonical());
}

TEST_F(ProfileMatcherTest, ThetaGatesLinking) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(),
                         Options(/*theta=*/1e6));
  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 1.0}},
                                 {4}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_TRUE(result.matched_records.empty());
  EXPECT_TRUE(result.linked_clusters.empty());
  // Profile untouched (still ends at 2009).
  EXPECT_TRUE(result.augmented_profile.sequence(kTitle).ValuesAt(2011).empty());
}

TEST_F(ProfileMatcherTest, ConflictingClusterIsPruned) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  std::vector<GeneratedCluster> clusters;
  // Example 8: once the Director cluster is linked, the IT Contractor
  // cluster conflicts on the single-valued Title at 2011 and is pruned.
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 2.0}},
                                 {4}));
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"IT Contractor"}), 1.0}},
                                 {5}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_EQ(result.matched_records, (std::vector<RecordId>{4}));
  EXPECT_EQ(result.linked_clusters, (std::vector<size_t>{0}));
  EXPECT_EQ(result.pruned_clusters, (std::vector<size_t>{1}));
  EXPECT_EQ(result.augmented_profile.sequence(kTitle).ValuesAt(2011),
            MakeValueSet({"Director"}));
}

TEST_F(ProfileMatcherTest, NonConflictingClustersBothLink) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 2.0}},
                                 {4}));
  // Disjoint period -> no conflict; President follows Director in training.
  clusters.push_back(MakeCluster(Interval(2013, 2013),
                                 {{kTitle, MakeValueSet({"President"}), 1.0}},
                                 {7}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_EQ(result.linked_clusters.size(), 2u);
  EXPECT_TRUE(result.pruned_clusters.empty());
  EXPECT_EQ(result.augmented_profile.sequence(kTitle).ValuesAt(2013),
            MakeValueSet({"President"}));
}

TEST_F(ProfileMatcherTest, IterationsAreBoundedByOption) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcherOptions options = Options();
  options.max_iterations = 1;
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), options);
  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 2.0}},
                                 {4}));
  clusters.push_back(MakeCluster(Interval(2013, 2013),
                                 {{kTitle, MakeValueSet({"President"}), 1.0}},
                                 {7}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.linked_clusters.size(), 1u);
}

TEST_F(ProfileMatcherTest, EmptyClusterSetIsNoOp) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  const MatchResult result = matcher.MatchAndAugment(profile, {});
  EXPECT_TRUE(result.matched_records.empty());
  EXPECT_EQ(result.iterations, 0u);
}

TEST_F(ProfileMatcherTest, ZeroConfidenceClusterNeverLinks) {
  const EntityProfile profile = testing::DavidBrownProfile();
  ProfileMatcher matcher(&model_, testing::PaperAttributes(), Options());
  std::vector<GeneratedCluster> clusters;
  clusters.push_back(MakeCluster(Interval(2011, 2011),
                                 {{kTitle, MakeValueSet({"Director"}), 0.0}},
                                 {4}));
  const MatchResult result = matcher.MatchAndAugment(profile, clusters);
  EXPECT_TRUE(result.matched_records.empty());
}

}  // namespace
}  // namespace maroon
