#include "matching/batch_linker.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/recruitment_generator.h"
#include "eval/metrics.h"
#include "freshness/freshness_model.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

class BatchLinkerTest : public ::testing::Test {
 protected:
  BatchLinkerTest() {
    RecruitmentOptions options;
    options.seed = 53;
    options.num_entities = 30;
    options.num_names = 10;  // 3 entities per name -> contested records
    dataset_ = GenerateRecruitmentDataset(options);
    for (const auto& [id, target] : dataset_.targets()) {
      profiles_.push_back(target.ground_truth);
      ids_.push_back(id);
    }
    transition_ = TransitionModel::Train(profiles_, dataset_.attributes());
    freshness_ = FreshnessModel::Train(dataset_, ids_);
    MaroonOptions mo;
    mo.matcher.single_valued_attributes = dataset_.attributes();
    maroon_ = std::make_unique<Maroon>(&transition_, &freshness_,
                                       &similarity_, dataset_.attributes(),
                                       mo);
  }

  Dataset dataset_;
  ProfileSet profiles_;
  std::vector<EntityId> ids_;
  TransitionModel transition_;
  FreshnessModel freshness_;
  SimilarityCalculator similarity_;
  std::unique_ptr<Maroon> maroon_;
};

TEST_F(BatchLinkerTest, ExclusiveAssignmentIsExclusive) {
  BatchLinker linker(maroon_.get());
  const BatchLinkResult result = linker.LinkAll(dataset_, ids_);
  EXPECT_EQ(result.per_entity.size(), ids_.size());

  // After resolution, no record appears in two matched sets.
  std::map<RecordId, int> owners;
  for (const auto& [id, link] : result.per_entity) {
    for (RecordId rid : link.match.matched_records) ++owners[rid];
  }
  for (const auto& [rid, count] : owners) {
    EXPECT_EQ(count, 1) << "record " << rid << " owned by " << count;
  }
  // The assignment map agrees with the matched sets.
  for (const auto& [id, link] : result.per_entity) {
    for (RecordId rid : link.match.matched_records) {
      ASSERT_TRUE(result.assignment.count(rid) > 0);
      EXPECT_EQ(result.assignment.at(rid), id);
    }
  }
}

TEST_F(BatchLinkerTest, NonExclusiveKeepsAllClaims) {
  BatchLinkOptions options;
  options.exclusive_assignment = false;
  BatchLinker linker(maroon_.get(), options);
  const BatchLinkResult result = linker.LinkAll(dataset_, ids_);
  size_t multi_owned = 0;
  std::map<RecordId, int> owners;
  for (const auto& [id, link] : result.per_entity) {
    for (RecordId rid : link.match.matched_records) ++owners[rid];
  }
  for (const auto& [rid, count] : owners) multi_owned += count > 1;
  // With 3 entities per name, some records are claimed more than once.
  EXPECT_EQ(multi_owned, result.contested_records);
}

TEST_F(BatchLinkerTest, ResolutionImprovesPrecision) {
  BatchLinkOptions shared;
  shared.exclusive_assignment = false;
  const BatchLinkResult before =
      BatchLinker(maroon_.get(), shared).LinkAll(dataset_, ids_);
  const BatchLinkResult after =
      BatchLinker(maroon_.get()).LinkAll(dataset_, ids_);

  const auto mean_precision = [&](const BatchLinkResult& r) {
    MeanAccumulator acc;
    for (const auto& [id, link] : r.per_entity) {
      acc.Add(ComputePrecisionRecall(link.match.matched_records,
                                     dataset_.TrueMatchesOf(id))
                  .precision);
    }
    return acc.Mean();
  };
  EXPECT_GE(mean_precision(after), mean_precision(before));
  EXPECT_GT(after.contested_records, 0u);
}

TEST_F(BatchLinkerTest, RecordProfileFitPrefersTheRightEntity) {
  const EntityProfile david = testing::DavidBrownProfile();
  EntityProfile other("other", "David Brown");
  (void)other.sequence(testing::kTitle)
      .Append(Triple(2000, 2009, MakeValueSet({"Astronaut"})));

  TemporalRecord r(0, "David Brown", 2004, 0);
  r.SetValue(testing::kTitle, MakeValueSet({"Manager"}));
  SimilarityCalculator sim;
  EXPECT_GT(BatchLinker::RecordProfileFit(david, r, sim),
            BatchLinker::RecordProfileFit(other, r, sim));
  // Empty record scores 0.
  const TemporalRecord empty(1, "X", 2004, 0);
  EXPECT_DOUBLE_EQ(BatchLinker::RecordProfileFit(david, empty, sim), 0.0);
}

TEST_F(BatchLinkerTest, UnknownTargetsAreSkipped) {
  BatchLinker linker(maroon_.get());
  const BatchLinkResult result = linker.LinkAll(dataset_, {"nobody"});
  EXPECT_TRUE(result.per_entity.empty());
  EXPECT_TRUE(result.assignment.empty());
}

}  // namespace
}  // namespace maroon
