#include "matching/incremental_linker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

class IncrementalLinkerTest : public ::testing::Test {
 protected:
  IncrementalLinkerTest()
      : dataset_(testing::PaperRecords()),
        freshness_(testing::PaperFreshnessModel()),
        transition_(TransitionModel::Train(testing::CareerTrainingProfiles(),
                                           {kTitle})) {
    MaroonOptions options;
    options.matcher.theta = 0.01;
    options.matcher.single_valued_attributes = {kTitle, testing::kLocation};
    maroon_ = std::make_unique<Maroon>(&transition_, &freshness_,
                                       &similarity_,
                                       testing::PaperAttributes(), options);
  }

  Dataset dataset_;
  FreshnessModel freshness_;
  TransitionModel transition_;
  SimilarityCalculator similarity_;
  std::unique_ptr<Maroon> maroon_;
};

TEST_F(IncrementalLinkerTest, ProfileGrowsAsRecordsArrive) {
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile());
  EXPECT_EQ(linker.NumObserved(), 0u);
  // The profile before any flush is the clean history.
  EXPECT_TRUE(linker.current_profile().sequence(kTitle).ValuesAt(2011).empty());

  // Observe the early records (r1-r4) and flush.
  for (RecordId id = 0; id <= 3; ++id) {
    ASSERT_TRUE(linker.Observe(dataset_.record(id)).ok());
  }
  EXPECT_EQ(linker.NumPending(), 4u);
  (void)linker.Flush();
  EXPECT_EQ(linker.NumPending(), 0u);
  const size_t early_links = linker.linked_records().size();
  EXPECT_GT(early_links, 0u);
  EXPECT_TRUE(linker.current_profile().sequence(kTitle).ValuesAt(2011).empty());

  // The 2011+ records arrive; the Director promotion is now linked.
  for (RecordId id = 4; id <= 8; ++id) {
    ASSERT_TRUE(linker.Observe(dataset_.record(id)).ok());
  }
  const LinkResult result = linker.Flush();
  EXPECT_GT(linker.linked_records().size(), early_links);
  EXPECT_EQ(linker.current_profile().sequence(kTitle).ValuesAt(2011),
            MakeValueSet({"Director"}));
  // The decoy r6 (id 5) still does not link.
  EXPECT_FALSE(std::binary_search(result.match.matched_records.begin(),
                                  result.match.matched_records.end(),
                                  RecordId{5}));
}

TEST_F(IncrementalLinkerTest, MatchesBatchResult) {
  // Streaming all records then flushing equals one batch link.
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile());
  for (const TemporalRecord& r : dataset_.records()) {
    ASSERT_TRUE(linker.Observe(r).ok());
  }
  const LinkResult streamed = linker.Flush();

  std::vector<const TemporalRecord*> candidates;
  for (const TemporalRecord& r : dataset_.records()) candidates.push_back(&r);
  const LinkResult batch =
      maroon_->Link(testing::DavidBrownProfile(), candidates);

  EXPECT_EQ(streamed.match.matched_records, batch.match.matched_records);
  EXPECT_EQ(streamed.match.augmented_profile.ToString(),
            batch.match.augmented_profile.ToString());
}

TEST_F(IncrementalLinkerTest, FlushWithNoRecordsIsClean) {
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile());
  const LinkResult result = linker.Flush();
  EXPECT_TRUE(result.match.matched_records.empty());
  EXPECT_EQ(linker.current_profile().sequence(kTitle).ValuesAt(2005),
            MakeValueSet({"Manager"}));
}

TEST_F(IncrementalLinkerTest, OutOfOrderArrivalIsHandled) {
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile());
  // Newest records first.
  for (RecordId id = 9; id-- > 0;) {
    ASSERT_TRUE(linker.Observe(dataset_.record(id)).ok());
  }
  const LinkResult result = linker.Flush();
  EXPECT_FALSE(std::binary_search(result.match.matched_records.begin(),
                                  result.match.matched_records.end(),
                                  RecordId{5}));
  EXPECT_EQ(linker.current_profile().sequence(kTitle).ValuesAt(2011),
            MakeValueSet({"Director"}));
}

TEST_F(IncrementalLinkerTest, FullAdmissionBufferPushesBack) {
  IncrementalLinkerOptions options;
  options.max_pending = 2;
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile(),
                           options);
  ASSERT_TRUE(linker.Observe(dataset_.record(0)).ok());
  ASSERT_TRUE(linker.Observe(dataset_.record(1)).ok());
  const Status full = linker.Observe(dataset_.record(2));
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(linker.NumObserved(), 2u);
  // Flushing clears the buffer; the pushed-back record is accepted now.
  (void)linker.Flush();
  EXPECT_TRUE(linker.Observe(dataset_.record(2)).ok());
}

TEST_F(IncrementalLinkerTest, MemoryBoundShedsToQuarantine) {
  IncrementalLinkerOptions options;
  options.max_records = 3;
  IncrementalLinker linker(maroon_.get(), testing::DavidBrownProfile(),
                           options);
  for (RecordId id = 0; id <= 4; ++id) {
    ASSERT_TRUE(linker.Observe(dataset_.record(id)).ok())
        << "shedding degrades, it does not error";
  }
  EXPECT_EQ(linker.NumObserved(), 3u);
  EXPECT_EQ(linker.NumShed(), 2u);
  ASSERT_EQ(linker.quarantine().size(), 2u);
  EXPECT_EQ(linker.quarantine()[0].id(), dataset_.record(3).id());
  // The pool still links, just with less evidence.
  const LinkResult result = linker.Flush();
  EXPECT_FALSE(result.match.matched_records.empty());
}

}  // namespace
}  // namespace maroon
