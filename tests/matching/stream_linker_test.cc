#include "matching/stream_linker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "core/profile_snapshot.h"
#include "core/profile_wal.h"
#include "core/temporal_record.h"

namespace maroon {
namespace {

class StreamLinkerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    dir_ = ::testing::TempDir() + "/maroon_stream_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    options_.wal_path = dir_ + "/stream.wal";
    options_.snapshot_dir = dir_ + "/snapshots";
    options_.retry_initial_backoff_us = 0;  // keep tests fast
    std::filesystem::create_directories(options_.snapshot_dir);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  static TemporalRecord MakeRecord(RecordId id, const std::string& name,
                                   TimePoint t) {
    TemporalRecord record(id, name, t, 0);
    record.SetValue("Org", MakeValueSet({"org-" + std::to_string(id)}));
    return record;
  }

  std::string dir_;
  StreamLinkerOptions options_;
};

TEST_F(StreamLinkerTest, StreamsRecordsIntoTheStore) {
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok()) << linker.status();
  for (RecordId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(linker->Submit(MakeRecord(id, "p" + std::to_string(id % 3),
                                          1990 + static_cast<TimePoint>(id)))
                    .ok());
  }
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_EQ(linker->stats().applied, 10u);
  EXPECT_EQ(linker->store().size(), 3u);  // three distinct names
  EXPECT_EQ(linker->last_seq(), 10u);
  ASSERT_TRUE(linker->Close().ok());
}

TEST_F(StreamLinkerTest, DegenerateRecordsAreRejectedNotQueued) {
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  const Status rejected = linker->Submit(TemporalRecord(1, "ann", 1990, 0));
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(linker->stats().rejected, 1u);
  EXPECT_EQ(linker->queue_depth(), 0u);
}

TEST_F(StreamLinkerTest, FullQueuePushesBackAndDrainClears) {
  options_.max_queue = 4;
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  for (RecordId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(linker->Submit(MakeRecord(id, "ann", 1990)).ok());
  }
  const Status full = linker->Submit(MakeRecord(5, "ann", 1991));
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_TRUE(linker->Submit(MakeRecord(5, "ann", 1991)).ok());
  ASSERT_TRUE(linker->Close().ok());
  EXPECT_EQ(linker->stats().applied, 5u);
}

TEST_F(StreamLinkerTest, MemoryBoundShedsNewEntitiesButMergesExisting) {
  options_.max_store_entities = 2;
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(1, "ann", 1990)).ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(2, "bob", 1990)).ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(3, "carol", 1990)).ok());  // shed
  ASSERT_TRUE(linker->Submit(MakeRecord(4, "ann", 1995)).ok());    // merges
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_EQ(linker->store().size(), 2u);
  EXPECT_EQ(linker->stats().shed, 1u);
  EXPECT_EQ(linker->stats().applied, 3u);
  ASSERT_EQ(linker->quarantine().size(), 1u);
  EXPECT_EQ(linker->quarantine()[0].id(), 3u);
  // Shed records are not WAL-durable: the log holds 3 frames.
  ASSERT_TRUE(linker->Close().ok());
  auto replay = ReplayProfileWal(options_.wal_path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records.size(), 3u);
}

TEST_F(StreamLinkerTest, TransientWalFailuresAreRetried) {
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(1, "ann", 1990)).ok());
  // Two consecutive injected failures, then the third attempt succeeds.
  ASSERT_TRUE(failpoint::Arm("wal.append.write", "enospc@0:2").ok());
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_EQ(linker->stats().retries, 2u);
  EXPECT_EQ(linker->stats().applied, 1u);
  ASSERT_TRUE(linker->Close().ok());
}

TEST_F(StreamLinkerTest, ExhaustedRetriesSurfaceAndKeepTheRecordQueued) {
  options_.max_retries = 2;
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  ASSERT_TRUE(linker->Submit(MakeRecord(1, "ann", 1990)).ok());
  ASSERT_TRUE(failpoint::Arm("wal.append.write", "enospc@0:0").ok());
  const Status failed = linker->Drain();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(linker->queue_depth(), 1u) << "record must stay queued";
  // The disk recovers; a later Drain applies the record.
  failpoint::ClearAll();
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_EQ(linker->stats().applied, 1u);
  ASSERT_TRUE(linker->Close().ok());
}

TEST_F(StreamLinkerTest, SnapshotCadenceAndFinalSnapshot) {
  options_.snapshot_every = 4;
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  for (RecordId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(linker->Submit(MakeRecord(id, "ann", 1990)).ok());
  }
  ASSERT_TRUE(linker->Drain().ok());
  EXPECT_EQ(linker->stats().snapshots_written, 2u);  // after 4 and 8
  ASSERT_TRUE(linker->Close().ok());
  EXPECT_EQ(linker->stats().snapshots_written, 3u);  // final at 10
  auto snapshot = LoadNewestValidSnapshot(options_.snapshot_dir);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->last_seq, 10u);
}

TEST_F(StreamLinkerTest, SnapshotFailureIsGraceful) {
  options_.snapshot_every = 2;
  auto linker = StreamLinker::Open(options_);
  ASSERT_TRUE(linker.ok());
  ASSERT_TRUE(failpoint::Arm("snapshot.write", "enospc").ok());
  for (RecordId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(linker->Submit(MakeRecord(id, "ann", 1990)).ok());
  }
  ASSERT_TRUE(linker->Drain().ok()) << "snapshot loss must not stop the "
                                       "stream";
  EXPECT_EQ(linker->stats().snapshot_failures, 1u);
  EXPECT_GE(linker->stats().snapshots_written, 1u);  // boundary at 4 worked
  ASSERT_TRUE(linker->Close().ok());
}

TEST_F(StreamLinkerTest, RecoveryRebuildsTheStoreFromSnapshotPlusTail) {
  uint64_t live_hash = 0;
  {
    options_.snapshot_every = 3;
    auto linker = StreamLinker::Open(options_);
    ASSERT_TRUE(linker.ok());
    for (RecordId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(
          linker->Submit(MakeRecord(id, "p" + std::to_string(id % 2),
                                    1990 + static_cast<TimePoint>(id)))
              .ok());
    }
    ASSERT_TRUE(linker->Drain().ok());
    // Sync the WAL but skip Close: the final snapshot is *not* written, so
    // recovery must replay the tail past the snapshot at seq 6.
    ASSERT_TRUE(linker->Flush().ok());
    live_hash = HashProfileStore(linker->store());
  }
  auto recovered = StreamLinker::Open(options_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->stats().recovered, 2u);  // seqs 7, 8
  EXPECT_EQ(recovered->last_seq(), 8u);
  EXPECT_EQ(HashProfileStore(recovered->store()), live_hash);
}

TEST_F(StreamLinkerTest, ResumeSkipsRecordsAlreadyDurable) {
  uint64_t full_hash = 0;
  {
    // The uninterrupted run over all 6 records.
    StreamLinkerOptions reference = options_;
    reference.wal_path = dir_ + "/reference.wal";
    reference.snapshot_dir.clear();
    auto linker = StreamLinker::Open(reference);
    ASSERT_TRUE(linker.ok());
    for (RecordId id = 1; id <= 6; ++id) {
      ASSERT_TRUE(linker->Submit(MakeRecord(id, "ann", 1990)).ok());
    }
    ASSERT_TRUE(linker->Close().ok());
    full_hash = HashProfileStore(linker->store());
  }
  {
    // A run that persists only the first 4 records.
    auto linker = StreamLinker::Open(options_);
    ASSERT_TRUE(linker.ok());
    for (RecordId id = 1; id <= 4; ++id) {
      ASSERT_TRUE(linker->Submit(MakeRecord(id, "ann", 1990)).ok());
    }
    ASSERT_TRUE(linker->Close().ok());
  }
  // The driver resends the *whole* stream; the first 4 are skipped.
  auto resumed = StreamLinker::Open(options_);
  ASSERT_TRUE(resumed.ok());
  for (RecordId id = 1; id <= 6; ++id) {
    ASSERT_TRUE(resumed->Submit(MakeRecord(id, "ann", 1990)).ok());
  }
  ASSERT_TRUE(resumed->Close().ok());
  EXPECT_EQ(resumed->stats().resumed_skips, 4u);
  EXPECT_EQ(resumed->stats().applied, 2u);
  EXPECT_EQ(HashProfileStore(resumed->store()), full_hash);
}

TEST_F(StreamLinkerTest, MissingWalPathIsInvalid) {
  StreamLinkerOptions options;
  auto linker = StreamLinker::Open(options);
  ASSERT_FALSE(linker.ok());
  EXPECT_EQ(linker.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StreamLinkerTest, StreamCrashPointIsRegistered) {
  const auto points = failpoint::RegisteredPoints();
  bool found = false;
  for (const auto& [point, what] : points) {
    if (point == "stream.apply.before") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace maroon
