#include "matching/maroon.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kInterests;
using testing::kLocation;
using testing::kOrg;
using testing::kTitle;

class MaroonEndToEndTest : public ::testing::Test {
 protected:
  MaroonEndToEndTest()
      : dataset_(testing::PaperRecords()),
        freshness_(testing::PaperFreshnessModel()),
        transition_(TransitionModel::Train(testing::CareerTrainingProfiles(),
                                           {kTitle})) {
    for (const TemporalRecord& r : dataset_.records()) {
      records_.push_back(&r);
    }
  }

  MaroonOptions Options() const {
    MaroonOptions o;
    o.matcher.theta = 0.01;
    o.matcher.single_valued_attributes = {kTitle, kLocation};
    return o;
  }

  Dataset dataset_;
  FreshnessModel freshness_;
  TransitionModel transition_;
  SimilarityCalculator similarity_;
  std::vector<const TemporalRecord*> records_;
};

TEST_F(MaroonEndToEndTest, DiscriminatesPromotionFromImplausibleChange) {
  // The headline behaviour of Example 1: r5 (Director) is linked, r6
  // (IT Contractor) is not, even though both share the organization.
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), Options());
  const LinkResult result =
      maroon.Link(testing::DavidBrownProfile(), records_);

  const auto& matched = result.match.matched_records;
  EXPECT_TRUE(std::binary_search(matched.begin(), matched.end(), RecordId{4}))
      << "r5 (Director) should be linked";
  EXPECT_FALSE(std::binary_search(matched.begin(), matched.end(), RecordId{5}))
      << "r6 (IT Contractor) should be rejected";
}

TEST_F(MaroonEndToEndTest, AugmentsProfileLikeTableThree) {
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), Options());
  const LinkResult result =
      maroon.Link(testing::DavidBrownProfile(), records_);
  const EntityProfile& augmented = result.match.augmented_profile;

  // Table 3: Director at Quest Software from 2011.
  EXPECT_EQ(augmented.sequence(kTitle).ValuesAt(2011),
            MakeValueSet({"Director"}));
  EXPECT_EQ(augmented.sequence(kOrg).ValuesAt(2011),
            MakeValueSet({"Quest Software"}));
  // The submitted history is preserved.
  EXPECT_EQ(augmented.sequence(kTitle).ValuesAt(2005),
            MakeValueSet({"Manager"}));
  EXPECT_EQ(augmented.sequence(kOrg).ValuesAt(2000),
            MakeValueSet({"S3", "XJek"}));
  // Post-processing leaves canonical sequences.
  for (const auto& [attr, seq] : augmented.sequences()) {
    EXPECT_TRUE(seq.IsCanonical()) << attr;
  }
}

TEST_F(MaroonEndToEndTest, ReportsPhaseTimingsAndClusterCount) {
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), Options());
  const LinkResult result =
      maroon.Link(testing::DavidBrownProfile(), records_);
  EXPECT_EQ(result.num_clusters, 6u);
  EXPECT_GE(result.timings.phase1_seconds, 0.0);
  EXPECT_GE(result.timings.phase2_seconds, 0.0);
  EXPECT_NEAR(result.timings.total_seconds(),
              result.timings.phase1_seconds + result.timings.phase2_seconds,
              1e-12);
}

TEST_F(MaroonEndToEndTest, HighThetaLinksNothing) {
  MaroonOptions options = Options();
  options.matcher.theta = 1e9;
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), options);
  const LinkResult result =
      maroon.Link(testing::DavidBrownProfile(), records_);
  EXPECT_TRUE(result.match.matched_records.empty());
}

TEST_F(MaroonEndToEndTest, EmptyCandidatesIsClean) {
  Maroon maroon(&transition_, &freshness_, &similarity_,
                testing::PaperAttributes(), Options());
  const LinkResult result = maroon.Link(testing::DavidBrownProfile(), {});
  EXPECT_TRUE(result.match.matched_records.empty());
  EXPECT_EQ(result.num_clusters, 0u);
  // The augmented profile equals the input.
  EXPECT_EQ(result.match.augmented_profile.sequence(kTitle).ValuesAt(2005),
            MakeValueSet({"Manager"}));
}

TEST_F(MaroonEndToEndTest, PhaseTimingsAccumulate) {
  PhaseTimings total;
  PhaseTimings a;
  a.phase1_seconds = 1.0;
  a.phase2_seconds = 2.0;
  total += a;
  total += a;
  EXPECT_DOUBLE_EQ(total.phase1_seconds, 2.0);
  EXPECT_DOUBLE_EQ(total.phase2_seconds, 4.0);
  EXPECT_DOUBLE_EQ(total.total_seconds(), 6.0);
}

}  // namespace
}  // namespace maroon
