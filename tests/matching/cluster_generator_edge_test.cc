#include <gtest/gtest.h>

#include "matching/cluster_generator.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kLocation;
using testing::kOrg;
using testing::kTitle;

TemporalRecord MakeRecord(RecordId id, TimePoint t, SourceId source,
                          std::initializer_list<std::pair<Attribute, ValueSet>>
                              values) {
  TemporalRecord r(id, "X", t, source);
  for (const auto& [a, v] : values) r.SetValue(a, v);
  return r;
}

class ClusterGeneratorEdgeTest : public ::testing::Test {
 protected:
  std::vector<GeneratedCluster> Generate(
      const std::vector<TemporalRecord>& records, const FreshnessModel& model,
      ClusterGeneratorOptions options = {}) {
    std::vector<const TemporalRecord*> pointers;
    for (const auto& r : records) pointers.push_back(&r);
    ClusterGenerator generator(&similarity_, &model,
                               testing::PaperAttributes(), options);
    return generator.Generate(pointers);
  }

  SimilarityCalculator similarity_;
};

TEST_F(ClusterGeneratorEdgeTest, AllStaleSourcesStillCluster) {
  // A freshness model where source 0 is never fresh on any attribute but
  // has usable delay mass at eta = 0 and 2.
  FreshnessModel model;
  for (const Attribute& a : testing::PaperAttributes()) {
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 0);
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 2);
  }
  model.Finalize();

  std::vector<TemporalRecord> records;
  records.push_back(
      MakeRecord(0, 2000, 0, {{kTitle, MakeValueSet({"Engineer"})}}));
  records.push_back(
      MakeRecord(1, 2002, 0, {{kTitle, MakeValueSet({"Engineer"})}}));

  const auto clusters = Generate(records, model);
  // No fresh records, so r0 seeds a cluster; r1 (eta = 2 w.r.t. that
  // cluster, Delay = 0.5 > mu') joins it on Title.
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].cluster.size(), 2u);
  // The signature interval stays at the seeding record's instant.
  EXPECT_EQ(clusters[0].signature.interval, Interval(2000, 2000));
}

TEST_F(ClusterGeneratorEdgeTest, StaleRecordBeforeClusterStartSeedsNew) {
  // Source 0 is stale (mass at 0 and 2); source 2 is fresh.
  FreshnessModel model;
  for (const Attribute& a : testing::PaperAttributes()) {
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 0);
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 2);
    for (int i = 0; i < 20; ++i) model.AddObservation(2, a, 0);
  }
  model.Finalize();

  std::vector<TemporalRecord> records;
  // Fresh cluster at [2010, 2010].
  records.push_back(
      MakeRecord(0, 2010, 2, {{kTitle, MakeValueSet({"Engineer"})}}));
  // Identical values, but timestamped BEFORE the cluster starts: the
  // r.t >= c.tmin guard (Algorithm 2 line 11) forbids joining — a record
  // cannot describe a state that only begins after it was published.
  records.push_back(
      MakeRecord(1, 2005, 0, {{kTitle, MakeValueSet({"Engineer"})}}));
  const auto clusters = Generate(records, model);
  ASSERT_EQ(clusters.size(), 2u);
  for (const auto& gc : clusters) EXPECT_EQ(gc.cluster.size(), 1u);
}

TEST_F(ClusterGeneratorEdgeTest, StaleRecordJoinsWhenDelayMassAllows) {
  FreshnessModel model;
  for (const Attribute& a : testing::PaperAttributes()) {
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 0);
    for (int i = 0; i < 5; ++i) model.AddObservation(0, a, 5);
  }
  model.Finalize();

  std::vector<TemporalRecord> records;
  records.push_back(
      MakeRecord(0, 2005, 0, {{kTitle, MakeValueSet({"Engineer"})}}));
  // Published 5 years later; Delay(5) = 0.5 > mu' -> joins the 2005 state.
  records.push_back(
      MakeRecord(1, 2010, 0, {{kTitle, MakeValueSet({"Engineer"})}}));
  const auto clusters = Generate(records, model);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].cluster.size(), 2u);
  EXPECT_EQ(clusters[0].signature.interval, Interval(2005, 2005));
}

TEST_F(ClusterGeneratorEdgeTest, SingleRecordSingleCluster) {
  const FreshnessModel model = testing::PaperFreshnessModel();
  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2004, /*source=*/2,
                               {{kTitle, MakeValueSet({"Manager"})}}));
  const auto clusters = Generate(records, model);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].signature.ValuesOf(kTitle), MakeValueSet({"Manager"}));
  EXPECT_GT(clusters[0].signature.ConfidenceOf(kTitle), 0.0);
}

TEST_F(ClusterGeneratorEdgeTest, ReliabilityWeightsConfidence) {
  const FreshnessModel freshness = testing::PaperFreshnessModel();
  ReliabilityModel reliability;
  // Source 0 errs half the time on Title.
  for (int i = 0; i < 10; ++i) reliability.AddObservation(0, kTitle, i < 5);

  std::vector<TemporalRecord> records;
  records.push_back(MakeRecord(0, 2004, /*source=*/0,
                               {{kTitle, MakeValueSet({"Manager"})}}));
  std::vector<const TemporalRecord*> pointers{&records[0]};

  ClusterGenerator with(&similarity_, &freshness, testing::PaperAttributes(),
                        {});
  with.SetReliabilityModel(&reliability);
  const auto weighted = with.Generate(pointers);

  ClusterGenerator without(&similarity_, &freshness,
                           testing::PaperAttributes(), {});
  const auto unweighted = without.Generate(pointers);

  ASSERT_EQ(weighted.size(), 1u);
  ASSERT_EQ(unweighted.size(), 1u);
  EXPECT_LT(weighted[0].signature.ConfidenceOf(kTitle),
            unweighted[0].signature.ConfidenceOf(kTitle));
}

TEST_F(ClusterGeneratorEdgeTest, RecordsWithDisjointAttributesStaySeparate) {
  const FreshnessModel model = testing::PaperFreshnessModel();
  std::vector<TemporalRecord> records;
  records.push_back(
      MakeRecord(0, 2004, 2, {{kTitle, MakeValueSet({"Manager"})}}));
  records.push_back(
      MakeRecord(1, 2004, 2, {{kLocation, MakeValueSet({"Chicago"})}}));
  const auto clusters = Generate(records, model);
  EXPECT_EQ(clusters.size(), 2u);
}

}  // namespace
}  // namespace maroon
