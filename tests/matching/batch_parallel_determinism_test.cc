#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/dataset_io.h"
#include "core/validation.h"
#include "datagen/fault_injector.h"
#include "datagen/recruitment_generator.h"
#include "eval/experiment.h"
#include "matching/batch_linker.h"
#include "matching/maroon.h"

namespace maroon {
namespace {

/// ISSUE contract: BatchLinker::LinkAll at 1 thread and at 8 threads must
/// produce identical results on a realistic, fault-injected corpus — the
/// parallel path may not change a single link assignment. The corpus goes
/// through the full dirty-data pipeline (generate -> serialize -> corrupt ->
/// quarantine-load) so the equality claim covers the deployment shape, not a
/// sanitized fixture.
class BatchParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/maroon_par_det_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Generates a noisy recruitment corpus, corrupts its serialization with
  /// every structural fault class, and loads it back under kQuarantine.
  /// Fills `quarantined` with the report's total drop count.
  Dataset CorruptedCorpus(size_t* quarantined) {
    RecruitmentOptions options;
    options.seed = 37;
    options.num_entities = 80;
    options.num_names = 25;
    options.social_source_error_rate = 0.2;
    options.social_source_name_typo_rate = 0.1;
    const Dataset clean = GenerateRecruitmentDataset(options);
    EXPECT_TRUE(WriteDatasetCsv(clean, dir_).ok());

    FaultInjectorOptions faults;
    faults.seed = 41;
    faults.drop_cell_rate = 0.03;
    faults.invert_interval_rate = 0.03;
    faults.duplicate_record_rate = 0.03;
    faults.unknown_source_rate = 0.03;
    faults.shuffle_timestamp_rate = 0.03;
    faults.mangle_separator_rate = 0.03;
    FaultInjector injector(faults);
    auto fault_report = injector.CorruptDirectory(dir_);
    EXPECT_TRUE(fault_report.ok()) << fault_report.status();
    EXPECT_GT(fault_report->total(), 0u);

    CsvLoadOptions lenient;
    lenient.validation.policy = RepairPolicy::kQuarantine;
    lenient.infer_plausible_window = true;
    ValidationReport report;
    auto loaded = ReadDatasetCsv(dir_, lenient, &report);
    EXPECT_TRUE(loaded.ok()) << loaded.status();
    *quarantined = report.TotalQuarantined();
    return std::move(*loaded);
  }

  std::string dir_;
};

TEST_F(BatchParallelDeterminismTest, OneAndEightThreadsLinkIdentically) {
  size_t quarantined = 0;
  const Dataset dataset = CorruptedCorpus(&quarantined);
  EXPECT_GT(quarantined, 0u) << "fault injection never fired";

  Experiment experiment(&dataset, ExperimentOptions{});
  experiment.Prepare();
  MaroonOptions maroon_options;
  maroon_options.matcher.single_valued_attributes = dataset.attributes();
  const Maroon maroon(&experiment.transition_model(),
                      &experiment.freshness_model(),
                      &experiment.similarity(), dataset.attributes(),
                      maroon_options);

  std::vector<EntityId> targets;
  for (const auto& [id, target] : dataset.targets()) targets.push_back(id);
  ASSERT_GT(targets.size(), 10u);

  BatchLinkOptions serial_options;
  serial_options.threads = 1;
  const BatchLinkResult serial =
      BatchLinker(&maroon, serial_options).LinkAll(dataset, targets);

  BatchLinkOptions parallel_options;
  parallel_options.threads = 8;
  const BatchLinkResult parallel =
      BatchLinker(&maroon, parallel_options).LinkAll(dataset, targets);

  // The record -> entity assignment is the batch's externally visible
  // verdict; it must not depend on thread interleaving.
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.contested_records, parallel.contested_records);
  EXPECT_EQ(serial.skipped_entities, parallel.skipped_entities);
  EXPECT_EQ(serial.skipped_candidates, parallel.skipped_candidates);

  // Per-entity detail: same entities linked, same records matched, same
  // cluster structure out of Phase I.
  ASSERT_EQ(serial.per_entity.size(), parallel.per_entity.size());
  for (const auto& [id, serial_link] : serial.per_entity) {
    const auto it = parallel.per_entity.find(id);
    ASSERT_NE(it, parallel.per_entity.end()) << "entity " << id;
    EXPECT_EQ(serial_link.match.matched_records,
              it->second.match.matched_records)
        << "entity " << id;
    EXPECT_EQ(serial_link.num_clusters, it->second.num_clusters)
        << "entity " << id;
    EXPECT_EQ(serial_link.skipped_candidates, it->second.skipped_candidates)
        << "entity " << id;
  }
}

TEST_F(BatchParallelDeterminismTest, QuarantineLoadIsRepeatable) {
  // Two independent passes through generate -> corrupt -> quarantine-load
  // must agree on the quarantine count — the parallel-equality test above
  // depends on the corpus itself being reproducible.
  size_t first = 0;
  const Dataset a = CorruptedCorpus(&first);
  std::filesystem::remove_all(dir_);
  std::filesystem::create_directories(dir_);
  size_t second = 0;
  const Dataset b = CorruptedCorpus(&second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(a.NumRecords(), b.NumRecords());
}

}  // namespace
}  // namespace maroon
