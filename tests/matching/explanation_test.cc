#include "matching/explanation.h"

#include <gtest/gtest.h>

#include "matching/profile_matcher.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kOrg;
using testing::kTitle;

GeneratedCluster DirectorCluster() {
  GeneratedCluster gc;
  gc.signature.interval = Interval(2011, 2011);
  gc.signature.values[kTitle] = MakeValueSet({"Director"});
  gc.signature.confidence[kTitle] = 1.5;
  gc.signature.values[kOrg] = MakeValueSet({"Quest Software"});
  gc.signature.confidence[kOrg] = 1.0;
  return gc;
}

TEST(ExplanationTest, DecompositionSumsToMatchScore) {
  const TransitionModel model = TransitionModel::Train(
      testing::CareerTrainingProfiles(), testing::PaperAttributes());
  const EntityProfile profile = testing::DavidBrownProfile();
  const GeneratedCluster cluster = DirectorCluster();

  const MatchExplanation explanation =
      ExplainMatch(model, testing::PaperAttributes(), profile, cluster);
  ProfileMatcher matcher(&model, testing::PaperAttributes(), {});
  EXPECT_NEAR(explanation.score, matcher.MatchScore(profile, cluster), 1e-12);

  double sum = 0.0;
  for (const auto& c : explanation.contributions) sum += c.contribution;
  EXPECT_NEAR(sum, explanation.score, 1e-12);
  // One contribution per schema attribute.
  EXPECT_EQ(explanation.contributions.size(),
            testing::PaperAttributes().size());
}

TEST(ExplanationTest, TitleDominatesForTheDirectorCluster) {
  const TransitionModel model = TransitionModel::Train(
      testing::CareerTrainingProfiles(), testing::PaperAttributes());
  const MatchExplanation explanation =
      ExplainMatch(model, testing::PaperAttributes(),
                   testing::DavidBrownProfile(), DirectorCluster());
  // Contributions are sorted descending; Title (trained attribute with a
  // plausible Manager -> Director move) comes first.
  ASSERT_FALSE(explanation.contributions.empty());
  EXPECT_EQ(explanation.contributions[0].attribute, kTitle);
  EXPECT_GT(explanation.contributions[0].contribution, 0.0);
  EXPECT_GT(explanation.contributions[0].transit_probability, 0.0);
}

TEST(ExplanationTest, ToStringListsAttributes) {
  const TransitionModel model = TransitionModel::Train(
      testing::CareerTrainingProfiles(), testing::PaperAttributes());
  const MatchExplanation explanation =
      ExplainMatch(model, testing::PaperAttributes(),
                   testing::DavidBrownProfile(), DirectorCluster());
  const std::string text = explanation.ToString();
  EXPECT_NE(text.find("match score"), std::string::npos);
  EXPECT_NE(text.find(kTitle), std::string::npos);
  EXPECT_NE(text.find("Director"), std::string::npos);
}

TEST(ExplanationTest, EmptySchemaGivesZero) {
  const TransitionModel model;
  const MatchExplanation explanation = ExplainMatch(
      model, {}, testing::DavidBrownProfile(), DirectorCluster());
  EXPECT_DOUBLE_EQ(explanation.score, 0.0);
  EXPECT_TRUE(explanation.contributions.empty());
}

}  // namespace
}  // namespace maroon
