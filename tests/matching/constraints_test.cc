#include "matching/constraints.h"

#include <gtest/gtest.h>

#include <memory>

#include "matching/profile_matcher.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

TEST(MaxSimultaneousValuesTest, DetectsOvercrowdedInstants) {
  MaxSimultaneousValuesConstraint single(kTitle, 1);
  EntityProfile profile = testing::DavidBrownProfile();
  // Inserting a second Title over an occupied period violates.
  EXPECT_TRUE(single.WouldViolate(profile, kTitle,
                                  MakeValueSet({"Consultant"}),
                                  Interval(2005, 2005)));
  // Inserting over a free period is fine.
  EXPECT_FALSE(single.WouldViolate(profile, kTitle,
                                   MakeValueSet({"Director"}),
                                   Interval(2011, 2011)));
  // Other attributes are ignored.
  EXPECT_FALSE(single.WouldViolate(profile, "Organization",
                                   MakeValueSet({"X"}), Interval(2005, 2005)));
  EXPECT_FALSE(single.Violates(profile));
}

TEST(MaxSimultaneousValuesTest, AllowsUpToLimit) {
  MaxSimultaneousValuesConstraint two("Organization", 2);
  const EntityProfile profile = testing::DavidBrownProfile();
  // David already holds {S3, XJek} in 2000; a third org violates at k=2.
  EXPECT_TRUE(two.WouldViolate(profile, "Organization",
                               MakeValueSet({"Aelita"}), Interval(2000, 2000)));
  // The existing profile itself is fine at the limit.
  EXPECT_FALSE(two.Violates(profile));
  MaxSimultaneousValuesConstraint one("Organization", 1);
  EXPECT_TRUE(one.Violates(profile));
}

TEST(ImmutableAttributeTest, SecondDistinctValueViolates) {
  ImmutableAttributeConstraint immutable("Birthplace");
  EntityProfile profile("e", "E");
  EXPECT_FALSE(immutable.WouldViolate(profile, "Birthplace",
                                      MakeValueSet({"Chicago"}),
                                      Interval(2000, 2000)));
  (void)profile.sequence("Birthplace")
      .Append(Triple(1980, 1980, MakeValueSet({"Chicago"})));
  EXPECT_FALSE(immutable.WouldViolate(profile, "Birthplace",
                                      MakeValueSet({"Chicago"}),
                                      Interval(2000, 2000)));
  EXPECT_TRUE(immutable.WouldViolate(profile, "Birthplace",
                                     MakeValueSet({"Boston"}),
                                     Interval(2000, 2000)));
  EXPECT_FALSE(immutable.Violates(profile));
}

TEST(ValueOrderTest, LaterValueCannotPrecedeEarlier) {
  ValueOrderConstraint order(kTitle, "Engineer", "CEO");
  EntityProfile profile("e", "E");
  (void)profile.sequence(kTitle).Append(
      Triple(2000, 2004, MakeValueSet({"Engineer"})));
  // CEO after Engineer: fine.
  EXPECT_FALSE(order.WouldViolate(profile, kTitle, MakeValueSet({"CEO"}),
                                  Interval(2010, 2010)));
  // CEO before the last Engineer year: violates.
  EXPECT_TRUE(order.WouldViolate(profile, kTitle, MakeValueSet({"CEO"}),
                                 Interval(1999, 1999)));
  // Engineer again after CEO started: violates.
  EntityProfile ceo_profile("e2", "E2");
  (void)ceo_profile.sequence(kTitle).Append(
      Triple(2005, 2010, MakeValueSet({"CEO"})));
  EXPECT_TRUE(order.WouldViolate(ceo_profile, kTitle,
                                 MakeValueSet({"Engineer"}),
                                 Interval(2012, 2012)));
  EXPECT_FALSE(order.Violates(profile));
}

TEST(ValueOrderTest, ViolatesOnExistingProfile) {
  ValueOrderConstraint order(kTitle, "Engineer", "CEO");
  EntityProfile profile("e", "E");
  (void)profile.sequence(kTitle).Append(
      Triple(2000, 2002, MakeValueSet({"CEO"})));
  (void)profile.sequence(kTitle).Append(
      Triple(2005, 2006, MakeValueSet({"Engineer"})));
  EXPECT_TRUE(order.Violates(profile));
}

TEST(ConstraintSetTest, CollectsViolationNames) {
  ConstraintSet set;
  set.Add(std::make_unique<MaxSimultaneousValuesConstraint>(kTitle, 1));
  set.Add(std::make_unique<ValueOrderConstraint>(kTitle, "Engineer", "CEO"));
  EXPECT_EQ(set.size(), 2u);

  const EntityProfile profile = testing::DavidBrownProfile();
  const auto violations = set.ViolationsOfInsert(
      profile, kTitle, MakeValueSet({"Consultant"}), Interval(2005, 2005));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("max_simultaneous"), std::string::npos);
  EXPECT_TRUE(set.ViolationsOf(profile).empty());
}

TEST(ConstraintSetTest, MatcherRejectsInfeasibleClusters) {
  // A cluster with a rule-violating Title never links even when its
  // transition score is the best available.
  const TransitionModel model = TransitionModel::Train(
      testing::CareerTrainingProfiles(), {kTitle});
  ConstraintSet constraints;
  // Declare: nobody becomes Director again... forbid Director after 2010 via
  // an order rule instead: Director must come before President — and the
  // cluster tries to insert Director after an existing President spell.
  constraints.Add(std::make_unique<ValueOrderConstraint>(kTitle, "Director",
                                                         "President"));

  EntityProfile profile("e", "E");
  (void)profile.sequence(kTitle).Append(
      Triple(2000, 2005, MakeValueSet({"Manager"})));
  (void)profile.sequence(kTitle).Append(
      Triple(2006, 2009, MakeValueSet({"President"})));

  GeneratedCluster cluster;
  cluster.signature.interval = Interval(2012, 2012);
  cluster.signature.values[kTitle] = MakeValueSet({"Director"});
  cluster.signature.confidence[kTitle] = 5.0;
  TemporalRecord r(1, "E", 2012, 0);
  r.SetValue(kTitle, MakeValueSet({"Director"}));
  cluster.cluster.Add(r);

  ProfileMatcherOptions options;
  options.theta = 0.0001;
  options.constraints = &constraints;
  ProfileMatcher matcher(&model, {kTitle}, options);
  const MatchResult result = matcher.MatchAndAugment(profile, {cluster});
  EXPECT_TRUE(result.matched_records.empty());
  EXPECT_EQ(result.pruned_clusters, (std::vector<size_t>{0}));

  // Without the constraint the same cluster links.
  options.constraints = nullptr;
  ProfileMatcher unconstrained(&model, {kTitle}, options);
  const MatchResult linked = unconstrained.MatchAndAugment(profile, {cluster});
  EXPECT_EQ(linked.matched_records.size(), 1u);
}

}  // namespace
}  // namespace maroon
