#include "matching/cluster_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kInterests;
using testing::kLocation;
using testing::kOrg;
using testing::kTitle;

class ClusterGeneratorExampleTest : public ::testing::Test {
 protected:
  ClusterGeneratorExampleTest()
      : dataset_(testing::PaperRecords()),
        freshness_(testing::PaperFreshnessModel()) {
    for (const TemporalRecord& r : dataset_.records()) {
      records_.push_back(&r);
    }
  }

  std::vector<GeneratedCluster> Generate(ClusterGeneratorOptions options = {}) {
    ClusterGenerator generator(&similarity_, &freshness_,
                               testing::PaperAttributes(), options);
    return generator.Generate(records_);
  }

  /// Index of the cluster containing record `id` on any attribute.
  static std::vector<size_t> ClustersContaining(
      const std::vector<GeneratedCluster>& clusters, RecordId id) {
    std::vector<size_t> out;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].cluster.Contains(id)) out.push_back(i);
    }
    return out;
  }

  Dataset dataset_;
  FreshnessModel freshness_;
  SimilarityCalculator similarity_;
  std::vector<const TemporalRecord*> records_;
};

TEST_F(ClusterGeneratorExampleTest, ReproducesExampleSevenClusters) {
  // Record ids: r1..r9 -> 0..8.
  const auto clusters = Generate();
  ASSERT_EQ(clusters.size(), 6u);

  // c1 = {r1, r2, r3, r7} (Table 5).
  const auto& c1 = clusters[0];
  std::vector<RecordId> c1_members = c1.cluster.records();
  std::sort(c1_members.begin(), c1_members.end());
  EXPECT_EQ(c1_members, (std::vector<RecordId>{0, 1, 2, 6}));
  EXPECT_EQ(c1.signature.interval, Interval(2001, 2002));
  EXPECT_EQ(c1.signature.ValuesOf(kOrg), MakeValueSet({"S3", "XJek"}));
  EXPECT_EQ(c1.signature.ValuesOf(kTitle), MakeValueSet({"Engineer"}));
  // r7 joined c1 on Title only, so its fresh Location must not leak into c1.
  EXPECT_TRUE(c1.signature.ValuesOf(kLocation).empty());

  // c2 = {r4}, c3 = {r5}, c4 = {r6}, c5 = {r8, r9}.
  EXPECT_EQ(clusters[1].cluster.records(), (std::vector<RecordId>{3}));
  EXPECT_EQ(clusters[2].cluster.records(), (std::vector<RecordId>{4}));
  EXPECT_EQ(clusters[2].signature.ValuesOf(kTitle),
            MakeValueSet({"Director"}));
  EXPECT_EQ(clusters[3].cluster.records(), (std::vector<RecordId>{5}));
  EXPECT_EQ(clusters[3].signature.ValuesOf(kTitle),
            MakeValueSet({"IT Contractor"}));
  std::vector<RecordId> c5_members = clusters[4].cluster.records();
  std::sort(c5_members.begin(), c5_members.end());
  EXPECT_EQ(c5_members, (std::vector<RecordId>{7, 8}));

  // c6 = {r7}'s fresh attributes (Location, Interests) at 2012.
  const auto& c6 = clusters[5];
  EXPECT_EQ(c6.cluster.records(), (std::vector<RecordId>{6}));
  EXPECT_EQ(c6.signature.interval, Interval(2012, 2012));
  EXPECT_EQ(c6.signature.ValuesOf(kLocation), MakeValueSet({"Chicago"}));
  EXPECT_EQ(c6.signature.ValuesOf(kInterests),
            MakeValueSet({"Politics", "Sports"}));
  EXPECT_TRUE(c6.signature.ValuesOf(kTitle).empty());
}

TEST_F(ClusterGeneratorExampleTest, StaleRecordMayLandInMultipleClusters) {
  const auto clusters = Generate();
  // r7 (id 6): Title into c1, Location+Interests into c6.
  EXPECT_EQ(ClustersContaining(clusters, 6),
            (std::vector<size_t>{0, 5}));
  // r3 (id 2): fully absorbed by c1, no new cluster.
  EXPECT_EQ(ClustersContaining(clusters, 2), (std::vector<size_t>{0}));
}

TEST_F(ClusterGeneratorExampleTest, ConfidenceRewardsMultipleFreshSources) {
  const auto clusters = Generate();
  // c1's Title is supported by Google+ (fresh, ~0.95 each) and Facebook
  // (delayed, ~0.3/0.4): conf = 0.95 + (0.3 + 0.4)/2 = 1.3.
  EXPECT_NEAR(clusters[0].signature.ConfidenceOf(kTitle), 1.3, 1e-9);
  EXPECT_NEAR(clusters[0].signature.ConfidenceOf(kOrg), 1.3, 1e-9);
  // c3 = {r5} single fresh source: conf = 0.95.
  EXPECT_NEAR(clusters[2].signature.ConfidenceOf(kTitle), 0.95, 1e-9);
  // c5 = {r8 (Twitter), r9 (Google+)}: two fresh sources on Title.
  EXPECT_NEAR(clusters[4].signature.ConfidenceOf(kTitle), 1.9, 1e-9);
}

TEST_F(ClusterGeneratorExampleTest, IgnoreFreshnessDegeneratesToPartition) {
  ClusterGeneratorOptions options;
  options.use_source_freshness = false;
  const auto clusters = Generate(options);
  // Every record is treated as fresh; the stale r3/r7 now cluster by plain
  // similarity. r3 matches c1's state outright, and r7's interval stretches
  // the cluster it lands in (the exact failure mode Phase I avoids).
  for (const auto& gc : clusters) {
    for (const Attribute& a : testing::PaperAttributes()) {
      if (!gc.signature.ValuesOf(a).empty()) {
        // Confidence counts sources (delay probability 1 each).
        EXPECT_GE(gc.signature.ConfidenceOf(a), 1.0);
      }
    }
  }
}

TEST_F(ClusterGeneratorExampleTest, EmptyInputYieldsNoClusters) {
  ClusterGenerator generator(&similarity_, &freshness_,
                             testing::PaperAttributes(), {});
  EXPECT_TRUE(generator.Generate({}).empty());
}

TEST_F(ClusterGeneratorExampleTest, HigherMuPrimeBlocksStalePlacement) {
  ClusterGeneratorOptions options;
  options.mu_prime = 0.99;  // no delay distribution exceeds this
  const auto clusters = Generate(options);
  // r3 and r7 cannot join any cluster; each seeds its own.
  const auto r3_clusters = ClustersContaining(clusters, 2);
  ASSERT_EQ(r3_clusters.size(), 1u);
  EXPECT_EQ(clusters[r3_clusters[0]].cluster.size(), 1u);
}

}  // namespace
}  // namespace maroon
