#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/recruitment_generator.h"
#include "freshness/freshness_model.h"
#include "matching/batch_linker.h"

namespace maroon {
namespace {

/// Invariants of exclusive batch linking over random corpora.
class BatchLinkerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchLinkerProperty, ExclusivityAndConsistencyHold) {
  RecruitmentOptions data_options;
  data_options.seed = GetParam();
  data_options.num_entities = 24;
  data_options.num_names = 8;
  const Dataset dataset = GenerateRecruitmentDataset(data_options);

  ProfileSet profiles;
  std::vector<EntityId> ids;
  for (const auto& [id, target] : dataset.targets()) {
    profiles.push_back(target.ground_truth);
    ids.push_back(id);
  }
  const TransitionModel transition =
      TransitionModel::Train(profiles, dataset.attributes());
  const FreshnessModel freshness = FreshnessModel::Train(dataset, ids);
  SimilarityCalculator similarity;
  MaroonOptions options;
  options.matcher.single_valued_attributes = dataset.attributes();
  Maroon maroon(&transition, &freshness, &similarity, dataset.attributes(),
                options);

  BatchLinker linker(&maroon);
  const BatchLinkResult result = linker.LinkAll(dataset, ids);

  // 1. Every assigned record is owned by exactly one entity, and ownership
  //    agrees with that entity's matched set.
  std::map<RecordId, EntityId> owners;
  for (const auto& [id, link] : result.per_entity) {
    for (RecordId rid : link.match.matched_records) {
      auto [it, inserted] = owners.emplace(rid, id);
      EXPECT_TRUE(inserted) << "record " << rid << " owned twice (seed "
                            << GetParam() << ")";
    }
  }
  EXPECT_EQ(owners.size(), result.assignment.size());
  for (const auto& [rid, id] : owners) {
    ASSERT_TRUE(result.assignment.count(rid) > 0);
    EXPECT_EQ(result.assignment.at(rid), id);
  }

  // 2. Assignments only go to entities whose candidate pool contains the
  //    record (same-name blocking respected).
  for (const auto& [rid, id] : result.assignment) {
    const auto candidates = dataset.CandidatesFor(id);
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), rid) !=
                candidates.end())
        << "record " << rid << " assigned outside its block (seed "
        << GetParam() << ")";
  }

  // 3. Exclusive resolution never *increases* an entity's matched set
  //    relative to the non-exclusive run.
  BatchLinkOptions shared;
  shared.exclusive_assignment = false;
  const BatchLinkResult raw =
      BatchLinker(&maroon, shared).LinkAll(dataset, ids);
  for (const auto& [id, link] : result.per_entity) {
    const auto& before = raw.per_entity.at(id).match.matched_records;
    const std::set<RecordId> before_set(before.begin(), before.end());
    for (RecordId rid : link.match.matched_records) {
      EXPECT_TRUE(before_set.count(rid) > 0)
          << "resolution invented a link (seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BatchLinkerProperty,
                         ::testing::Range<uint64_t>(300, 308));

}  // namespace
}  // namespace maroon
