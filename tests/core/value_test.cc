#include "core/value.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(MakeValueSetTest, SortsAndDeduplicates) {
  EXPECT_EQ(MakeValueSet({"b", "a", "b", "c", "a"}),
            (ValueSet{"a", "b", "c"}));
}

TEST(MakeValueSetTest, EmptyStaysEmpty) {
  EXPECT_TRUE(MakeValueSet(std::vector<Value>{}).empty());
}

TEST(MakeValueSetTest, SingleElement) {
  EXPECT_EQ(MakeValueSet({"only"}), (ValueSet{"only"}));
}

TEST(ValueSetContainsTest, FindsPresentValues) {
  const ValueSet set = MakeValueSet({"S3", "XJek"});
  EXPECT_TRUE(ValueSetContains(set, "S3"));
  EXPECT_TRUE(ValueSetContains(set, "XJek"));
  EXPECT_FALSE(ValueSetContains(set, "Aelita"));
  EXPECT_FALSE(ValueSetContains({}, "anything"));
}

TEST(ValueSetUnionTest, MergesCanonically) {
  EXPECT_EQ(ValueSetUnion(MakeValueSet({"a", "c"}), MakeValueSet({"b", "c"})),
            (ValueSet{"a", "b", "c"}));
  EXPECT_EQ(ValueSetUnion({}, MakeValueSet({"x"})), (ValueSet{"x"}));
  EXPECT_TRUE(ValueSetUnion({}, {}).empty());
}

TEST(ValueSetIntersectionTest, KeepsCommonOnly) {
  EXPECT_EQ(ValueSetIntersection(MakeValueSet({"a", "b", "c"}),
                                 MakeValueSet({"b", "c", "d"})),
            (ValueSet{"b", "c"}));
  EXPECT_TRUE(
      ValueSetIntersection(MakeValueSet({"a"}), MakeValueSet({"b"})).empty());
}

TEST(ValueSetToStringTest, Renders) {
  EXPECT_EQ(ValueSetToString(MakeValueSet({"S3", "XJek"})), "{S3, XJek}");
  EXPECT_EQ(ValueSetToString({}), "{}");
}

}  // namespace
}  // namespace maroon
