#include <gtest/gtest.h>

#include <filesystem>

#include "core/dataset_io.h"
#include "datagen/dblp_generator.h"
#include "datagen/recruitment_generator.h"

namespace maroon {
namespace {

/// Property: any generated dataset round-trips through the CSV files
/// bit-for-bit at the record/label/profile level.
class DatasetIoRoundTripProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs parameterized cases concurrently.
    dir_ = ::testing::TempDir() + "/maroon_io_prop_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(GetParam());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void ExpectRoundTrip(const Dataset& original) {
    ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());
    auto loaded = ReadDatasetCsv(dir_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_EQ(loaded->NumRecords(), original.NumRecords());
    EXPECT_EQ(loaded->attributes(), original.attributes());
    for (RecordId id = 0; id < original.NumRecords(); ++id) {
      ASSERT_EQ(loaded->record(id).ToString(), original.record(id).ToString())
          << "record " << id << " seed " << GetParam();
      EXPECT_EQ(loaded->LabelOf(id), original.LabelOf(id));
    }
    ASSERT_EQ(loaded->targets().size(), original.targets().size());
    for (const auto& [id, target] : original.targets()) {
      auto lt = loaded->target(id);
      ASSERT_TRUE(lt.ok()) << id;
      EXPECT_EQ((*lt)->clean_profile.ToString(),
                target.clean_profile.ToString());
      EXPECT_EQ((*lt)->ground_truth.ToString(),
                target.ground_truth.ToString());
    }
  }

  std::string dir_;
};

TEST_P(DatasetIoRoundTripProperty, RecruitmentRoundTrips) {
  RecruitmentOptions options;
  options.seed = GetParam();
  options.num_entities = 15;
  options.num_names = 6;
  options.social_source_error_rate = GetParam() % 2 == 0 ? 0.2 : 0.0;
  options.social_source_name_typo_rate = GetParam() % 3 == 0 ? 0.3 : 0.0;
  ExpectRoundTrip(GenerateRecruitmentDataset(options));
}

TEST_P(DatasetIoRoundTripProperty, DblpRoundTrips) {
  DblpOptions options;
  options.seed = GetParam();
  options.num_entities = 12;
  options.num_names = 4;
  ExpectRoundTrip(GenerateDblpCorpus(options).dataset);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DatasetIoRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace maroon
