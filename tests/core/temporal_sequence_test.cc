#include "core/temporal_sequence.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TemporalSequence DavidTitles() {
  // Example 3's Φ_David[Title].
  TemporalSequence seq;
  EXPECT_TRUE(seq.Append(Triple(2000, 2002, MakeValueSet({"Engineer"}))).ok());
  EXPECT_TRUE(seq.Append(Triple(2003, 2009, MakeValueSet({"Manager"}))).ok());
  return seq;
}

TemporalSequence DavidOrgs() {
  // Example 3's Φ_David[Organization].
  TemporalSequence seq;
  EXPECT_TRUE(
      seq.Append(Triple(2000, 2001, MakeValueSet({"S3", "XJek"}))).ok());
  EXPECT_TRUE(seq.Append(Triple(2002, 2002, MakeValueSet({"XJek"}))).ok());
  EXPECT_TRUE(seq.Append(Triple(2003, 2005, MakeValueSet({"Aelita"}))).ok());
  EXPECT_TRUE(
      seq.Append(Triple(2006, 2009, MakeValueSet({"Quest Software"}))).ok());
  return seq;
}

TEST(IntervalTest, Basics) {
  Interval iv(2000, 2004);
  EXPECT_EQ(iv.Length(), 5);
  EXPECT_TRUE(iv.Contains(2000));
  EXPECT_TRUE(iv.Contains(2004));
  EXPECT_FALSE(iv.Contains(2005));
  EXPECT_TRUE(iv.IsValid());
  EXPECT_FALSE(Interval(5, 4).IsValid());
  EXPECT_EQ(Interval(5, 4).Length(), 0);
}

TEST(IntervalTest, OverlapAndIntersect) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 4).Overlaps(Interval(5, 9)));
  EXPECT_EQ(Interval(1, 5).Intersect(Interval(3, 9)), Interval(3, 5));
}

TEST(TripleTest, ToString) {
  EXPECT_EQ(Triple(2000, 2001, MakeValueSet({"S3", "XJek"})).ToString(),
            "<2000, 2001, {S3, XJek}>");
}

TEST(TemporalSequenceTest, AppendEnforcesDefinitionOne) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Append(Triple(2000, 2002, MakeValueSet({"a"}))).ok());
  // Overlapping start (b' <= e) is rejected.
  EXPECT_FALSE(seq.Append(Triple(2002, 2005, MakeValueSet({"b"}))).ok());
  // Adjacent is fine (e < b'), but an identical adjacent value set is
  // rejected (it should have been one triple).
  EXPECT_FALSE(seq.Append(Triple(2003, 2005, MakeValueSet({"a"}))).ok());
  EXPECT_TRUE(seq.Append(Triple(2003, 2005, MakeValueSet({"b"}))).ok());
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_TRUE(seq.IsCanonical());
}

TEST(TemporalSequenceTest, ValuesMayRecurAfterGap) {
  // Recurrence across a gap is legal (co-authors, locations, ... change
  // back and forth — the behaviour the mutation model captures).
  TemporalSequence seq;
  ASSERT_TRUE(seq.Append(Triple(2000, 2001, MakeValueSet({"a"}))).ok());
  EXPECT_TRUE(seq.Append(Triple(2005, 2006, MakeValueSet({"a"}))).ok());
  EXPECT_TRUE(seq.IsCanonical());
  EXPECT_EQ(seq.IntervalsOf("a").size(), 2u);
}

TEST(TemporalSequenceTest, AppendRejectsMalformedTriples) {
  TemporalSequence seq;
  EXPECT_FALSE(seq.Append(Triple(2005, 2001, MakeValueSet({"a"}))).ok());
  EXPECT_FALSE(seq.Append(Triple(2000, 2001, ValueSet{})).ok());
  // Non-canonical value set (unsorted / duplicated) is rejected.
  EXPECT_FALSE(seq.Append(Triple(2000, 2001, ValueSet{"b", "a"})).ok());
  EXPECT_FALSE(seq.Append(Triple(2000, 2001, ValueSet{"a", "a"})).ok());
  EXPECT_TRUE(seq.empty());
}

TEST(TemporalSequenceTest, FromTriplesValidates) {
  auto ok = TemporalSequence::FromTriples(
      {Triple(1, 2, MakeValueSet({"x"})), Triple(3, 4, MakeValueSet({"y"}))});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  auto bad = TemporalSequence::FromTriples(
      {Triple(1, 5, MakeValueSet({"x"})), Triple(3, 6, MakeValueSet({"y"}))});
  EXPECT_FALSE(bad.ok());
}

TEST(TemporalSequenceTest, ValuesAtMatchesExampleThree) {
  const TemporalSequence titles = DavidTitles();
  EXPECT_EQ(titles.ValuesAt(2002), MakeValueSet({"Engineer"}));
  EXPECT_EQ(titles.ValuesAt(2003), MakeValueSet({"Manager"}));
  EXPECT_TRUE(titles.ValuesAt(1999).empty());
  EXPECT_TRUE(titles.ValuesAt(2010).empty());
}

TEST(TemporalSequenceTest, IntervalsOfMatchesExampleThree) {
  const TemporalSequence titles = DavidTitles();
  EXPECT_EQ(titles.IntervalsOf("Engineer"),
            (std::vector<Interval>{Interval(2000, 2002)}));
  const TemporalSequence orgs = DavidOrgs();
  EXPECT_EQ(orgs.IntervalsOf("XJek"),
            (std::vector<Interval>{Interval(2000, 2001), Interval(2002, 2002)}));
  EXPECT_TRUE(orgs.IntervalsOf("WSO2").empty());
}

TEST(TemporalSequenceTest, LifespanMatchesExampleThree) {
  EXPECT_EQ(DavidTitles().Lifespan(), 10);
  EXPECT_EQ(DavidOrgs().Lifespan(), 10);
  EXPECT_EQ(TemporalSequence().Lifespan(), 0);
}

TEST(TemporalSequenceTest, LatestOccurrenceBefore) {
  const TemporalSequence titles = DavidTitles();
  // Engineer last held 2002; query from 2004 (Example 6's delay = 2).
  auto t = titles.LatestOccurrenceBefore("Engineer", 2004,
                                         /*strictly_before=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2002);
  // Query at 2001 (inside the spell) strictly before -> 2000.
  t = titles.LatestOccurrenceBefore("Engineer", 2001, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 2000);
  // Inclusive query at 2001 -> 2001.
  t = titles.LatestOccurrenceBefore("Engineer", 2001, false);
  EXPECT_EQ(*t, 2001);
  // Value never occurs before the query point.
  EXPECT_FALSE(
      titles.LatestOccurrenceBefore("Manager", 2002, true).has_value());
  EXPECT_FALSE(
      titles.LatestOccurrenceBefore("Director", 2020, true).has_value());
}

TEST(TemporalSequenceTest, CompletenessMatchesPaperExample) {
  const TemporalSequence orgs = DavidOrgs();
  EXPECT_TRUE(orgs.IsCompleteOver(Interval(2000, 2009)));
  // Not complete w.r.t. [2000, 2013] — no values for [2010, 2013].
  EXPECT_FALSE(orgs.IsCompleteOver(Interval(2000, 2013)));
  EXPECT_DOUBLE_EQ(orgs.CoverageFraction(Interval(2000, 2013)), 10.0 / 14.0);
}

TEST(TemporalSequenceTest, CompletenessWithGaps) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Append(Triple(2000, 2001, MakeValueSet({"a"}))).ok());
  ASSERT_TRUE(seq.Append(Triple(2004, 2005, MakeValueSet({"b"}))).ok());
  EXPECT_FALSE(seq.IsCompleteOver(Interval(2000, 2005)));
  EXPECT_DOUBLE_EQ(seq.CoverageFraction(Interval(2000, 2005)), 4.0 / 6.0);
  EXPECT_TRUE(seq.IsCompleteOver(Interval(2004, 2005)));
}

TEST(TemporalSequenceTest, EarliestAndLatest) {
  const TemporalSequence orgs = DavidOrgs();
  EXPECT_EQ(*orgs.EarliestTime(), 2000);
  EXPECT_EQ(*orgs.LatestTime(), 2009);
  EXPECT_FALSE(TemporalSequence().EarliestTime().has_value());
}

TEST(TemporalSequenceTest, InsertAllowsOverlapAndNormalizeResolves) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Insert(Triple(2000, 2004, MakeValueSet({"a"}))).ok());
  ASSERT_TRUE(seq.Insert(Triple(2003, 2006, MakeValueSet({"b"}))).ok());
  EXPECT_FALSE(seq.IsCanonical());
  // Overlap region contributes the union of values.
  EXPECT_EQ(seq.ValuesAt(2003), MakeValueSet({"a", "b"}));
  seq.Normalize();
  EXPECT_TRUE(seq.IsCanonical());
  EXPECT_EQ(seq.ValuesAt(2002), MakeValueSet({"a"}));
  EXPECT_EQ(seq.ValuesAt(2003), MakeValueSet({"a", "b"}));
  EXPECT_EQ(seq.ValuesAt(2004), MakeValueSet({"a", "b"}));
  EXPECT_EQ(seq.ValuesAt(2005), MakeValueSet({"b"}));
}

TEST(TemporalSequenceTest, NormalizeCompressesEqualRuns) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Insert(Triple(2000, 2001, MakeValueSet({"a"}))).ok());
  ASSERT_TRUE(seq.Insert(Triple(2002, 2003, MakeValueSet({"a"}))).ok());
  seq.Normalize();
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq.at(0).interval, Interval(2000, 2003));
}

TEST(TemporalSequenceTest, NormalizePreservesGaps) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Insert(Triple(2000, 2000, MakeValueSet({"a"}))).ok());
  ASSERT_TRUE(seq.Insert(Triple(2005, 2005, MakeValueSet({"a"}))).ok());
  seq.Normalize();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_TRUE(seq.ValuesAt(2002).empty());
}

TEST(TemporalSequenceTest, InsertKeepsSortedOrder) {
  TemporalSequence seq;
  ASSERT_TRUE(seq.Insert(Triple(2010, 2012, MakeValueSet({"c"}))).ok());
  ASSERT_TRUE(seq.Insert(Triple(2000, 2002, MakeValueSet({"a"}))).ok());
  ASSERT_TRUE(seq.Insert(Triple(2005, 2007, MakeValueSet({"b"}))).ok());
  EXPECT_EQ(seq.at(0).interval.begin, 2000);
  EXPECT_EQ(seq.at(1).interval.begin, 2005);
  EXPECT_EQ(seq.at(2).interval.begin, 2010);
}

TEST(TemporalSequenceTest, ToStringRendersTriples) {
  EXPECT_EQ(DavidTitles().ToString(),
            "[<2000, 2002, {Engineer}>, <2003, 2009, {Manager}>]");
}

}  // namespace
}  // namespace maroon
