#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/dataset_io.h"

namespace maroon {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Round-trip tests over adversarial CSV content: commas, quotes, embedded
/// newlines and CRLF inside cells. The one documented non-round-tripping
/// shape — values containing the multi-value separator ';' or surrounding
/// whitespace — is deliberately absent.
class AdversarialIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/maroon_adv_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir2_ = dir_ + "_second";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir2_);
    std::filesystem::create_directories(dir_);
    std::filesystem::create_directories(dir2_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir2_);
  }

  std::string dir_;
  std::string dir2_;
};

Dataset AdversarialDataset() {
  Dataset dataset;
  dataset.SetAttributes({"Org,anization", "Ti\"tle\""});
  dataset.AddSource("Source, \"quoted\"");
  dataset.AddSource("Line\nBreak Source");

  TemporalRecord r0(0, "Ann \"The Comma\" Smith, Jr.", 2001, 0);
  r0.SetValue("Org,anization", MakeValueSet({"Acme, Inc.", "A \"q\" org"}));
  r0.SetValue("Ti\"tle\"", MakeValueSet({"Line\nbreak title"}));
  TemporalRecord r1(0, "Bob\r\nCarriage", 2003, 1);
  r1.SetValue("Org,anization", MakeValueSet({"CRLF\r\nvalue"}));
  TemporalRecord r2(0, "Plain Name", 2005, 0);
  r2.SetValue("Ti\"tle\"", MakeValueSet({"\"\"", ","}));

  const RecordId id0 = dataset.AddRecord(std::move(r0));
  (void)dataset.AddRecord(std::move(r1));
  const RecordId id2 = dataset.AddRecord(std::move(r2));
  (void)dataset.SetLabel(id0, "entity,one");
  (void)dataset.SetLabel(id2, "entity\"two\"");

  TargetEntity target;
  target.clean_profile = EntityProfile("entity,one", "Ann \"The Comma\" Smith, Jr.");
  (void)target.clean_profile.sequence("Org,anization")
      .Append(Triple(2000, 2002, MakeValueSet({"Acme, Inc."})));
  target.ground_truth = target.clean_profile;
  (void)target.ground_truth.sequence("Ti\"tle\"").Append(
      Triple(2001, 2001, MakeValueSet({"Line\nbreak title"})));
  (void)dataset.AddTarget("entity,one", std::move(target));
  return dataset;
}

TEST_F(AdversarialIoTest, ByteIdenticalAfterReload) {
  const Dataset original = AdversarialDataset();
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());

  auto loaded = ReadDatasetCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(WriteDatasetCsv(*loaded, dir2_).ok());

  for (const char* file : {"records.csv", "profiles.csv", "sources.csv"}) {
    const std::string a = ReadFileBytes(dir_ + "/" + file);
    const std::string b = ReadFileBytes(dir2_ + "/" + file);
    ASSERT_FALSE(a.empty()) << file;
    EXPECT_EQ(a, b) << file << " did not survive the round trip byte-for-byte";
  }
}

TEST_F(AdversarialIoTest, ValuesSurviveSemantically) {
  const Dataset original = AdversarialDataset();
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());
  auto loaded = ReadDatasetCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->NumRecords(), original.NumRecords());
  for (RecordId id = 0; id < original.NumRecords(); ++id) {
    EXPECT_EQ(loaded->record(id).ToString(), original.record(id).ToString());
    EXPECT_EQ(loaded->LabelOf(id), original.LabelOf(id));
  }
  EXPECT_EQ(loaded->record(1).GetValue("Org,anization"),
            MakeValueSet({"CRLF\r\nvalue"}));
  auto target = loaded->target("entity,one");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ((*target)->ground_truth.ToString(),
            original.targets().begin()->second.ground_truth.ToString());
}

TEST(ParseTimePointTest, ParsesPlainIntegers) {
  TimePoint t = 0;
  ASSERT_TRUE(ParseTimePoint("2005", &t).ok());
  EXPECT_EQ(t, 2005);
  ASSERT_TRUE(ParseTimePoint("-40", &t).ok());
  EXPECT_EQ(t, -40);
}

TEST(ParseTimePointTest, ToleratesSurroundingWhitespace) {
  TimePoint t = 0;
  ASSERT_TRUE(ParseTimePoint("  1999 ", &t).ok());
  EXPECT_EQ(t, 1999);
  ASSERT_TRUE(ParseTimePoint("\t-7\t", &t).ok());
  EXPECT_EQ(t, -7);
}

TEST(ParseTimePointTest, RejectsTrailingGarbage) {
  TimePoint t = 0;
  const Status status = ParseTimePoint("2005x", &t);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("trailing garbage"), std::string::npos);
  EXPECT_NE(status.message().find("'x'"), std::string::npos);
  EXPECT_FALSE(ParseTimePoint("19 99", &t).ok());
  EXPECT_FALSE(ParseTimePoint("2005.5", &t).ok());
}

TEST(ParseTimePointTest, RejectsEmptyAndWhitespaceWithDistinctMessages) {
  TimePoint t = 0;
  const Status empty = ParseTimePoint("", &t);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.message().find("empty cell"), std::string::npos);
  const Status blank = ParseTimePoint("   ", &t);
  ASSERT_FALSE(blank.ok());
  EXPECT_NE(blank.message().find("whitespace-only"), std::string::npos);
}

TEST(ParseTimePointTest, RejectsNonIntegersAndOverflow) {
  TimePoint t = 0;
  const Status word = ParseTimePoint("soon", &t);
  ASSERT_FALSE(word.ok());
  EXPECT_NE(word.message().find("not an integer"), std::string::npos);
  const Status huge = ParseTimePoint("99999999999", &t);
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.message().find("32-bit"), std::string::npos);
}

}  // namespace
}  // namespace maroon
