#include "core/dataset.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

TEST(DatasetTest, SourcesGetDenseIds) {
  Dataset d;
  EXPECT_EQ(d.AddSource("A"), 0u);
  EXPECT_EQ(d.AddSource("B"), 1u);
  EXPECT_EQ(d.source(1).name, "B");
  EXPECT_EQ(d.sources().size(), 2u);
}

TEST(DatasetTest, RecordsGetDenseIdsOverridingInput) {
  Dataset d;
  d.AddSource("S");
  TemporalRecord r(/*id=*/999, "Alice", 2001, 0);
  r.SetValue("Title", MakeValueSet({"Engineer"}));
  const RecordId id = d.AddRecord(r);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(d.record(0).id(), 0u);
  EXPECT_EQ(d.record(0).GetValue("Title"), MakeValueSet({"Engineer"}));
  EXPECT_EQ(d.NumRecords(), 1u);
}

TEST(DatasetTest, LabelsRoundTrip) {
  Dataset d;
  d.AddSource("S");
  const RecordId id = d.AddRecord(TemporalRecord(0, "A", 2000, 0));
  EXPECT_TRUE(d.LabelOf(id).empty());
  ASSERT_TRUE(d.SetLabel(id, "e1").ok());
  EXPECT_EQ(d.LabelOf(id), "e1");
  EXPECT_FALSE(d.SetLabel(42, "e1").ok());
}

TEST(DatasetTest, TargetRegistrationRejectsDuplicates) {
  Dataset d;
  EXPECT_TRUE(d.AddTarget("e1", TargetEntity{}).ok());
  EXPECT_EQ(d.AddTarget("e1", TargetEntity{}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(d.target("e1").ok());
  EXPECT_EQ(d.target("e2").status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, PaperExampleCandidatesAndMatches) {
  const Dataset d = testing::PaperRecords();
  EXPECT_EQ(d.NumRecords(), 9u);
  // All nine records mention "David Brown" -> all are candidates.
  EXPECT_EQ(d.CandidatesFor("david_1").size(), 9u);
  // r6 (id 5) is the only non-match.
  const std::vector<RecordId> matches = d.TrueMatchesOf("david_1");
  EXPECT_EQ(matches.size(), 8u);
  for (RecordId id : matches) EXPECT_NE(id, 5u);
}

TEST(DatasetTest, CandidatesForUnknownEntityEmpty) {
  const Dataset d = testing::PaperRecords();
  EXPECT_TRUE(d.CandidatesFor("nobody").empty());
}

TEST(DatasetTest, StatisticsStringMentionsSources) {
  const Dataset d = testing::PaperRecords();
  const std::string stats = d.StatisticsString();
  EXPECT_NE(stats.find("GooglePlus"), std::string::npos);
  EXPECT_NE(stats.find("Facebook"), std::string::npos);
  EXPECT_NE(stats.find("Twitter"), std::string::npos);
  EXPECT_NE(stats.find("9 records"), std::string::npos);
}

}  // namespace
}  // namespace maroon
