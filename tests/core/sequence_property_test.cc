#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/temporal_sequence.h"

namespace maroon {
namespace {

/// Property tests for TemporalSequence under random Insert/Normalize
/// workloads: Normalize must preserve the per-instant value semantics while
/// restoring Def. 1 canonical form.
class SequenceNormalizeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SequenceNormalizeProperty, NormalizePreservesInstantSemantics) {
  Random rng(GetParam());
  static const std::vector<Value> kValues = {"a", "b", "c", "d"};

  TemporalSequence seq;
  const int inserts = static_cast<int>(rng.UniformInt(1, 12));
  for (int i = 0; i < inserts; ++i) {
    const TimePoint b = static_cast<TimePoint>(rng.UniformInt(2000, 2020));
    const TimePoint e = static_cast<TimePoint>(b + rng.UniformInt(0, 5));
    std::vector<Value> values;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int k = 0; k < n; ++k) {
      values.push_back(kValues[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]);
    }
    ASSERT_TRUE(seq.Insert(Triple(b, e, MakeValueSet(std::move(values)))).ok());
  }

  // Snapshot the union semantics before normalization.
  std::map<TimePoint, ValueSet> before;
  for (TimePoint t = 1995; t <= 2030; ++t) {
    before[t] = seq.ValuesAt(t);
  }
  const int64_t lifespan_before = seq.Lifespan();

  seq.Normalize();

  EXPECT_TRUE(seq.IsCanonical()) << "seed " << GetParam();
  EXPECT_EQ(seq.Lifespan(), lifespan_before);
  for (TimePoint t = 1995; t <= 2030; ++t) {
    EXPECT_EQ(seq.ValuesAt(t), before[t])
        << "instant " << t << " seed " << GetParam();
  }
  // Normalize is idempotent.
  const std::string rendered = seq.ToString();
  seq.Normalize();
  EXPECT_EQ(seq.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SequenceNormalizeProperty,
                         ::testing::Range<uint64_t>(1, 51));

class SequenceQueryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SequenceQueryProperty, QueriesAgreeWithTripleScan) {
  Random rng(GetParam() + 1000);
  static const std::vector<Value> kValues = {"x", "y", "z"};

  // Random canonical sequence via Append.
  TemporalSequence seq;
  TimePoint t = 2000;
  ValueSet previous;
  const int spells = static_cast<int>(rng.UniformInt(1, 8));
  for (int i = 0; i < spells; ++i) {
    ValueSet values;
    while (values.empty() || values == previous) {
      std::vector<Value> picked;
      const int n = static_cast<int>(rng.UniformInt(1, 2));
      for (int k = 0; k < n; ++k) {
        picked.push_back(kValues[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(kValues.size()) - 1))]);
      }
      values = MakeValueSet(std::move(picked));
    }
    const TimePoint end = static_cast<TimePoint>(t + rng.UniformInt(0, 4));
    ASSERT_TRUE(seq.Append(Triple(t, end, values)).ok());
    previous = values;
    t = static_cast<TimePoint>(end + rng.UniformInt(1, 3));
  }

  // IntervalsOf(v) must exactly cover the instants where v in ValuesAt(t).
  for (const Value& v : kValues) {
    std::set<TimePoint> from_intervals;
    for (const Interval& iv : seq.IntervalsOf(v)) {
      for (TimePoint u = iv.begin; u <= iv.end; ++u) from_intervals.insert(u);
    }
    std::set<TimePoint> from_values;
    for (TimePoint u = 1995; u <= 2060; ++u) {
      if (ValueSetContains(seq.ValuesAt(u), v)) from_values.insert(u);
    }
    EXPECT_EQ(from_intervals, from_values) << "value " << v << " seed "
                                           << GetParam();
    // LatestOccurrenceBefore agrees with the scan.
    for (TimePoint query : {seq.at(0).interval.begin, *seq.LatestTime(),
                            static_cast<TimePoint>(*seq.LatestTime() + 5)}) {
      auto expected = [&]() -> std::optional<TimePoint> {
        std::optional<TimePoint> best;
        for (TimePoint u : from_values) {
          if (u < query) best = u;
        }
        return best;
      }();
      EXPECT_EQ(seq.LatestOccurrenceBefore(v, query, true), expected)
          << "value " << v << " query " << query << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SequenceQueryProperty,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace maroon
