#include "core/entity_profile.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::DavidBrownProfile;
using testing::kOrg;
using testing::kTitle;

TEST(EntityProfileTest, IdentityAndName) {
  const EntityProfile profile = DavidBrownProfile();
  EXPECT_EQ(profile.id(), "david_1");
  EXPECT_EQ(profile.name(), "David Brown");
}

TEST(EntityProfileTest, SequenceAccess) {
  const EntityProfile profile = DavidBrownProfile();
  EXPECT_EQ(profile.sequence(kTitle).size(), 2u);
  EXPECT_EQ(profile.sequence(kOrg).size(), 4u);
  // Unknown attribute yields the empty sequence, not a crash.
  EXPECT_TRUE(profile.sequence("Hobby").empty());
  EXPECT_FALSE(profile.HasAttribute("Hobby"));
  EXPECT_TRUE(profile.HasAttribute(kTitle));
}

TEST(EntityProfileTest, MutableSequenceCreatesOnDemand) {
  EntityProfile profile("e1", "E One");
  EXPECT_FALSE(profile.HasAttribute("X"));
  profile.sequence("X");
  EXPECT_TRUE(profile.HasAttribute("X"));
}

TEST(EntityProfileTest, AttributesSorted) {
  const EntityProfile profile = DavidBrownProfile();
  EXPECT_EQ(profile.Attributes(),
            (std::vector<Attribute>{"Organization", "Title"}));
}

TEST(EntityProfileTest, MaxLifespan) {
  EXPECT_EQ(DavidBrownProfile().MaxLifespan(), 10);
  EXPECT_EQ(EntityProfile("e", "E").MaxLifespan(), 0);
}

TEST(EntityProfileTest, EarliestAndLatestAcrossAttributes) {
  EntityProfile profile("e1", "E");
  (void)profile.sequence("A").Append(Triple(2005, 2007, MakeValueSet({"x"})));
  (void)profile.sequence("B").Append(Triple(2001, 2002, MakeValueSet({"y"})));
  EXPECT_EQ(*profile.EarliestTime(), 2001);
  EXPECT_EQ(*profile.LatestTime(), 2007);
}

TEST(EntityProfileTest, CompletenessRequiresEveryAttribute) {
  const EntityProfile profile = DavidBrownProfile();
  // Both sequences cover 2000-2009 completely.
  EXPECT_TRUE(profile.IsCompleteOver(Interval(2000, 2009)));
  EXPECT_FALSE(profile.IsCompleteOver(Interval(2000, 2013)));
  EXPECT_FALSE(EntityProfile("e", "E").IsCompleteOver(Interval(2000, 2001)));
}

TEST(EntityProfileTest, EmptyChecksAllSequences) {
  EntityProfile profile("e1", "E");
  EXPECT_TRUE(profile.empty());
  profile.sequence("A");  // empty sequence created
  EXPECT_TRUE(profile.empty());
  (void)profile.sequence("A").Append(Triple(1, 1, MakeValueSet({"v"})));
  EXPECT_FALSE(profile.empty());
}

TEST(EntityProfileTest, NormalizeAppliesToAllAttributes) {
  EntityProfile profile("e1", "E");
  (void)profile.sequence("A").Insert(Triple(2000, 2003, MakeValueSet({"x"})));
  (void)profile.sequence("A").Insert(Triple(2002, 2005, MakeValueSet({"y"})));
  profile.Normalize();
  EXPECT_TRUE(profile.sequence("A").IsCanonical());
  EXPECT_EQ(profile.sequence("A").ValuesAt(2002), MakeValueSet({"x", "y"}));
}

TEST(EntityProfileTest, ToStringMentionsIdAndAttributes) {
  const std::string s = DavidBrownProfile().ToString();
  EXPECT_NE(s.find("david_1"), std::string::npos);
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("Organization"), std::string::npos);
}

}  // namespace
}  // namespace maroon
