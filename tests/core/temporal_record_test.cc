#include "core/temporal_record.h"

#include <gtest/gtest.h>

namespace maroon {
namespace {

TEST(TemporalRecordTest, ConstructorFields) {
  const TemporalRecord r(7, "David Brown", 2011, 2);
  EXPECT_EQ(r.id(), 7u);
  EXPECT_EQ(r.name(), "David Brown");
  EXPECT_EQ(r.timestamp(), 2011);
  EXPECT_EQ(r.source(), 2u);
  EXPECT_TRUE(r.values().empty());
}

TEST(TemporalRecordTest, SetValueCanonicalizes) {
  TemporalRecord r(0, "X", 2000, 0);
  r.SetValue("Org", {"XJek", "S3", "XJek"});
  EXPECT_EQ(r.GetValue("Org"), MakeValueSet({"S3", "XJek"}));
  EXPECT_TRUE(r.HasAttribute("Org"));
}

TEST(TemporalRecordTest, EmptySetErasesAttribute) {
  TemporalRecord r(0, "X", 2000, 0);
  r.SetValue("Org", MakeValueSet({"S3"}));
  ASSERT_TRUE(r.HasAttribute("Org"));
  r.SetValue("Org", {});
  EXPECT_FALSE(r.HasAttribute("Org"));
  EXPECT_TRUE(r.GetValue("Org").empty());
}

TEST(TemporalRecordTest, MissingAttributeIsEmpty) {
  const TemporalRecord r(0, "X", 2000, 0);
  EXPECT_TRUE(r.GetValue("Anything").empty());
  EXPECT_FALSE(r.HasAttribute("Anything"));
}

TEST(TemporalRecordTest, AttributesSorted) {
  TemporalRecord r(0, "X", 2000, 0);
  r.SetValue("Title", MakeValueSet({"Engineer"}));
  r.SetValue("Location", MakeValueSet({"Chicago"}));
  EXPECT_EQ(r.Attributes(), (std::vector<Attribute>{"Location", "Title"}));
}

TEST(TemporalRecordTest, ToStringMentionsEverything) {
  TemporalRecord r(3, "David Brown", 2011, 1);
  r.SetValue("Title", MakeValueSet({"Director"}));
  const std::string s = r.ToString();
  EXPECT_NE(s.find("David Brown"), std::string::npos);
  EXPECT_NE(s.find("2011"), std::string::npos);
  EXPECT_NE(s.find("Director"), std::string::npos);
  EXPECT_NE(s.find("s=1"), std::string::npos);
}

TEST(TemporalRecordTest, OverwriteValue) {
  TemporalRecord r(0, "X", 2000, 0);
  r.SetValue("Title", MakeValueSet({"Engineer"}));
  r.SetValue("Title", MakeValueSet({"Manager"}));
  EXPECT_EQ(r.GetValue("Title"), MakeValueSet({"Manager"}));
}

}  // namespace
}  // namespace maroon
