#include "core/validation.h"

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/entity_profile.h"
#include "core/temporal_record.h"

namespace maroon {
namespace {

TEST(RepairPolicyTest, ParsesAllNames) {
  auto strict = ParseRepairPolicy("strict");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(*strict, RepairPolicy::kStrict);
  auto quarantine = ParseRepairPolicy("Quarantine");
  ASSERT_TRUE(quarantine.ok());
  EXPECT_EQ(*quarantine, RepairPolicy::kQuarantine);
  auto repair = ParseRepairPolicy("REPAIR");
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(*repair, RepairPolicy::kRepair);
  EXPECT_FALSE(ParseRepairPolicy("lenient").ok());
}

TEST(RepairPolicyTest, NamesRoundTrip) {
  for (RepairPolicy policy : {RepairPolicy::kStrict, RepairPolicy::kQuarantine,
                              RepairPolicy::kRepair}) {
    auto parsed = ParseRepairPolicy(std::string(RepairPolicyName(policy)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
}

TEST(ValidateRecordTest, CleanRecordHasNoIssues) {
  TemporalRecord record(0, "Ann Smith", 2005, 0);
  record.SetValue("Title", MakeValueSet({"Engineer"}));
  ValidationReport report;
  ValidateRecord(record, /*num_sources=*/1, {}, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records_checked, 1u);
}

TEST(ValidateRecordTest, FlagsUnknownSource) {
  TemporalRecord record(3, "Ann", 2005, /*source=*/7);
  ValidationReport report;
  ValidateRecord(record, /*num_sources=*/2, {}, &report);
  EXPECT_EQ(report.CountOf(IssueCode::kUnknownSource), 1u);
  EXPECT_EQ(report.ErrorCount(), 1u);
  EXPECT_NE(report.issues[0].location.find("record 3"), std::string::npos);
}

TEST(ValidateRecordTest, FlagsMissingName) {
  TemporalRecord record(0, "   ", 2005, 0);
  ValidationReport report;
  ValidateRecord(record, 1, {}, &report);
  EXPECT_EQ(report.CountOf(IssueCode::kMissingName), 1u);
}

TEST(ValidateRecordTest, FlagsTimestampOutsidePlausibleWindow) {
  TemporalRecord inside(0, "Ann", 2005, 0);
  TemporalRecord outside(1, "Bob", 3456, 0);
  ValidationOptions options;
  options.plausible_window = Interval(1990, 2030);
  ValidationReport report;
  ValidateRecord(inside, 1, options, &report);
  EXPECT_TRUE(report.clean());
  ValidateRecord(outside, 1, options, &report);
  EXPECT_EQ(report.CountOf(IssueCode::kTimestampOutOfWindow), 1u);
}

TEST(ValidateRecordTest, FlagsMangledSeparatorAsError) {
  TemporalRecord record(0, "Ann", 2005, 0);
  record.SetValue("Coauthors", MakeValueSet({"Bob Jones|Carol White"}));
  ValidationReport report;
  ValidateRecord(record, 1, {}, &report);
  EXPECT_EQ(report.CountOf(IssueCode::kMangledSeparator), 1u);
  EXPECT_EQ(report.ErrorCount(), 1u);
}

TEST(ValidateRecordTest, FlagsSurroundingWhitespaceAsWarning) {
  TemporalRecord record(0, "Ann", 2005, 0);
  record.SetValue("Title", MakeValueSet({" Engineer "}));
  ValidationReport report;
  ValidateRecord(record, 1, {}, &report);
  EXPECT_EQ(report.CountOf(IssueCode::kNonCanonicalValue), 1u);
  EXPECT_EQ(report.ErrorCount(), 0u);  // warning only
}

TEST(RepairRecordTest, ResplitsMangledSeparatorAndTrims) {
  TemporalRecord record(0, "Ann", 2005, 0);
  record.SetValue("Coauthors", MakeValueSet({"Bob|Carol| Dave "}));
  record.SetValue("Title", MakeValueSet({" Engineer "}));
  EXPECT_EQ(RepairRecord(&record), 2u);
  EXPECT_EQ(record.GetValue("Coauthors"),
            MakeValueSet({"Bob", "Carol", "Dave"}));
  EXPECT_EQ(record.GetValue("Title"), MakeValueSet({"Engineer"}));

  // Idempotent: a repaired record validates clean and repairs to zero.
  ValidationReport report;
  ValidateRecord(record, 1, {}, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(RepairRecord(&record), 0u);
}

TEST(ValidateProfileTest, EmptyProfileIsWarning) {
  EntityProfile profile("e1", "Ann");
  ValidationReport report;
  ValidateProfile(profile, "target e1", &report);
  EXPECT_EQ(report.CountOf(IssueCode::kEmptyProfile), 1u);
  EXPECT_EQ(report.ErrorCount(), 0u);
}

TEST(ValidateProfileTest, FlagsNonCanonicalSequence) {
  EntityProfile profile("e1", "Ann");
  ASSERT_TRUE(profile.sequence("Title")
                  .Insert(Triple(2000, 2005, MakeValueSet({"Engineer"})))
                  .ok());
  ASSERT_TRUE(profile.sequence("Title")
                  .Insert(Triple(2003, 2008, MakeValueSet({"Manager"})))
                  .ok());
  ValidationReport report;
  ValidateProfile(profile, "target e1", &report);
  EXPECT_EQ(report.CountOf(IssueCode::kNonCanonicalSequence), 1u);
  EXPECT_EQ(report.ErrorCount(), 0u);
}

TEST(ValidateProfileTest, FlagsMangledAndPaddedValues) {
  EntityProfile profile("e1", "Ann");
  ASSERT_TRUE(profile.sequence("Org")
                  .Insert(Triple(2000, 2002, MakeValueSet({"Acme|Globex"})))
                  .ok());
  ASSERT_TRUE(profile.sequence("Title")
                  .Insert(Triple(2000, 2002, MakeValueSet({" Engineer "})))
                  .ok());
  ValidationReport report;
  ValidateProfile(profile, "target e1", &report);
  EXPECT_EQ(report.CountOf(IssueCode::kMangledSeparator), 1u);
  EXPECT_EQ(report.CountOf(IssueCode::kNonCanonicalValue), 1u);
}

TEST(RepairProfileTest, NormalizesAndResplits) {
  EntityProfile profile("e1", "Ann");
  ASSERT_TRUE(profile.sequence("Org")
                  .Insert(Triple(2000, 2002, MakeValueSet({"Acme|Globex"})))
                  .ok());
  ASSERT_TRUE(profile.sequence("Title")
                  .Insert(Triple(2000, 2005, MakeValueSet({"Engineer"})))
                  .ok());
  ASSERT_TRUE(profile.sequence("Title")
                  .Insert(Triple(2003, 2008, MakeValueSet({"Manager"})))
                  .ok());
  EXPECT_GT(RepairProfile(&profile), 0u);

  ValidationReport report;
  ValidateProfile(profile, "target e1", &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_TRUE(profile.sequence("Title").IsCanonical());
  // The mangled cell was split back into separate values.
  bool found_acme = false;
  for (const Triple& tr : profile.sequence("Org").triples()) {
    if (ValueSetContains(tr.values, "Acme") &&
        ValueSetContains(tr.values, "Globex")) {
      found_acme = true;
    }
  }
  EXPECT_TRUE(found_acme);
}

Dataset ThreeRecordDataset() {
  Dataset dataset;
  dataset.SetAttributes({"Title"});
  dataset.AddSource("CareerHub");
  TemporalRecord clean(0, "Ann", 2005, 0);
  clean.SetValue("Title", MakeValueSet({"Engineer"}));
  TemporalRecord ghost(0, "Bob", 2006, /*source=*/9);
  ghost.SetValue("Title", MakeValueSet({"Manager"}));
  TemporalRecord mangled(0, "Cara", 2007, 0);
  mangled.SetValue("Title", MakeValueSet({"Director|CTO"}));
  (void)dataset.AddRecord(std::move(clean));
  (void)dataset.AddRecord(std::move(ghost));
  (void)dataset.AddRecord(std::move(mangled));
  return dataset;
}

TEST(ValidateDatasetTest, StrictInspectsWithoutMutating) {
  Dataset dataset = ThreeRecordDataset();
  ValidationOptions options;
  options.policy = RepairPolicy::kStrict;
  const ValidationReport report = ValidateDataset(&dataset, options);
  EXPECT_EQ(dataset.NumRecords(), 3u);
  EXPECT_EQ(report.TotalQuarantined(), 0u);
  EXPECT_EQ(report.CountOf(IssueCode::kUnknownSource), 1u);
  EXPECT_EQ(report.CountOf(IssueCode::kMangledSeparator), 1u);
  EXPECT_FALSE(report.ToStatus().ok());
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kInvalidArgument);
}

TEST(ValidateDatasetTest, QuarantineDropsOffendingRecords) {
  Dataset dataset = ThreeRecordDataset();
  ValidationOptions options;
  options.policy = RepairPolicy::kQuarantine;
  const ValidationReport report = ValidateDataset(&dataset, options);
  EXPECT_EQ(dataset.NumRecords(), 1u);
  EXPECT_EQ(report.quarantined_records, (std::vector<RecordId>{1, 2}));
  EXPECT_EQ(dataset.record(0).name(), "Ann");
}

TEST(ValidateDatasetTest, RepairFixesWhatItCanAndQuarantinesTheRest) {
  Dataset dataset = ThreeRecordDataset();
  ValidationOptions options;
  options.policy = RepairPolicy::kRepair;
  const ValidationReport report = ValidateDataset(&dataset, options);
  // The mangled record is repairable; the ghost-source record is not.
  EXPECT_EQ(dataset.NumRecords(), 2u);
  EXPECT_EQ(report.quarantined_records, (std::vector<RecordId>{1}));
  EXPECT_GE(report.repairs_applied, 1u);
  EXPECT_EQ(dataset.record(1).GetValue("Title"),
            MakeValueSet({"CTO", "Director"}));
}

TEST(PlausibleWindowTest, PadsTheTargetSpan) {
  Dataset dataset;
  dataset.SetAttributes({"Title"});
  dataset.AddSource("CareerHub");
  TargetEntity target;
  target.clean_profile = EntityProfile("e1", "Ann");
  ASSERT_TRUE(target.clean_profile.sequence("Title")
                  .Append(Triple(2000, 2009, MakeValueSet({"Engineer"})))
                  .ok());
  target.ground_truth = target.clean_profile;
  ASSERT_TRUE(dataset.AddTarget("e1", std::move(target)).ok());

  const auto window = PlausibleWindowOf(dataset);
  ASSERT_TRUE(window.has_value());
  // Span [2000, 2009] (10 instants) padded by 10 on each side.
  EXPECT_EQ(window->begin, 1990);
  EXPECT_EQ(window->end, 2019);
}

TEST(PlausibleWindowTest, EmptyWithoutTargets) {
  Dataset dataset;
  EXPECT_FALSE(PlausibleWindowOf(dataset).has_value());
}

TEST(ValidationReportTest, MergeAccumulates) {
  ValidationReport a;
  a.issues.push_back(ValidationIssue{IssueCode::kBadRow, IssueSeverity::kError,
                                     "records.csv row 1", "bad"});
  a.quarantined_rows = 2;
  a.records_checked = 5;
  ValidationReport b;
  b.issues.push_back(ValidationIssue{IssueCode::kEmptyProfile,
                                     IssueSeverity::kWarning, "target e1",
                                     "empty"});
  b.quarantined_records = {4};
  b.repairs_applied = 3;
  a.Merge(std::move(b));
  EXPECT_EQ(a.issues.size(), 2u);
  EXPECT_EQ(a.TotalQuarantined(), 3u);
  EXPECT_EQ(a.repairs_applied, 3u);
  EXPECT_EQ(a.ErrorCount(), 1u);
  const std::string text = a.ToString();
  EXPECT_NE(text.find("BadRow"), std::string::npos);
  EXPECT_NE(text.find("EmptyProfile"), std::string::npos);
}

}  // namespace
}  // namespace maroon
