#include "core/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/csv.h"
#include "datagen/recruitment_generator.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs cases in concurrent processes.
    dir_ = ::testing::TempDir() + "/maroon_io_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DatasetIoTest, PaperExampleRoundTrips) {
  const Dataset original = testing::PaperRecords();
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());

  auto loaded = ReadDatasetCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRecords(), original.NumRecords());
  EXPECT_EQ(loaded->attributes(), original.attributes());
  EXPECT_EQ(loaded->sources().size(), original.sources().size());
  for (RecordId id = 0; id < original.NumRecords(); ++id) {
    EXPECT_EQ(loaded->record(id).ToString(), original.record(id).ToString());
    EXPECT_EQ(loaded->LabelOf(id), original.LabelOf(id));
  }
  ASSERT_EQ(loaded->targets().size(), 1u);
  const TargetEntity& target = loaded->targets().begin()->second;
  const TargetEntity& expected = original.targets().begin()->second;
  EXPECT_EQ(target.clean_profile.ToString(), expected.clean_profile.ToString());
  EXPECT_EQ(target.ground_truth.ToString(), expected.ground_truth.ToString());
}

TEST_F(DatasetIoTest, GeneratedDatasetRoundTrips) {
  RecruitmentOptions options;
  options.seed = 5;
  options.num_entities = 25;
  options.num_names = 10;
  const Dataset original = GenerateRecruitmentDataset(options);
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());

  auto loaded = ReadDatasetCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRecords(), original.NumRecords());
  EXPECT_EQ(loaded->targets().size(), original.targets().size());
  for (RecordId id = 0; id < original.NumRecords(); ++id) {
    EXPECT_EQ(loaded->record(id).ToString(), original.record(id).ToString());
  }
  for (const auto& [id, target] : original.targets()) {
    auto loaded_target = loaded->target(id);
    ASSERT_TRUE(loaded_target.ok());
    EXPECT_EQ((*loaded_target)->ground_truth.ToString(),
              target.ground_truth.ToString());
  }
}

TEST_F(DatasetIoTest, ValuesWithSpecialCharactersSurvive) {
  Dataset dataset;
  dataset.SetAttributes({"Org"});
  dataset.AddSource("Weird, \"Source\"");
  TemporalRecord r(0, "Name, with comma", 2001, 0);
  r.SetValue("Org", MakeValueSet({"Quest, Inc.", "A \"quoted\" org"}));
  const RecordId id = dataset.AddRecord(std::move(r));
  (void)dataset.SetLabel(id, "e1");
  TargetEntity target;
  target.clean_profile = EntityProfile("e1", "Name, with comma");
  (void)target.clean_profile.sequence("Org").Append(
      Triple(2000, 2001, MakeValueSet({"Quest, Inc."})));
  target.ground_truth = target.clean_profile;
  (void)dataset.AddTarget("e1", std::move(target));

  ASSERT_TRUE(WriteDatasetCsv(dataset, dir_).ok());
  auto loaded = ReadDatasetCsv(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->record(0).GetValue("Org"),
            MakeValueSet({"Quest, Inc.", "A \"quoted\" org"}));
  EXPECT_EQ(loaded->record(0).name(), "Name, with comma");
}

TEST_F(DatasetIoTest, MissingDirectoryFails) {
  auto loaded = ReadDatasetCsv("/nonexistent/dir");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(DatasetIoTest, MalformedRecordsFileFails) {
  const Dataset original = testing::PaperRecords();
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());
  // Corrupt the timestamp column of one record.
  CsvWriter writer;
  writer.AppendRow({"id", "name", "timestamp", "source", "label", "Interests",
                    "Location", "Organization", "Title"});
  writer.AppendRow({"0", "X", "not-a-year", "GooglePlus", "", "", "", "", ""});
  ASSERT_TRUE(writer.WriteToFile(dir_ + "/records.csv").ok());
  auto loaded = ReadDatasetCsv(dir_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, UnknownSourceFails) {
  const Dataset original = testing::PaperRecords();
  ASSERT_TRUE(WriteDatasetCsv(original, dir_).ok());
  CsvWriter writer;
  writer.AppendRow({"id", "name", "timestamp", "source", "label", "Interests",
                    "Location", "Organization", "Title"});
  writer.AppendRow({"0", "X", "2001", "NoSuchSource", "", "", "", "", ""});
  ASSERT_TRUE(writer.WriteToFile(dir_ + "/records.csv").ok());
  auto loaded = ReadDatasetCsv(dir_);
  EXPECT_FALSE(loaded.ok());
}

TEST(ProfileToCsvTest, OneRowPerTriple) {
  const EntityProfile profile = testing::DavidBrownProfile();
  const std::string csv = ProfileToCsv(profile, "truth");
  // 4 Organization triples + 2 Title triples.
  auto rows = ParseCsv(csv);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  EXPECT_EQ((*rows)[0][0], "david_1");
  EXPECT_EQ((*rows)[0][2], "truth");
}

}  // namespace
}  // namespace maroon
