#include "core/profile_store.h"

#include <gtest/gtest.h>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kOrg;
using testing::kTitle;

EntityProfile SimpleProfile(const std::string& id, const std::string& name,
                            const std::string& org, TimePoint b, TimePoint e) {
  EntityProfile p(id, name);
  (void)p.sequence(kOrg).Append(Triple(b, e, MakeValueSet({org})));
  return p;
}

TEST(ProfileStoreTest, PutGetRemove) {
  ProfileStore store;
  EXPECT_TRUE(store.empty());
  store.Put(testing::DavidBrownProfile());
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Get("david_1").ok());
  EXPECT_EQ((*store.Get("david_1"))->name(), "David Brown");
  EXPECT_FALSE(store.Get("nobody").ok());
  EXPECT_TRUE(store.Remove("david_1").ok());
  EXPECT_EQ(store.Remove("david_1").code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.empty());
}

TEST(ProfileStoreTest, PutReplacesAndReindexes) {
  ProfileStore store;
  store.Put(SimpleProfile("e1", "Alice", "Acme", 2000, 2005));
  EXPECT_EQ(store.FindByValueAt(kOrg, "Acme", 2003),
            (std::vector<EntityId>{"e1"}));
  // Replace with a different org; the old index entry must vanish.
  store.Put(SimpleProfile("e1", "Alice", "Beta", 2000, 2005));
  EXPECT_TRUE(store.FindByValueAt(kOrg, "Acme", 2003).empty());
  EXPECT_EQ(store.FindByValueAt(kOrg, "Beta", 2003),
            (std::vector<EntityId>{"e1"}));
}

TEST(ProfileStoreTest, FindByName) {
  ProfileStore store;
  store.Put(SimpleProfile("e1", "David Brown", "Acme", 2000, 2001));
  store.Put(SimpleProfile("e2", "David Brown", "Beta", 2000, 2001));
  store.Put(SimpleProfile("e3", "Maria Garcia", "Acme", 2000, 2001));
  EXPECT_EQ(store.FindByName("David Brown"),
            (std::vector<EntityId>{"e1", "e2"}));
  EXPECT_TRUE(store.FindByName("Nobody").empty());
}

TEST(ProfileStoreTest, FindByValueAtRespectsIntervals) {
  ProfileStore store;
  store.Put(testing::DavidBrownProfile());
  EXPECT_EQ(store.FindByValueAt(kOrg, "Aelita", 2004),
            (std::vector<EntityId>{"david_1"}));
  EXPECT_TRUE(store.FindByValueAt(kOrg, "Aelita", 2007).empty());
  EXPECT_EQ(store.FindByValue(kOrg, "Aelita"),
            (std::vector<EntityId>{"david_1"}));
  EXPECT_TRUE(store.FindByValue(kOrg, "WSO2").empty());
}

TEST(ProfileStoreTest, SnapshotAt) {
  ProfileStore store;
  store.Put(testing::DavidBrownProfile());
  auto snapshot = store.SnapshotAt("david_1", 2004);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->at(kOrg), MakeValueSet({"Aelita"}));
  EXPECT_EQ(snapshot->at(kTitle), MakeValueSet({"Manager"}));
  // Uncovered instant: empty snapshot.
  auto later = store.SnapshotAt("david_1", 2012);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later->empty());
  EXPECT_FALSE(store.SnapshotAt("nobody", 2004).ok());
}

TEST(ProfileStoreTest, CoOccurringColleagues) {
  ProfileStore store;
  store.Put(SimpleProfile("e1", "Alice", "Acme", 2000, 2005));
  store.Put(SimpleProfile("e2", "Bob", "Acme", 2003, 2008));
  store.Put(SimpleProfile("e3", "Cara", "Acme", 2007, 2009));
  store.Put(SimpleProfile("e4", "Dan", "Beta", 2000, 2009));
  // 2004: Alice and Bob overlap at Acme.
  EXPECT_EQ(store.CoOccurring("e1", kOrg, 2004),
            (std::vector<EntityId>{"e2"}));
  // 2007: Bob overlaps Cara, not Alice.
  EXPECT_EQ(store.CoOccurring("e2", kOrg, 2007),
            (std::vector<EntityId>{"e3"}));
  EXPECT_TRUE(store.CoOccurring("e4", kOrg, 2004).empty());
  EXPECT_TRUE(store.CoOccurring("nobody", kOrg, 2004).empty());
}

TEST(ProfileStoreTest, IdsSorted) {
  ProfileStore store;
  store.Put(SimpleProfile("z", "Z", "A", 2000, 2001));
  store.Put(SimpleProfile("a", "A", "A", 2000, 2001));
  EXPECT_EQ(store.Ids(), (std::vector<EntityId>{"a", "z"}));
}

}  // namespace
}  // namespace maroon
