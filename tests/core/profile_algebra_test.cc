#include "core/profile_algebra.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kOrg;
using testing::kTitle;

TEST(EnumerateProfileFactsTest, SortedAndComplete) {
  EntityProfile profile("e", "E");
  (void)profile.sequence(kTitle).Append(
      Triple(2000, 2001, MakeValueSet({"Engineer"})));
  const auto facts = EnumerateProfileFacts(profile);
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0], (ProfileFact{kTitle, 2000, "Engineer"}));
  EXPECT_EQ(facts[1], (ProfileFact{kTitle, 2001, "Engineer"}));
}

TEST(EnumerateProfileFactsTest, MultiValueFactsPerValue) {
  EntityProfile profile("e", "E");
  (void)profile.sequence(kOrg).Append(
      Triple(2000, 2000, MakeValueSet({"S3", "XJek"})));
  EXPECT_EQ(EnumerateProfileFacts(profile).size(), 2u);
}

TEST(MergeProfilesTest, UnionsValuesAndNormalizes) {
  EntityProfile base("e", "E");
  (void)base.sequence(kTitle).Append(
      Triple(2000, 2004, MakeValueSet({"Engineer"})));
  EntityProfile addition("e", "E");
  (void)addition.sequence(kTitle).Append(
      Triple(2003, 2006, MakeValueSet({"Manager"})));
  (void)addition.sequence(kOrg).Append(
      Triple(2000, 2001, MakeValueSet({"S3"})));

  const EntityProfile merged = MergeProfiles(base, addition);
  EXPECT_EQ(merged.sequence(kTitle).ValuesAt(2002), MakeValueSet({"Engineer"}));
  EXPECT_EQ(merged.sequence(kTitle).ValuesAt(2003),
            MakeValueSet({"Engineer", "Manager"}));
  EXPECT_EQ(merged.sequence(kTitle).ValuesAt(2006), MakeValueSet({"Manager"}));
  EXPECT_EQ(merged.sequence(kOrg).ValuesAt(2000), MakeValueSet({"S3"}));
  EXPECT_TRUE(merged.sequence(kTitle).IsCanonical());
  EXPECT_EQ(merged.id(), "e");
}

TEST(MergeProfilesTest, MergeWithEmptyIsIdentity) {
  const EntityProfile base = testing::DavidBrownProfile();
  const EntityProfile merged = MergeProfiles(base, EntityProfile("x", "X"));
  EXPECT_EQ(EnumerateProfileFacts(merged), EnumerateProfileFacts(base));
}

TEST(DiffProfilesTest, DetectsAddedAndRemovedFacts) {
  EntityProfile before("e", "E");
  (void)before.sequence(kTitle).Append(
      Triple(2000, 2001, MakeValueSet({"Engineer"})));
  EntityProfile after("e", "E");
  (void)after.sequence(kTitle).Append(
      Triple(2001, 2002, MakeValueSet({"Engineer"})));

  const ProfileDiff diff = DiffProfiles(before, after);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], (ProfileFact{kTitle, 2002, "Engineer"}));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], (ProfileFact{kTitle, 2000, "Engineer"}));
}

TEST(DiffProfilesTest, IdenticalProfilesDiffEmpty) {
  const EntityProfile p = testing::DavidBrownProfile();
  EXPECT_TRUE(DiffProfiles(p, p).empty());
}

TEST(RenderTimelineTest, ShowsAttributesAndSpan) {
  const EntityProfile p = testing::DavidBrownProfile();
  const std::string timeline = RenderTimeline(p);
  EXPECT_NE(timeline.find("David Brown"), std::string::npos);
  EXPECT_NE(timeline.find("2000-2009"), std::string::npos);
  EXPECT_NE(timeline.find("Title"), std::string::npos);
  EXPECT_NE(timeline.find("Organization"), std::string::npos);
  // The Title row shows the Engineer state starting.
  EXPECT_NE(timeline.find('E'), std::string::npos);
}

TEST(RenderTimelineTest, EmptyProfile) {
  EXPECT_EQ(RenderTimeline(EntityProfile("e", "E")), "(empty profile)\n");
}

TEST(RenderTimelineTest, WideSpansCompress) {
  EntityProfile p("e", "E");
  (void)p.sequence(kTitle).Append(
      Triple(1000, 2000, MakeValueSet({"Engineer"})));
  const std::string timeline = RenderTimeline(p, /*max_width=*/50);
  // Every line stays within label + width + decorations.
  for (const std::string& line : Split(timeline, '\n')) {
    EXPECT_LE(line.size(), 70u);
  }
}

}  // namespace
}  // namespace maroon
