#include "core/profile_snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.h"
#include "core/profile_store.h"
#include "core/profile_wal.h"
#include "core/temporal_record.h"

namespace maroon {
namespace {

class ProfileSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    dir_ = ::testing::TempDir() + "/maroon_snap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  static ProfileStore MakeStore(int entities) {
    ProfileStore store;
    for (int i = 0; i < entities; ++i) {
      TemporalRecord record(static_cast<RecordId>(i),
                            "person" + std::to_string(i % 3),
                            1990 + i, 0);
      record.SetValue("Org", MakeValueSet({"org" + std::to_string(i)}));
      auto applied = ApplyRecordToStore(record, &store);
      EXPECT_TRUE(applied.ok()) << applied.status();
    }
    return store;
  }

  void CorruptOneByte(const std::string& path, std::streamoff offset) {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(offset);
    const char byte = static_cast<char>(file.get());
    file.seekp(offset);
    file.put(static_cast<char>(byte ^ 0x5A));
  }

  std::string dir_;
};

TEST_F(ProfileSnapshotTest, FileNamesSortNumerically) {
  EXPECT_EQ(SnapshotFileName(7), "snapshot-00000000000000000007.mrsn");
  EXPECT_LT(SnapshotFileName(9), SnapshotFileName(10));
  EXPECT_LT(SnapshotFileName(99), SnapshotFileName(100));
}

TEST_F(ProfileSnapshotTest, RoundTripsStoreAndSeq) {
  const ProfileStore store = MakeStore(10);
  ASSERT_TRUE(WriteSnapshot(store, 10, dir_).ok());

  auto loaded = ReadSnapshot(dir_ + "/" + SnapshotFileName(10));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_seq, 10u);
  EXPECT_EQ(HashProfileStore(loaded->store), HashProfileStore(store));
}

TEST_F(ProfileSnapshotTest, RoundTripsEmptyStore) {
  ASSERT_TRUE(WriteSnapshot(ProfileStore(), 0, dir_).ok());
  auto loaded = ReadSnapshot(dir_ + "/" + SnapshotFileName(0));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_seq, 0u);
  EXPECT_TRUE(loaded->store.empty());
}

TEST_F(ProfileSnapshotTest, NewestValidSnapshotWins) {
  ASSERT_TRUE(WriteSnapshot(MakeStore(2), 2, dir_).ok());
  ASSERT_TRUE(WriteSnapshot(MakeStore(5), 5, dir_).ok());
  auto loaded = LoadNewestValidSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_seq, 5u);
}

TEST_F(ProfileSnapshotTest, DamagedNewestFallsBackToOlder) {
  ASSERT_TRUE(WriteSnapshot(MakeStore(2), 2, dir_).ok());
  ASSERT_TRUE(WriteSnapshot(MakeStore(5), 5, dir_).ok());
  const std::string newest = dir_ + "/" + SnapshotFileName(5);
  CorruptOneByte(newest, static_cast<std::streamoff>(
                             std::filesystem::file_size(newest) / 2));

  auto direct = ReadSnapshot(newest);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("checksum"), std::string::npos);

  auto loaded = LoadNewestValidSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_seq, 2u);
  EXPECT_EQ(HashProfileStore(loaded->store), HashProfileStore(MakeStore(2)));
}

TEST_F(ProfileSnapshotTest, TmpLeftoversAndForeignFilesAreIgnored) {
  ASSERT_TRUE(WriteSnapshot(MakeStore(3), 3, dir_).ok());
  {
    std::ofstream tmp(dir_ + "/" + SnapshotFileName(9) + ".tmp");
    tmp << "half-written snapshot from a crashed run";
    std::ofstream foreign(dir_ + "/notes.txt");
    foreign << "unrelated";
  }
  auto snapshots = ListSnapshots(dir_);
  ASSERT_TRUE(snapshots.ok());
  ASSERT_EQ(snapshots->size(), 1u);
  EXPECT_EQ((*snapshots)[0].last_seq, 3u);
}

TEST_F(ProfileSnapshotTest, MissingDirectoryIsNotFound) {
  auto snapshots = ListSnapshots(dir_ + "/absent");
  ASSERT_TRUE(snapshots.ok());
  EXPECT_TRUE(snapshots->empty());
  auto loaded = LoadNewestValidSnapshot(dir_ + "/absent");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ProfileSnapshotTest, WrongMagicIsRejected) {
  const std::string path = dir_ + "/" + SnapshotFileName(1);
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTASNAPSHOT----------------";
  }
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(ProfileSnapshotTest, InjectedWriteFailureLeavesNoPublishedFile) {
  ASSERT_TRUE(failpoint::Arm("snapshot.write", "enospc").ok());
  const Status failed = WriteSnapshot(MakeStore(2), 2, dir_);
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/" + SnapshotFileName(2)));

  // The failure is transient; the retry publishes normally.
  ASSERT_TRUE(WriteSnapshot(MakeStore(2), 2, dir_).ok());
  auto loaded = LoadNewestValidSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST_F(ProfileSnapshotTest, InjectedRenameFailureLeavesOlderSnapshotValid) {
  ASSERT_TRUE(WriteSnapshot(MakeStore(2), 2, dir_).ok());
  ASSERT_TRUE(failpoint::Arm("snapshot.rename", "fail").ok());
  const Status failed = WriteSnapshot(MakeStore(5), 5, dir_);
  ASSERT_FALSE(failed.ok());
  auto loaded = LoadNewestValidSnapshot(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_seq, 2u);
}

TEST_F(ProfileSnapshotTest, SnapshotFailpointsAreRegisteredForTheHarness) {
  const auto points = failpoint::RegisteredPoints();
  auto has = [&](const std::string& name) {
    for (const auto& [point, what] : points) {
      if (point == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("snapshot.write"));
  EXPECT_TRUE(has("snapshot.sync"));
  EXPECT_TRUE(has("snapshot.rename.before"));
  EXPECT_TRUE(has("snapshot.rename.after"));
}

}  // namespace
}  // namespace maroon
