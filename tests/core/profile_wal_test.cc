#include "core/profile_wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.h"
#include "core/entity_profile.h"
#include "core/profile_store.h"
#include "core/temporal_record.h"

namespace maroon {
namespace {

TemporalRecord MakeRecord(RecordId id, const std::string& name, TimePoint t,
                          SourceId source = 0) {
  TemporalRecord record(id, name, t, source);
  record.SetValue("Org", MakeValueSet({"MSR"}));
  record.SetValue("Title", MakeValueSet({"Researcher", "Lead"}));
  return record;
}

TEST(RecordCodecTest, RoundTrips) {
  const TemporalRecord record = MakeRecord(42, "xin dong", 1995, 3);
  auto decoded = DecodeTemporalRecord(EncodeTemporalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id(), 42u);
  EXPECT_EQ(decoded->name(), "xin dong");
  EXPECT_EQ(decoded->timestamp(), 1995);
  EXPECT_EQ(decoded->source(), 3u);
  EXPECT_EQ(decoded->values(), record.values());
}

TEST(RecordCodecTest, RoundTripsEmptyAndNegative) {
  TemporalRecord record(0, "", -5, 0);
  auto decoded = DecodeTemporalRecord(EncodeTemporalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->name(), "");
  EXPECT_EQ(decoded->timestamp(), -5);
  EXPECT_TRUE(decoded->values().empty());
}

TEST(RecordCodecTest, EveryTruncationIsRejected) {
  const std::string bytes = EncodeTemporalRecord(MakeRecord(7, "ann", 2001));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeTemporalRecord(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(RecordCodecTest, TrailingGarbageIsRejected) {
  const std::string bytes = EncodeTemporalRecord(MakeRecord(7, "ann", 2001));
  auto decoded = DecodeTemporalRecord(bytes + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ApplyRecordTest, SpawnsDeterministicEntityForNewName) {
  ProfileStore store;
  auto id = ApplyRecordToStore(MakeRecord(42, "xin dong", 1995), &store);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*id, "w42");
  auto profile = store.Get("w42");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ((*profile)->name(), "xin dong");
  EXPECT_EQ((*profile)->sequence("Org").ValuesAt(1995),
            MakeValueSet({"MSR"}));
}

TEST(ApplyRecordTest, SameNameMergesIntoExistingProfile) {
  ProfileStore store;
  auto first = ApplyRecordToStore(MakeRecord(1, "xin dong", 1995), &store);
  ASSERT_TRUE(first.ok());
  TemporalRecord later(2, "xin dong", 2000, 0);
  later.SetValue("Org", MakeValueSet({"Google"}));
  auto second = ApplyRecordToStore(later, &store);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first) << "same name must route to the same profile";
  EXPECT_EQ(store.size(), 1u);
  auto profile = store.Get(*first);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ((*profile)->sequence("Org").ValuesAt(1995), MakeValueSet({"MSR"}));
  EXPECT_EQ((*profile)->sequence("Org").ValuesAt(2000),
            MakeValueSet({"Google"}));
}

TEST(ApplyRecordTest, TieBreaksToSmallestEntityId) {
  ProfileStore store;
  store.Put(EntityProfile("e2", "ann"));
  store.Put(EntityProfile("e1", "ann"));
  auto id = ApplyRecordToStore(MakeRecord(9, "ann", 2001), &store);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "e1");
}

TEST(HashTest, EqualStoresHashEqually) {
  ProfileStore a;
  ProfileStore b;
  ASSERT_TRUE(ApplyRecordToStore(MakeRecord(1, "ann", 1995), &a).ok());
  ASSERT_TRUE(ApplyRecordToStore(MakeRecord(1, "ann", 1995), &b).ok());
  EXPECT_EQ(HashProfileStore(a), HashProfileStore(b));
}

TEST(HashTest, DetectsValueTimestampAndNameChanges) {
  ProfileStore base;
  ASSERT_TRUE(ApplyRecordToStore(MakeRecord(1, "ann", 1995), &base).ok());
  const uint64_t base_hash = HashProfileStore(base);

  ProfileStore other_time;
  ASSERT_TRUE(ApplyRecordToStore(MakeRecord(1, "ann", 1996), &other_time).ok());
  EXPECT_NE(HashProfileStore(other_time), base_hash);

  ProfileStore other_name;
  ASSERT_TRUE(ApplyRecordToStore(MakeRecord(1, "bob", 1995), &other_name).ok());
  EXPECT_NE(HashProfileStore(other_name), base_hash);

  ProfileStore other_value;
  TemporalRecord record(1, "ann", 1995, 0);
  record.SetValue("Org", MakeValueSet({"UW"}));
  ASSERT_TRUE(ApplyRecordToStore(record, &other_value).ok());
  EXPECT_NE(HashProfileStore(other_value), base_hash);

  EXPECT_EQ(HashProfileStore(ProfileStore()), HashProfileStore(ProfileStore()));
  EXPECT_NE(HashProfileStore(ProfileStore()), base_hash);
}

class ProfileWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::ClearAll();
    dir_ = ::testing::TempDir() + "/maroon_pwal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/profile.wal";
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string path_;
};

TEST_F(ProfileWalTest, AppendAssignsDenseSequencesAndReplays) {
  auto wal = ProfileWal::Open(path_);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE(wal->Append(MakeRecord(10, "ann", 1995)).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(11, "bob", 1996)).ok());
  ASSERT_TRUE(wal->Append(MakeRecord(12, "ann", 1997)).ok());
  EXPECT_EQ(wal->last_seq(), 3u);
  ASSERT_TRUE(wal->Close().ok());

  auto replay = ReplayProfileWal(path_);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].seq, 1u);
  EXPECT_EQ(replay->records[0].record.id(), 10u);
  EXPECT_EQ(replay->records[2].record.timestamp(), 1997);
  EXPECT_EQ(replay->last_seq, 3u);
  EXPECT_EQ(replay->torn_bytes, 0u);
}

TEST_F(ProfileWalTest, ReplayAfterSeqSkipsSnapshottedPrefix) {
  auto wal = ProfileWal::Open(path_);
  ASSERT_TRUE(wal.ok());
  for (RecordId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(wal->Append(MakeRecord(id, "ann", 1990 + id)).ok());
  }
  ASSERT_TRUE(wal->Close().ok());

  auto replay = ReplayProfileWal(path_, /*after_seq=*/3);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0].seq, 4u);
  EXPECT_EQ(replay->last_seq, 5u);
}

TEST_F(ProfileWalTest, ReopenResumesSequenceAfterTornTail) {
  {
    auto wal = ProfileWal::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(MakeRecord(1, "ann", 1995)).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "torn";
  }
  auto wal = ProfileWal::Open(path_);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_EQ(wal->last_seq(), 1u);
  EXPECT_EQ(wal->repaired_bytes(), 4u);
  ASSERT_TRUE(wal->Append(MakeRecord(2, "bob", 1996)).ok());
  ASSERT_TRUE(wal->Close().ok());

  auto replay = ReplayProfileWal(path_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].seq, 2u);
}

TEST_F(ProfileWalTest, ReplayedRecordsRebuildTheIdenticalStore) {
  ProfileStore live;
  {
    auto wal = ProfileWal::Open(path_);
    ASSERT_TRUE(wal.ok());
    for (RecordId id = 1; id <= 20; ++id) {
      const TemporalRecord record =
          MakeRecord(id, id % 3 == 0 ? "ann" : "bob", 1990 + (id % 7));
      ASSERT_TRUE(wal->Append(record).ok());
      ASSERT_TRUE(ApplyRecordToStore(record, &live).ok());
    }
    ASSERT_TRUE(wal->Close().ok());
  }

  ProfileStore recovered;
  auto replay = ReplayProfileWal(path_);
  ASSERT_TRUE(replay.ok());
  for (const ReplayedRecord& entry : replay->records) {
    ASSERT_TRUE(ApplyRecordToStore(entry.record, &recovered).ok());
  }
  EXPECT_EQ(HashProfileStore(recovered), HashProfileStore(live));
}

}  // namespace
}  // namespace maroon
