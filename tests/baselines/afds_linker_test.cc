#include "baselines/afds_linker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/muta_model.h"
#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kOrg;
using testing::kTitle;

class AfdsLinkerTest : public ::testing::Test {
 protected:
  AfdsLinkerTest()
      : dataset_(testing::PaperRecords()),
        transition_(TransitionModel::Train(testing::CareerTrainingProfiles(),
                                           {kTitle})),
        adapter_(&transition_) {
    for (const TemporalRecord& r : dataset_.records()) {
      records_.push_back(&r);
    }
  }

  Dataset dataset_;
  TransitionModel transition_;
  TransitionTemporalModel adapter_;
  SimilarityCalculator similarity_;
  std::vector<const TemporalRecord*> records_;
};

TEST_F(AfdsLinkerTest, TwoPhaseClusteringMergesEvolvableStates) {
  AfdsOptions options;
  options.merge_threshold = 0.35;
  AfdsLinker linker(&similarity_, &adapter_, testing::PaperAttributes(),
                    options);
  const std::vector<Cluster> clusters = linker.ClusterRecords(records_);
  ASSERT_FALSE(clusters.empty());
  // Phase A alone would produce >= 6 clusters; evolution merging reduces it.
  size_t total_records = 0;
  for (const Cluster& c : clusters) total_records += c.size();
  EXPECT_EQ(total_records, records_.size());
  EXPECT_LT(clusters.size(), records_.size());
}

TEST_F(AfdsLinkerTest, MergeThresholdOneKeepsPhaseAClusters) {
  AfdsOptions options;
  options.merge_threshold = 1.1;  // unreachable -> no merging
  AfdsLinker linker(&similarity_, &adapter_, testing::PaperAttributes(),
                    options);
  const std::vector<Cluster> clusters = linker.ClusterRecords(records_);
  // Static phase over all 9 records (time-agnostic PARTITION).
  EXPECT_GE(clusters.size(), 5u);
}

TEST_F(AfdsLinkerTest, LinkScoreHigherForMatchingHistory) {
  AfdsLinker linker(&similarity_, &adapter_, testing::PaperAttributes(), {});
  Cluster engineer_cluster;
  engineer_cluster.Add(dataset_.record(0));  // r1: S3/XJek Engineer @2001
  Cluster unrelated;
  TemporalRecord stranger(99, "X", 2001, 0);
  stranger.SetValue(kOrg, MakeValueSet({"完全different Corp"}));
  stranger.SetValue(kTitle, MakeValueSet({"Astronaut"}));
  unrelated.Add(stranger);

  const EntityProfile profile = testing::DavidBrownProfile();
  EXPECT_GT(linker.LinkScore(profile, engineer_cluster),
            linker.LinkScore(profile, unrelated));
}

TEST_F(AfdsLinkerTest, LinkReturnsTimingsAndProfile) {
  AfdsOptions options;
  options.link_threshold = 0.3;
  AfdsLinker linker(&similarity_, &adapter_, testing::PaperAttributes(),
                    options);
  const AfdsResult result =
      linker.Link(testing::DavidBrownProfile(), records_);
  EXPECT_GT(result.num_clusters, 0u);
  EXPECT_GE(result.phase1_seconds, 0.0);
  EXPECT_GE(result.phase2_seconds, 0.0);
  // The early-career records are easy matches for any method.
  EXPECT_TRUE(std::binary_search(result.matched_records.begin(),
                                 result.matched_records.end(), RecordId{0}));
  // The augmented profile retains the clean history.
  EXPECT_EQ(result.augmented_profile.sequence(kTitle).ValuesAt(2005),
            MakeValueSet({"Manager"}));
}

TEST_F(AfdsLinkerTest, WorksWithMutaWeights) {
  const MutaModel muta =
      MutaModel::Train(testing::CareerTrainingProfiles(), {kTitle});
  AfdsLinker linker(&similarity_, &muta, testing::PaperAttributes(), {});
  const AfdsResult result =
      linker.Link(testing::DavidBrownProfile(), records_);
  // Sanity: runs end-to-end and returns a subset of the candidates.
  for (RecordId id : result.matched_records) {
    EXPECT_LT(id, dataset_.NumRecords());
  }
}

TEST(BuildProfileFromRecordsTest, ConsecutivePairProtocol) {
  EntityProfile base("e", "E");
  TemporalRecord r1(0, "E", 2000, 0);
  r1.SetValue("Title", MakeValueSet({"Engineer"}));
  TemporalRecord r2(1, "E", 2004, 0);
  r2.SetValue("Title", MakeValueSet({"Manager"}));
  const EntityProfile profile = BuildProfileFromRecords(base, {&r1, &r2});
  // r1 covers [2000, 2003] (until just before r2), r2 covers [2004, 2004].
  EXPECT_EQ(profile.sequence("Title").ValuesAt(2000),
            MakeValueSet({"Engineer"}));
  EXPECT_EQ(profile.sequence("Title").ValuesAt(2003),
            MakeValueSet({"Engineer"}));
  EXPECT_EQ(profile.sequence("Title").ValuesAt(2004),
            MakeValueSet({"Manager"}));
  EXPECT_TRUE(profile.sequence("Title").ValuesAt(2005).empty());
  EXPECT_TRUE(profile.sequence("Title").IsCanonical());
}

TEST(BuildProfileFromRecordsTest, EmptyRecordsReturnsBase) {
  const EntityProfile base = testing::DavidBrownProfile();
  const EntityProfile profile = BuildProfileFromRecords(base, {});
  EXPECT_EQ(profile.sequence("Title").ValuesAt(2005),
            MakeValueSet({"Manager"}));
}

TEST(BuildProfileFromRecordsTest, SameTimestampRecordsMergeValues) {
  EntityProfile base("e", "E");
  TemporalRecord r1(0, "E", 2000, 0);
  r1.SetValue("Org", MakeValueSet({"S3"}));
  TemporalRecord r2(1, "E", 2000, 0);
  r2.SetValue("Org", MakeValueSet({"XJek"}));
  const EntityProfile profile = BuildProfileFromRecords(base, {&r1, &r2});
  EXPECT_EQ(profile.sequence("Org").ValuesAt(2000),
            MakeValueSet({"S3", "XJek"}));
}

}  // namespace
}  // namespace maroon
