#include "baselines/static_linkage.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/paper_example.h"

namespace maroon {
namespace {

using testing::kTitle;

class StaticLinkageTest : public ::testing::Test {
 protected:
  StaticLinkageTest() : dataset_(testing::PaperRecords()) {
    for (const TemporalRecord& r : dataset_.records()) {
      records_.push_back(&r);
    }
  }

  Dataset dataset_;
  SimilarityCalculator similarity_;
  std::vector<const TemporalRecord*> records_;
};

TEST_F(StaticLinkageTest, MatchesRecordsSimilarToKnownHistory) {
  StaticLinkage linkage(&similarity_, StaticLinkageOptions{0.8});
  const std::vector<RecordId> matched =
      linkage.Link(testing::DavidBrownProfile(), records_);
  // r1/r2 repeat the known history verbatim.
  EXPECT_TRUE(std::binary_search(matched.begin(), matched.end(), RecordId{0}));
  EXPECT_TRUE(std::binary_search(matched.begin(), matched.end(), RecordId{1}));
}

TEST_F(StaticLinkageTest, MissesFutureStates) {
  // The Example-1 failure mode: r5 describes a future state (Director at
  // Quest) whose Title value never occurs in the known history, so static
  // linkage scores it low even though it is a true match.
  StaticLinkage linkage(&similarity_, StaticLinkageOptions{0.8});
  const std::vector<RecordId> matched =
      linkage.Link(testing::DavidBrownProfile(), records_);
  EXPECT_FALSE(std::binary_search(matched.begin(), matched.end(), RecordId{7}))
      << "r8 (President at WSO2) should be beyond static linkage";
}

TEST_F(StaticLinkageTest, SimilarityAgainstValueUniverse) {
  StaticLinkage linkage(&similarity_);
  const EntityProfile profile = testing::DavidBrownProfile();
  // A record repeating any historical organization scores highly on Org.
  TemporalRecord r(50, "David Brown", 2004, 0);
  r.SetValue("Organization", MakeValueSet({"Aelita"}));
  const double sim = linkage.Similarity(profile, r);
  EXPECT_GT(sim, 0.5);
  // An empty record scores zero.
  const TemporalRecord empty(51, "David Brown", 2004, 0);
  EXPECT_DOUBLE_EQ(linkage.Similarity(profile, empty), 0.0);
}

TEST_F(StaticLinkageTest, UnknownAttributesScoreZero) {
  StaticLinkage linkage(&similarity_);
  const EntityProfile profile = testing::DavidBrownProfile();
  TemporalRecord r(52, "David Brown", 2012, 0);
  r.SetValue("Interests", MakeValueSet({"Technology"}));
  EXPECT_DOUBLE_EQ(linkage.Similarity(profile, r), 0.0);
}

TEST_F(StaticLinkageTest, ThresholdControlsMatchCount) {
  StaticLinkage loose(&similarity_, StaticLinkageOptions{0.1});
  StaticLinkage strict(&similarity_, StaticLinkageOptions{0.99});
  const EntityProfile profile = testing::DavidBrownProfile();
  EXPECT_GE(loose.Link(profile, records_).size(),
            strict.Link(profile, records_).size());
}

}  // namespace
}  // namespace maroon
